//! Tests that pin the *character* of each benchmark suite — the properties
//! the Table 2 calibration relies on. If a kernel edit breaks one of
//! these, the aggregate speedups will drift from the paper's shape.

use sv_workloads::{all_benchmarks, benchmark};

#[test]
fn turb3d_loops_have_low_trip_counts() {
    let s = benchmark("turb3d").unwrap();
    // The paper's turb3d effect (selective ≈ 1) requires short pipelines
    // to dominate: every loop trips at most a few dozen iterations.
    for l in &s.loops {
        assert!(l.trip.count <= 64, "{} trips {}", l.name, l.trip.count);
    }
    // …and they are entered very many times.
    assert!(s.loops.iter().all(|l| l.invocations >= 1_000));
}

#[test]
fn nasa7_is_reduction_and_recurrence_heavy() {
    let s = benchmark("nasa7").unwrap();
    let sequential = s
        .loops
        .iter()
        .filter(|l| {
            let st = l.stats();
            st.reductions > 0 || st.carried_uses > 0
        })
        .count();
    assert!(
        sequential * 2 >= s.loops.len(),
        "only {sequential}/{} nasa7 loops carry sequential chains",
        s.loops.len()
    );
}

#[test]
fn tomcatv_mixes_parallel_and_sequential_work() {
    let s = benchmark("tomcatv").unwrap();
    let stats: Vec<_> = s.loops.iter().map(|l| l.stats()).collect();
    // The residual loop is big and mixed: data-parallel body plus in-loop
    // max reductions.
    let residual = &stats[0];
    assert!(residual.fp_arith >= 25, "residual fp ops: {}", residual.fp_arith);
    assert_eq!(residual.reductions, 2);
    // The solver loops are sequential.
    assert!(stats.iter().any(|st| st.carried_uses > 0));
}

#[test]
fn swim_stencils_are_fully_parallel() {
    let s = benchmark("swim").unwrap();
    for l in s.loops.iter().take(3) {
        let st = l.stats();
        assert_eq!(st.carried_uses, 0, "{}", l.name);
        assert_eq!(st.reductions, 0, "{}", l.name);
        assert!(st.loads >= 3, "{}", l.name);
    }
}

#[test]
fn every_suite_contains_non_vectorizable_work() {
    // Traditional vectorization must have something to distribute around
    // in every benchmark, as in real SPEC code.
    for s in all_benchmarks() {
        let any_sequential = s.loops.iter().any(|l| {
            let st = l.stats();
            st.reductions > 0 || st.carried_uses > 0
        });
        assert!(any_sequential, "{} is entirely parallel", s.name);
    }
}

#[test]
fn every_suite_contains_vectorizable_work() {
    use sv_analysis::{vectorizable_ops, DepGraph};
    for s in all_benchmarks() {
        let any_parallel = s.loops.iter().any(|l| {
            let g = DepGraph::build(l);
            vectorizable_ops(l, &g, 2)
                .iter()
                .filter(|v| v.is_vectorizable())
                .count()
                >= 3
        });
        assert!(any_parallel, "{} has nothing to vectorize", s.name);
    }
}

#[test]
fn weights_are_dominated_by_hand_kernels() {
    // The synthetic fillers must not outweigh the hand-written hot
    // kernels, or the calibration story in DESIGN.md §4 is false.
    for s in all_benchmarks() {
        let weight = |l: &sv_ir::Loop| l.trip.count as u128 * l.invocations as u128;
        let hand: u128 = s
            .loops
            .iter()
            .filter(|l| !l.name.contains("synth"))
            .map(&weight)
            .sum();
        let synth: u128 = s
            .loops
            .iter()
            .filter(|l| l.name.contains("synth"))
            .map(weight)
            .sum();
        assert!(
            hand * 2 >= synth,
            "{}: hand weight {hand} vs synthetic {synth}",
            s.name
        );
    }
}
