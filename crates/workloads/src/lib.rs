//! # sv-workloads — SPEC FP substitute benchmark suites
//!
//! The paper evaluates on nine SPEC FP benchmarks compiled through SUIF.
//! Neither the benchmarks' Fortran sources nor SUIF are available here, so
//! this crate provides the substitution documented in `DESIGN.md`:
//!
//! * **hand-written IR encodings** of each benchmark's famous hot kernels
//!   (tomcatv's SOR residual and tridiagonal solves, swim's shallow-water
//!   stencils, mgrid's `resid`/`psinv` relaxation, nasa7's seven kernels,
//!   and representative loops for su2cor, hydro2d, turb3d, wave5 and apsi),
//!   carrying the dominant invocation weights; and
//! * a **seeded synthetic loop generator** ([`synth_loop`]) that fills each
//!   suite out to the paper's per-benchmark count of resource-limited
//!   loops (Table 3), with per-benchmark op-mix and trip-count profiles.
//!
//! What decides every number in the paper's tables is each loop's *op mix,
//! dependence structure and trip count* — which these substitutes model —
//! not the surrounding program, which they do not.
//!
//! ```
//! use sv_workloads::{all_benchmarks, figure1_dot_product};
//!
//! let suites = all_benchmarks();
//! assert_eq!(suites.len(), 9);
//! let tomcatv = suites.iter().find(|s| s.name == "101.tomcatv").unwrap();
//! assert_eq!(tomcatv.loops.len(), 6); // paper Table 3
//! assert!(figure1_dot_product().verify().is_ok());
//! ```

mod gen;
mod kernels;
pub mod rng;
mod suite;

pub use gen::{synth_loop, SynthProfile};
pub use kernels::figure1_dot_product;
pub use rng::SmallRng;
pub use suite::{all_benchmarks, benchmark, benchmark_names, BenchmarkSuite, UnknownBenchmark};
