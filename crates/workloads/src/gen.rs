//! Seeded synthetic loop generation.
//!
//! Used both to fill the benchmark suites out to the paper's per-benchmark
//! loop counts and as the random-loop source for property tests. Given the
//! same profile and seed, the generator is fully deterministic.

use crate::rng::SmallRng;
use sv_ir::{Loop, LoopBuilder, OpId, OpKind, Operand, ScalarType};

/// Distribution parameters for one family of synthetic loops.
#[derive(Debug, Clone)]
pub struct SynthProfile {
    /// Inclusive range of load counts.
    pub loads: (u32, u32),
    /// Inclusive range of arithmetic (non-memory) op counts.
    pub arith: (u32, u32),
    /// Inclusive range of store counts (at least 1 unless a reduction is
    /// forced so the loop has an observable effect).
    pub stores: (u32, u32),
    /// Probability that a given memory op is non-unit-stride (stride 2 or
    /// 3 — not vectorizable on a machine without scatter/gather).
    pub nonunit_prob: f64,
    /// Probability the loop carries a floating-point sum reduction.
    pub reduction_prob: f64,
    /// Whether FP reassociation is licensed (vectorizable reductions).
    pub reassoc: bool,
    /// Probability the loop contains a first-order recurrence (a
    /// non-vectorizable sequential chain).
    pub recurrence_prob: f64,
    /// Probability an arithmetic op is a divide.
    pub div_prob: f64,
    /// Probability an arithmetic op reads a value from the previous
    /// iteration (register-carried at distance `vector_length`, which
    /// remains vectorizable).
    pub carried_prob: f64,
    /// Probability an arithmetic step emits an if-converted cmp+select
    /// pair instead of a plain op (the compare and the select both join
    /// the value pool, so chains of predicated ops form naturally). A
    /// zero knob draws no randomness, leaving legacy profiles
    /// bit-identical.
    pub cmp_select_prob: f64,
    /// Inclusive trip-count range.
    pub trip: (u64, u64),
    /// Inclusive invocation-count range.
    pub invocations: (u64, u64),
}

impl SynthProfile {
    /// A broad default used by the property-test loop source.
    pub fn broad() -> SynthProfile {
        SynthProfile {
            loads: (1, 6),
            arith: (1, 10),
            stores: (1, 3),
            nonunit_prob: 0.15,
            reduction_prob: 0.3,
            reassoc: false,
            recurrence_prob: 0.2,
            div_prob: 0.05,
            carried_prob: 0.1,
            cmp_select_prob: 0.0,
            trip: (3, 200),
            invocations: (1, 4),
        }
    }
}

fn range_u32(rng: &mut SmallRng, (lo, hi): (u32, u32)) -> u32 {
    rng.range_u32(lo, hi)
}

fn range_u64(rng: &mut SmallRng, (lo, hi): (u64, u64)) -> u64 {
    rng.range_u64(lo, hi)
}

/// Generate one synthetic loop named `name` from `profile` and `seed`.
///
/// The result always verifies, always has at least one observable effect
/// (store, reduction or live-out), and never reads out of bounds for trips
/// within the profile's range.
pub fn synth_loop(name: &str, profile: &SynthProfile, seed: u64) -> Loop {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed);
    let mut b = LoopBuilder::new(name);
    let trip = range_u64(&mut rng, profile.trip);
    b.trip(trip).invocations(range_u64(&mut rng, profile.invocations));
    b.allow_reassoc(profile.reassoc);

    let n_loads = range_u32(&mut rng, profile.loads).max(1);
    let n_arith = range_u32(&mut rng, profile.arith);
    let n_stores = range_u32(&mut rng, profile.stores);
    // Generous bounds: |stride| <= 3, |offset| <= 4, plus vector slack.
    let arr_len = trip * 3 + 16;

    // Distinct input and output arrays prevent unintended dependence
    // cycles; a fraction of stores write an input array far ahead, which
    // creates long-distance (still vectorizable) memory dependences.
    let inputs: Vec<_> = (0..n_loads.clamp(1, 4))
        .map(|i| b.array(format!("in{i}"), ScalarType::F64, arr_len))
        .collect();
    let outputs: Vec<_> = (0..n_stores.max(1))
        .map(|i| b.array(format!("out{i}"), ScalarType::F64, arr_len))
        .collect();

    let mut values: Vec<OpId> = Vec::new();
    for i in 0..n_loads {
        let arr = inputs[(i as usize) % inputs.len()];
        let stride = if rng.chance(profile.nonunit_prob) {
            [0, 2, 3][rng.index(3)]
        } else {
            1
        };
        let offset = rng.range_u64(0, 3) as i64;
        values.push(b.load(arr, stride, offset));
    }

    let arith_kinds = [
        OpKind::Add,
        OpKind::Add,
        OpKind::Mul,
        OpKind::Mul,
        OpKind::Sub,
        OpKind::Min,
        OpKind::Max,
        OpKind::Abs,
        OpKind::Neg,
    ];
    for _ in 0..n_arith {
        // If-converted step: a four-predicate compare feeding a select,
        // occasionally with a carried else-arm (a latched recurrence).
        if profile.cmp_select_prob > 0.0 && rng.chance(profile.cmp_select_prob) {
            use sv_ir::CmpPred;
            let a = values[rng.index(values.len())];
            let bnd = values[rng.index(values.len())];
            let pred = [CmpPred::Eq, CmpPred::Ne, CmpPred::Lt, CmpPred::Le][rng.index(4)];
            let c = b.cmp(pred, ScalarType::F64, Operand::def(a), Operand::def(bnd));
            let t = values[rng.index(values.len())];
            let sel = if rng.chance(0.25) {
                // Carried else-arm at distance 2 (one vl=2 vector length).
                b.select(ScalarType::F64, Operand::def(c), Operand::def(t), Operand::carried(a, 2))
            } else {
                b.select(ScalarType::F64, Operand::def(c), Operand::def(t), Operand::def(bnd))
            };
            values.push(c);
            values.push(sel);
            continue;
        }
        // Long-latency non-pipelined kinds (divide, square root) are gated
        // by `div_prob`; they dominate any loop they appear in.
        let kind = if rng.chance(profile.div_prob) {
            if rng.chance(0.5) {
                OpKind::Div
            } else {
                OpKind::Sqrt
            }
        } else {
            arith_kinds[rng.index(arith_kinds.len())]
        };
        let a = values[rng.index(values.len())];
        let id = if kind.arity() == 2 {
            let bnd = values[rng.index(values.len())];
            if rng.chance(profile.carried_prob) {
                // Carried use at distance 2 (one vector length) stays
                // vectorizable for vl = 2.
                b.bin(kind, ScalarType::F64, Operand::def(a), Operand::carried(bnd, 2))
            } else {
                b.fbin(kind, a, bnd)
            }
        } else {
            b.unary(kind, ScalarType::F64, a)
        };
        values.push(id);
    }

    if rng.chance(profile.recurrence_prob) {
        let v = values[rng.index(values.len())];
        let kind = if rng.chance(0.5) { OpKind::Mul } else { OpKind::Add };
        let r = b.recurrence(kind, ScalarType::F64, v);
        values.push(r);
    }

    let mut effects = 0;
    if rng.chance(profile.reduction_prob) {
        let v = values[rng.index(values.len())];
        b.reduce_add(v);
        effects += 1;
    }
    for (i, &arr) in outputs.iter().enumerate().take(n_stores as usize) {
        let v = values[rng.index(values.len())];
        let offset = rng.range_u64(0, 3) as i64;
        let stride = if rng.chance(profile.nonunit_prob) { 2 } else { 1 };
        b.store(arr, stride, offset, v);
        let _ = i;
        effects += 1;
    }
    if effects == 0 {
        let v = *values.last().expect("at least one load");
        b.store(outputs[0], 1, 0, v);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = SynthProfile::broad();
        let a = synth_loop("s", &p, 42);
        let b = synth_loop("s", &p, 42);
        assert_eq!(a, b);
        let c = synth_loop("s", &p, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn many_seeds_verify() {
        let p = SynthProfile::broad();
        for seed in 0..300 {
            let l = synth_loop("s", &p, seed);
            assert!(l.verify().is_ok(), "seed {seed}");
            assert!(!l.ops.is_empty());
            let has_effect = l.ops.iter().any(|o| o.opcode.kind == OpKind::Store)
                || !l.live_outs.is_empty();
            assert!(has_effect, "seed {seed} has no observable effect");
        }
    }

    #[test]
    fn predicated_knob_emits_cmp_select_chains() {
        let mut p = SynthProfile::broad();
        p.cmp_select_prob = 0.6;
        p.arith = (6, 10);
        let mut saw_cmp = 0;
        let mut saw_select = 0;
        for seed in 0..100 {
            let l = synth_loop("p", &p, seed);
            assert!(l.verify().is_ok(), "seed {seed}");
            saw_cmp += l.ops.iter().filter(|o| matches!(o.opcode.kind, OpKind::Cmp(_))).count();
            saw_select += l.ops.iter().filter(|o| o.opcode.kind == OpKind::Select).count();
        }
        assert!(saw_cmp >= 100, "expected a dense cmp population, got {saw_cmp}");
        assert_eq!(saw_cmp, saw_select, "every compare feeds exactly one select");
    }

    #[test]
    fn zero_knob_is_bit_identical_to_legacy_generation() {
        // The knob must not perturb the RNG stream when disabled, so the
        // suite fill loops (and their goldens) are unchanged by its
        // existence.
        let p = SynthProfile::broad();
        for seed in 0..50 {
            let l = synth_loop("z", &p, seed);
            assert!(
                !l.ops.iter().any(|o| matches!(o.opcode.kind, OpKind::Cmp(_) | OpKind::Select)),
                "seed {seed} emitted predicated ops with a zero knob"
            );
        }
    }

    #[test]
    fn profiles_shape_the_output() {
        let mut heavy_mem = SynthProfile::broad();
        heavy_mem.loads = (8, 8);
        heavy_mem.arith = (1, 1);
        let l = synth_loop("m", &heavy_mem, 7);
        let loads = l.ops.iter().filter(|o| o.opcode.kind == OpKind::Load).count();
        assert_eq!(loads, 8);
    }
}
