//! A tiny, dependency-free, deterministic PRNG.
//!
//! The synthetic-loop generator, the property tests and the differential
//! fuzzer all need *reproducible* pseudo-random streams, and the build must
//! work in offline/vendored environments — so instead of the `rand` crate
//! this module provides a fixed SplitMix64 generator. The algorithm is
//! stable by construction: a given seed produces the same stream on every
//! platform and every release, which keeps seeded suites and fuzz repros
//! valid forever.

/// SplitMix64-based generator. Passes BigCrush as a 64-bit mixer; more
/// than adequate for shaping synthetic loop distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seed the generator. Distinct seeds yield uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let width = hi - lo + 1; // hi = u64::MAX is not used by callers
        if width == 0 {
            return self.next_u64();
        }
        // Modulo bias is ≤ width/2^64 — irrelevant at generator widths.
        lo + self.next_u64() % width
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform index into a collection of length `n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into an empty collection");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the same construction rand uses.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range_u32(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn stream_is_pinned() {
        // The generator's exact stream is load-bearing: seeded benchmark
        // suites and recorded fuzz repros depend on it never changing.
        let mut r = SmallRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }
}
