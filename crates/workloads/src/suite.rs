//! Benchmark suites: hand kernels plus calibrated synthetic fill.

use crate::gen::{synth_loop, SynthProfile};
use crate::kernels;
use sv_ir::Loop;

/// One SPEC-FP-substitute benchmark: its name and the resource-limited
/// inner loops it contributes to the evaluation, each with trip and
/// invocation weights.
#[derive(Debug, Clone)]
pub struct BenchmarkSuite {
    /// SPEC name, e.g. `"101.tomcatv"`.
    pub name: &'static str,
    /// The loops. The first entries are hand-written hot kernels; the rest
    /// are seeded synthetic loops filling the suite to the paper's
    /// per-benchmark loop count (Table 3).
    pub loops: Vec<Loop>,
}

struct SuiteSpec {
    name: &'static str,
    hand: fn() -> Vec<Loop>,
    /// Paper Table 3 loop count the suite is filled to.
    count: usize,
    profile: SynthProfile,
    seed: u64,
}

fn specs() -> Vec<SuiteSpec> {
    // Filler profiles echo each benchmark's character; hand kernels carry
    // the dominant weights (their invocation counts dwarf the fillers').
    let stencil = SynthProfile {
        loads: (3, 8),
        arith: (4, 12),
        stores: (1, 2),
        nonunit_prob: 0.05,
        reduction_prob: 0.1,
        reassoc: false,
        recurrence_prob: 0.1,
        div_prob: 0.02,
        carried_prob: 0.05,
        cmp_select_prob: 0.0,
        trip: (64, 512),
        invocations: (5, 40),
    };
    vec![
        SuiteSpec {
            name: "093.nasa7",
            hand: kernels::nasa7::kernels,
            count: 30,
            profile: SynthProfile {
                reduction_prob: 0.6,
                recurrence_prob: 0.4,
                div_prob: 0.06,
                ..stencil.clone()
            },
            seed: 0x9307,
        },
        SuiteSpec {
            name: "101.tomcatv",
            hand: kernels::tomcatv::kernels,
            count: 6,
            profile: stencil.clone(), // never used: 6 hand kernels
            seed: 0x1010,
        },
        SuiteSpec {
            name: "103.su2cor",
            hand: kernels::su2cor::kernels,
            count: 38,
            profile: SynthProfile {
                loads: (4, 10),
                arith: (6, 16),
                reduction_prob: 0.2,
                recurrence_prob: 0.12,
                ..stencil.clone()
            },
            seed: 0x1030,
        },
        SuiteSpec {
            name: "104.hydro2d",
            hand: kernels::hydro2d::kernels,
            count: 67,
            profile: SynthProfile {
                loads: (2, 5),
                arith: (2, 6),
                div_prob: 0.08,
                recurrence_prob: 0.15,
                ..stencil.clone()
            },
            seed: 0x1040,
        },
        SuiteSpec {
            name: "125.turb3d",
            hand: kernels::turb3d::kernels,
            count: 12,
            profile: SynthProfile {
                loads: (3, 6),
                arith: (3, 8),
                trip: (3, 8),
                invocations: (20_000, 80_000),
                nonunit_prob: 0.15,
                reduction_prob: 0.1,
                recurrence_prob: 0.05,
                div_prob: 0.0,
                ..stencil.clone()
            },
            seed: 0x1250,
        },
        SuiteSpec {
            name: "146.wave5",
            hand: kernels::wave5::kernels,
            count: 133,
            profile: SynthProfile {
                loads: (2, 6),
                arith: (2, 8),
                nonunit_prob: 0.25,
                reduction_prob: 0.15,
                recurrence_prob: 0.2,
                ..stencil.clone()
            },
            seed: 0x1460,
        },
        SuiteSpec {
            name: "171.swim",
            hand: kernels::swim::kernels,
            count: 14,
            profile: SynthProfile {
                loads: (5, 9),
                arith: (6, 14),
                stores: (1, 3),
                recurrence_prob: 0.0,
                ..stencil.clone()
            },
            seed: 0x1710,
        },
        SuiteSpec {
            name: "172.mgrid",
            hand: kernels::mgrid::kernels,
            count: 16,
            profile: SynthProfile {
                loads: (6, 10),
                arith: (6, 12),
                recurrence_prob: 0.05,
                reduction_prob: 0.3,
                trip: (16, 128),
                ..stencil.clone()
            },
            seed: 0x1720,
        },
        SuiteSpec {
            name: "301.apsi",
            hand: kernels::apsi::kernels,
            count: 61,
            profile: SynthProfile {
                loads: (2, 6),
                arith: (3, 9),
                div_prob: 0.06,
                recurrence_prob: 0.25,
                ..stencil
            },
            seed: 0x3010,
        },
    ]
}

fn build(spec: &SuiteSpec) -> BenchmarkSuite {
    let mut loops = (spec.hand)();
    assert!(
        loops.len() <= spec.count,
        "{}: more hand kernels than the paper's loop count",
        spec.name
    );
    let fill = spec.count - loops.len();
    for i in 0..fill {
        let name = format!("{}.synth{i}", spec.name);
        loops.push(synth_loop(&name, &spec.profile, spec.seed ^ (i as u64) << 8));
    }
    BenchmarkSuite { name: spec.name, loops }
}

/// All nine benchmark suites, in the paper's table order.
pub fn all_benchmarks() -> Vec<BenchmarkSuite> {
    specs().iter().map(build).collect()
}

/// Every suite name, in the paper's table order.
pub fn benchmark_names() -> Vec<&'static str> {
    specs().iter().map(|s| s.name).collect()
}

/// A benchmark lookup that matched no suite; lists what would have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark {
    /// The name that failed to resolve.
    pub name: String,
    /// Every known suite name, in the paper's table order.
    pub known: Vec<&'static str>,
}

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown benchmark `{}`; known suites: {}",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownBenchmark {}

/// One suite by (full or suffix) name, e.g. `"tomcatv"`.
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] — carrying every valid name — when no
/// suite matches.
pub fn benchmark(name: &str) -> Result<BenchmarkSuite, UnknownBenchmark> {
    specs()
        .iter()
        .find(|s| s.name == name || s.name.ends_with(name))
        .map(build)
        .ok_or_else(|| UnknownBenchmark { name: name.to_string(), known: benchmark_names() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_counts_match_paper_table3() {
        let expected = [
            ("093.nasa7", 30),
            ("101.tomcatv", 6),
            ("103.su2cor", 38),
            ("104.hydro2d", 67),
            ("125.turb3d", 12),
            ("146.wave5", 133),
            ("171.swim", 14),
            ("172.mgrid", 16),
            ("301.apsi", 61),
        ];
        let suites = all_benchmarks();
        assert_eq!(suites.len(), expected.len());
        for ((name, count), suite) in expected.iter().zip(&suites) {
            assert_eq!(suite.name, *name);
            assert_eq!(suite.loops.len(), *count, "{name}");
        }
    }

    #[test]
    fn every_loop_verifies_and_is_unique() {
        for suite in all_benchmarks() {
            let mut names = std::collections::HashSet::new();
            for l in &suite.loops {
                assert!(l.verify().is_ok(), "{} / {}", suite.name, l.name);
                assert!(names.insert(l.name.clone()), "duplicate {}", l.name);
            }
        }
    }

    #[test]
    fn benchmark_lookup_by_suffix() {
        assert_eq!(benchmark("tomcatv").unwrap().name, "101.tomcatv");
        assert_eq!(benchmark("171.swim").unwrap().name, "171.swim");
    }

    #[test]
    fn benchmark_lookup_rejects_unknown_and_lists_names() {
        let e = benchmark("nope").unwrap_err();
        assert_eq!(e.name, "nope");
        assert_eq!(e.known.len(), 9);
        let msg = e.to_string();
        assert!(msg.contains("unknown benchmark `nope`"), "{msg}");
        assert!(msg.contains("101.tomcatv"), "{msg}");
        assert!(msg.contains("301.apsi"), "{msg}");
    }

    #[test]
    fn suites_are_deterministic() {
        let a = benchmark("wave5").unwrap();
        let b = benchmark("wave5").unwrap();
        assert_eq!(a.loops, b.loops);
    }
}
