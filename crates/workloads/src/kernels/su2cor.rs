//! 103.su2cor — quantum chromodynamics (SPEC 95).
//!
//! Quark-propagator Monte Carlo: the hot loops multiply complex SU(2)
//! gauge links into spinors (long multiply–add chains over interleaved
//! re/im data that su2cor keeps in *separate* arrays, so the streams stay
//! unit-stride and vectorizable) plus Gaussian-update loops with sums.

use sv_ir::{Loop, LoopBuilder, OpKind, ScalarType};

const N: u64 = 256;
const SWEEPS: u64 = 80;

/// Seven hand kernels (suite filled to the paper's 38).
pub fn kernels() -> Vec<Loop> {
    vec![
        gauge_mul(),
        spinor_update(),
        correlation(),
        gaussian(),
        staple_sum(),
        trace_re(),
        momentum_refresh(),
    ]
}

/// Complex matrix–vector multiply with separate re/im arrays: 8 loads,
/// 8 multiplies, 6 adds, 2 stores — FP-unit-bound, ideal for offloading
/// part of the work to the vector unit.
fn gauge_mul() -> Loop {
    let mut b = LoopBuilder::new("su2cor.gaugemul");
    b.trip(N).invocations(SWEEPS * N / 8);
    let ur = b.array("ur", ScalarType::F64, N + 8);
    let ui = b.array("ui", ScalarType::F64, N + 8);
    let vr = b.array("vr", ScalarType::F64, N + 8);
    let vi = b.array("vi", ScalarType::F64, N + 8);
    let wr = b.array("wr", ScalarType::F64, N + 8);
    let wi = b.array("wi", ScalarType::F64, N + 8);
    let lur = b.load(ur, 1, 0);
    let lui = b.load(ui, 1, 0);
    let lvr = b.load(vr, 1, 0);
    let lvi = b.load(vi, 1, 0);
    let lur2 = b.load(ur, 1, 1);
    let lui2 = b.load(ui, 1, 1);
    let lvr2 = b.load(vr, 1, 1);
    let lvi2 = b.load(vi, 1, 1);
    let m1 = b.fmul(lur, lvr);
    let m2 = b.fmul(lui, lvi);
    let re1 = b.fsub(m1, m2);
    let m3 = b.fmul(lur2, lvr2);
    let m4 = b.fmul(lui2, lvi2);
    let re2 = b.fsub(m3, m4);
    let re = b.fadd(re1, re2);
    b.store(wr, 1, 0, re);
    let m5 = b.fmul(lur, lvi);
    let m6 = b.fmul(lui, lvr);
    let im1 = b.fadd(m5, m6);
    let m7 = b.fmul(lur2, lvi2);
    let m8 = b.fmul(lui2, lvr2);
    let im2 = b.fadd(m7, m8);
    let im = b.fadd(im1, im2);
    b.store(wi, 1, 0, im);
    b.finish()
}

/// Spinor update `s = s + k·w` over four components.
fn spinor_update() -> Loop {
    let mut b = LoopBuilder::new("su2cor.spinor");
    b.trip(N).invocations(SWEEPS * N / 4);
    let s = b.array("s", ScalarType::F64, N + 8);
    let w = b.array("w", ScalarType::F64, N + 8);
    let k = b.live_in("kappa", ScalarType::F64);
    let ls = b.load(s, 1, 0);
    let lw = b.load(w, 1, 0);
    let kw = b.fmul_li(k, lw);
    let sum = b.fadd(ls, kw);
    b.store(s, 1, 0, sum);
    b.finish()
}

/// Correlation-function accumulation: an FP sum over a product — the
/// reduction keeps the loop partly sequential.
fn correlation() -> Loop {
    let mut b = LoopBuilder::new("su2cor.corr");
    b.trip(N).invocations(SWEEPS * N / 2);
    let a = b.array("prop1", ScalarType::F64, N + 8);
    let c = b.array("prop2", ScalarType::F64, N + 8);
    let la = b.load(a, 1, 0);
    let lc = b.load(c, 1, 0);
    let m = b.fmul(la, lc);
    b.reduce_add(m);
    b.finish()
}

/// Gaussian heat-bath update: sqrt/div-heavy chain with a running
/// normalization recurrence.
fn gaussian() -> Loop {
    let mut b = LoopBuilder::new("su2cor.gaussian");
    b.trip(N).invocations(SWEEPS * 2);
    let r = b.array("rand", ScalarType::F64, N + 8);
    let o = b.array("eta", ScalarType::F64, N + 8);
    let lr = b.load(r, 1, 0);
    let s = b.fsqrt(lr);
    let d = b.fdiv(s, lr);
    let acc = b.recurrence(OpKind::Add, ScalarType::F64, d);
    b.store(o, 1, 0, acc);
    b.finish()
}

/// Staple accumulation around a plaquette: three-array multiply–add
/// chains, fully parallel.
fn staple_sum() -> Loop {
    let mut b = LoopBuilder::new("su2cor.staple");
    b.trip(N).invocations(SWEEPS * N / 16);
    let a = b.array("linkA", ScalarType::F64, N + 8);
    let c = b.array("linkB", ScalarType::F64, N + 8);
    let d = b.array("linkC", ScalarType::F64, N + 8);
    let out = b.array("staple", ScalarType::F64, N + 8);
    let la = b.load(a, 1, 0);
    let lc = b.load(c, 1, 0);
    let ld = b.load(d, 1, 0);
    let m1 = b.fmul(la, lc);
    let m2 = b.fmul(m1, ld);
    let lo = b.load(out, 1, 0);
    let acc = b.fadd(lo, m2);
    b.store(out, 1, 0, acc);
    b.finish()
}

/// Real-trace accumulation of the plaquette action — the FP sum every
/// Monte Carlo step reports.
fn trace_re() -> Loop {
    let mut b = LoopBuilder::new("su2cor.trace");
    b.trip(N).invocations(SWEEPS * N / 8);
    let ur = b.array("ur2", ScalarType::F64, N + 8);
    let vr = b.array("vr2", ScalarType::F64, N + 8);
    let ui = b.array("ui2", ScalarType::F64, N + 8);
    let vi = b.array("vi2", ScalarType::F64, N + 8);
    let lur = b.load(ur, 1, 0);
    let lvr = b.load(vr, 1, 0);
    let lui = b.load(ui, 1, 0);
    let lvi = b.load(vi, 1, 0);
    let re = b.fmul(lur, lvr);
    let im = b.fmul(lui, lvi);
    let tr = b.fsub(re, im);
    b.reduce_add(tr);
    b.finish()
}

/// Momentum refreshment between trajectories: scale-and-add of the noise
/// field into the momenta.
fn momentum_refresh() -> Loop {
    let mut b = LoopBuilder::new("su2cor.momentum");
    b.trip(N).invocations(SWEEPS / 2);
    let pmom = b.array("pmom", ScalarType::F64, N + 8);
    let noise = b.array("noise", ScalarType::F64, N + 8);
    let c1 = b.live_in("c1", ScalarType::F64);
    let lp = b.load(pmom, 1, 0);
    let ln = b.load(noise, 1, 0);
    let sc = b.fmul_li(c1, lp);
    let sum = b.fadd(sc, ln);
    b.store(pmom, 1, 0, sum);
    b.finish()
}
