//! 104.hydro2d — Navier–Stokes galactic-jet simulation (SPEC 95).
//!
//! Dozens of small, similar finite-difference sweeps. Most are
//! vectorizable but short and already well balanced on the scalar units,
//! so every technique lands close to 1× (the paper: 0.94/1.00/1.03).

use sv_ir::{Loop, LoopBuilder, OpKind, ScalarType};

const N: u64 = 402;
const STEPS: u64 = 20;

/// Nine hand kernels (suite filled to the paper's 67).
pub fn kernels() -> Vec<Loop> {
    vec![
        flux(),
        advection(),
        pressure(),
        timestep_min(),
        viscosity(),
        energy_update(),
        boundary_reflect(),
        density_floor(),
        slope_clip(),
    ]
}

/// Flux differences: `f[i] = u[i]·v[i] − u[i−1]·v[i−1]`.
fn flux() -> Loop {
    let mut b = LoopBuilder::new("hydro2d.flux");
    b.trip(N).invocations(STEPS * N);
    let u = b.array("u", ScalarType::F64, N + 8);
    let v = b.array("v", ScalarType::F64, N + 8);
    let f = b.array("f", ScalarType::F64, N + 8);
    let u1 = b.load(u, 1, 1);
    let v1 = b.load(v, 1, 1);
    let u0 = b.load(u, 1, 0);
    let v0 = b.load(v, 1, 0);
    let m1 = b.fmul(u1, v1);
    let m0 = b.fmul(u0, v0);
    let d = b.fsub(m1, m0);
    b.store(f, 1, 0, d);
    b.finish()
}

/// Upwind advection: `q[i] += dt·(f[i] − f[i+1])`.
fn advection() -> Loop {
    let mut b = LoopBuilder::new("hydro2d.advect");
    b.trip(N).invocations(STEPS * N);
    let q = b.array("q", ScalarType::F64, N + 8);
    let f = b.array("f", ScalarType::F64, N + 8);
    let dt = b.live_in("dt", ScalarType::F64);
    let lq = b.load(q, 1, 0);
    let f0 = b.load(f, 1, 0);
    let f1 = b.load(f, 1, 1);
    let df = b.fsub(f0, f1);
    let sc = b.fmul_li(dt, df);
    let nq = b.fadd(lq, sc);
    b.store(q, 1, 0, nq);
    b.finish()
}

/// Pressure/equation-of-state: has a divide per point, which dominates
/// both scalar and vector costs (the divide unit is not pipelined).
fn pressure() -> Loop {
    let mut b = LoopBuilder::new("hydro2d.pressure");
    b.trip(N).invocations(STEPS * N / 2);
    let e = b.array("e", ScalarType::F64, N + 8);
    let rho = b.array("rho", ScalarType::F64, N + 8);
    let p = b.array("p", ScalarType::F64, N + 8);
    let le = b.load(e, 1, 0);
    let lr = b.load(rho, 1, 0);
    let d = b.fdiv(le, lr);
    let g = b.fmul(d, le);
    b.store(p, 1, 0, g);
    b.finish()
}

/// Courant time-step search: a min reduction over a divide chain —
/// vectorizable (min is order-insensitive) but divide-bound.
fn timestep_min() -> Loop {
    let mut b = LoopBuilder::new("hydro2d.courant");
    b.trip(N).invocations(STEPS * 4);
    let c = b.array("c", ScalarType::F64, N + 8);
    let v = b.array("vel", ScalarType::F64, N + 8);
    let lc = b.load(c, 1, 0);
    let lv = b.load(v, 1, 0);
    let s = b.fadd(lc, lv);
    let dt = b.fdiv(lc, s);
    b.reduce(OpKind::Min, ScalarType::F64, dt);
    b.finish()
}

/// Artificial viscosity: velocity-difference products clamped at zero
/// (min/max against constants), fully parallel.
fn viscosity() -> Loop {
    use sv_ir::Operand;
    let mut b = LoopBuilder::new("hydro2d.viscosity");
    b.trip(N).invocations(STEPS * N);
    let u = b.array("u", ScalarType::F64, N + 8);
    let q = b.array("q", ScalarType::F64, N + 8);
    let u0 = b.load(u, 1, 0);
    let u1 = b.load(u, 1, 1);
    let du = b.fsub(u1, u0);
    let clamped = b.bin(OpKind::Min, ScalarType::F64, Operand::def(du), Operand::ConstF(0.0));
    let sq = b.fmul(clamped, clamped);
    b.store(q, 1, 0, sq);
    b.finish()
}

/// Total-energy update: multiply–add over three streams.
fn energy_update() -> Loop {
    let mut b = LoopBuilder::new("hydro2d.energy");
    b.trip(N).invocations(STEPS * N);
    let e = b.array("e", ScalarType::F64, N + 8);
    let p = b.array("p", ScalarType::F64, N + 8);
    let dv = b.array("dv", ScalarType::F64, N + 8);
    let le = b.load(e, 1, 0);
    let lp = b.load(p, 1, 0);
    let ld = b.load(dv, 1, 0);
    let work = b.fmul(lp, ld);
    let ne = b.fsub(le, work);
    b.store(e, 1, 0, ne);
    b.finish()
}

/// Reflecting boundary: copy with negation into the ghost strip.
fn boundary_reflect() -> Loop {
    let mut b = LoopBuilder::new("hydro2d.reflect");
    b.trip(64).invocations(STEPS * 8);
    let v = b.array("v", ScalarType::F64, 96);
    let ghost = b.array("vghost", ScalarType::F64, 96);
    let l = b.load(v, 1, 0);
    let n = b.fneg(l);
    b.store(ghost, 1, 0, n);
    b.finish()
}

/// Slope limiter, if-converted: the raw slope is compared against the
/// limiter bound and a select keeps the smaller — `if (du > lim) du =
/// lim` flattened to straight-line cmp+select, fully parallel.
fn slope_clip() -> Loop {
    use sv_ir::{CmpPred, Operand};
    let mut b = LoopBuilder::new("hydro2d.slopeclip");
    b.trip(N).invocations(STEPS * N);
    let u = b.array("u", ScalarType::F64, N + 8);
    let s = b.array("slope", ScalarType::F64, N + 8);
    let u0 = b.load(u, 1, 0);
    let u1 = b.load(u, 1, 1);
    let du = b.fsub(u1, u0);
    let c = b.cmp(CmpPred::Lt, ScalarType::F64, Operand::def(du), Operand::ConstF(0.5));
    let lim = b.select(ScalarType::F64, Operand::def(c), Operand::def(du), Operand::ConstF(0.5));
    b.store(s, 1, 0, lim);
    b.finish()
}

/// Density floor: max against the vacuum threshold, counting violations
/// through a running (sequential) sum.
fn density_floor() -> Loop {
    use sv_ir::Operand;
    let mut b = LoopBuilder::new("hydro2d.floor");
    b.trip(N).invocations(STEPS * N / 2);
    let rho = b.array("rho", ScalarType::F64, N + 8);
    let lr = b.load(rho, 1, 0);
    let fl = b.bin(
        OpKind::Max,
        ScalarType::F64,
        Operand::def(lr),
        Operand::ConstF(1e-6),
    );
    b.store(rho, 1, 0, fl);
    let delta = b.fsub(fl, lr);
    b.reduce_add(delta);
    b.finish()
}
