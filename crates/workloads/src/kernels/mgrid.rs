//! 172.mgrid — multigrid solver (SPEC 2000).
//!
//! `resid` and `psinv` (27-point stencils, here row-linearized to their
//! 1-D op mix) dominate; `rprj3`/`interp` move between grids with
//! non-unit strides; `norm2u3` is a sum+max reduction pair.

use sv_ir::{Loop, LoopBuilder, OpKind, Operand, ScalarType};

const N: u64 = 254; // 256³ training grid, inner dimension
const VCYCLES: u64 = 40;

/// Eight hand kernels (suite filled to the paper's 16).
pub fn kernels() -> Vec<Loop> {
    vec![
        resid(),
        psinv(),
        rprj3(),
        interp(),
        norm2u3(),
        comm3(),
        zero3(),
        zran3_sift(),
    ]
}

fn stencil_body(name: &str, loads: usize) -> Loop {
    let mut b = LoopBuilder::new(name);
    b.trip(N).invocations(VCYCLES * N * 4);
    let u = b.array("u", ScalarType::F64, 3 * N + 16);
    let v = b.array("v", ScalarType::F64, N + 8);
    let r = b.array("r", ScalarType::F64, N + 8);
    let c0 = b.live_in("c0", ScalarType::F64);
    let c1 = b.live_in("c1", ScalarType::F64);

    // Neighbour sums share one coefficient per distance class, exactly as
    // mgrid factors them: sum the neighbours first, multiply once.
    let centre = b.load(u, 1, 1);
    let scaled_centre = b.fmul_li(c0, centre);
    let mut nsum: Option<sv_ir::OpId> = None;
    for i in 0..loads {
        let off = [0i64, 2, N as i64, N as i64 + 2, 2 * N as i64, 2 * N as i64 + 2, 1, 3]
            [i % 8]
            + (i / 8) as i64;
        let l = b.load(u, 1, off);
        nsum = Some(match nsum {
            None => l,
            Some(prev) => b.fadd(prev, l),
        });
    }
    let weighted = b.fmul_li(c1, nsum.expect("at least one neighbour"));
    let acc = b.fadd(scaled_centre, weighted);
    let lv = b.load(v, 1, 0);
    let res = b.fsub(lv, acc);
    b.store(r, 1, 0, res);
    b.finish()
}

/// `resid`: r = v − A·u. Eight neighbour loads plus the centre.
fn resid() -> Loop {
    stencil_body("mgrid.resid", 8)
}

/// `psinv`: u += M·r — same shape, six neighbour loads.
fn psinv() -> Loop {
    stencil_body("mgrid.psinv", 6)
}

/// `rprj3`: restriction to the coarse grid — the *output* runs at half
/// rate, so the fine-grid loads have stride 2: not vectorizable on a
/// machine without gather support.
fn rprj3() -> Loop {
    let mut b = LoopBuilder::new("mgrid.rprj3");
    b.trip(N / 2).invocations(VCYCLES * N);
    let r = b.array("r", ScalarType::F64, 2 * N + 16);
    let s = b.array("s", ScalarType::F64, N / 2 + 8);
    let l0 = b.load(r, 2, 0);
    let l1 = b.load(r, 2, 1);
    let l2 = b.load(r, 2, 2);
    let s01 = b.fadd(l0, l1);
    let w = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(l2), Operand::ConstF(0.5));
    let sum = b.fadd(s01, w);
    b.store(s, 1, 0, sum);
    b.finish()
}

/// `interp`: prolongation — coarse loads feed two interleaved stores
/// (stride 2), again gather/scatter-bound.
fn interp() -> Loop {
    let mut b = LoopBuilder::new("mgrid.interp");
    b.trip(N / 2).invocations(VCYCLES * N);
    let z = b.array("z", ScalarType::F64, N / 2 + 8);
    let u = b.array("uf", ScalarType::F64, 2 * N + 16);
    let l0 = b.load(z, 1, 0);
    let l1 = b.load(z, 1, 1);
    let avg1 = b.fadd(l0, l1);
    let avg = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(avg1), Operand::ConstF(0.5));
    b.store(u, 2, 0, l0);
    b.store(u, 2, 1, avg);
    b.finish()
}

/// `norm2u3`: the L2 and max norms — an FP sum reduction (sequential
/// without reassociation) plus a vectorizable max reduction.
fn norm2u3() -> Loop {
    let mut b = LoopBuilder::new("mgrid.norm2u3");
    b.trip(N).invocations(VCYCLES * N / 8);
    let r = b.array("r", ScalarType::F64, N + 8);
    let l = b.load(r, 1, 0);
    let sq = b.fmul(l, l);
    b.reduce_add(sq);
    let a = b.fabs(l);
    b.reduce(OpKind::Max, ScalarType::F64, a);
    b.finish()
}

/// `comm3`: ghost-cell exchange — plain edge copies, fully vectorizable
/// but too small for any technique to matter.
fn comm3() -> Loop {
    let mut b = LoopBuilder::new("mgrid.comm3");
    b.trip(N).invocations(VCYCLES * N / 2);
    let face = b.array("face", ScalarType::F64, N + 8);
    let ghost = b.array("ghost", ScalarType::F64, N + 8);
    let l = b.load(face, 1, 0);
    b.store(ghost, 1, 0, l);
    b.finish()
}

/// `zero3`: clear a work array between V-cycles.
fn zero3() -> Loop {
    use sv_ir::{OpKind, Operand};
    let mut b = LoopBuilder::new("mgrid.zero3");
    b.trip(N).invocations(VCYCLES * N / 4);
    let r = b.array("r", ScalarType::F64, N + 8);
    let z = b.bin(
        OpKind::Mul,
        ScalarType::F64,
        Operand::ConstF(0.0),
        Operand::ConstF(0.0),
    );
    b.store(r, 1, 0, z);
    b.finish()
}

/// The `zran3` charge-sifting pass: running max/min searches over the
/// random field — order-sensitive scans modeled as recurrences.
fn zran3_sift() -> Loop {
    use sv_ir::OpKind;
    let mut b = LoopBuilder::new("mgrid.zran3");
    b.trip(N).invocations(N / 4);
    let z = b.array("z", ScalarType::F64, N + 8);
    let lz = b.load(z, 1, 0);
    let hi = b.recurrence(OpKind::Max, ScalarType::F64, lz);
    let lo = b.recurrence(OpKind::Min, ScalarType::F64, lz);
    let spread = b.fsub(hi, lo);
    b.live_out("spread", spread);
    b.finish()
}
