//! 125.turb3d — isotropic turbulence, FFT-based (SPEC 95).
//!
//! The critical loops are FFT butterflies over a 64³ grid: *very short
//! trip counts* (a radix pass over 32 pairs) entered an enormous number of
//! times. Tighter kernels buy little here — the software pipeline's
//! prologue and epilogue dominate — which is why selective vectorization
//! slightly *loses* on this benchmark in the paper (0.95×).

use sv_ir::{Loop, LoopBuilder, ScalarType};

const FFT_N: u64 = 4; // iterations of one butterfly pass
const CALLS: u64 = 500_000; // butterfly passes over the whole run (scaled)

/// Five hand kernels (suite filled to the paper's 12).
pub fn kernels() -> Vec<Loop> {
    vec![butterfly(), twiddle_scale(), energy(), realspace_scale(), shell_sum()]
}

/// One radix-2 butterfly pass: low trip count, interleaved (stride-2)
/// complex pairs.
fn butterfly() -> Loop {
    let mut b = LoopBuilder::new("turb3d.butterfly");
    b.trip(FFT_N).invocations(CALLS);
    let x = b.array("x", ScalarType::F64, 2 * FFT_N + 16);
    let wr = b.live_in("wr", ScalarType::F64);
    let a = b.load(x, 2, 0);
    let c = b.load(x, 2, 1);
    let t = b.fmul_li(wr, c);
    let hi = b.fadd(a, t);
    let lo = b.fsub(a, t);
    b.store(x, 2, 0, hi);
    b.store(x, 2, 1, lo);
    b.finish()
}

/// Twiddle scaling between passes: unit stride but still a short trip.
fn twiddle_scale() -> Loop {
    let mut b = LoopBuilder::new("turb3d.twiddle");
    b.trip(FFT_N * 2).invocations(CALLS);
    let x = b.array("x", ScalarType::F64, 2 * FFT_N + 16);
    let s = b.live_in("scale", ScalarType::F64);
    let l = b.load(x, 1, 0);
    let m = b.fmul_li(s, l);
    b.store(x, 1, 0, m);
    b.finish()
}

/// Spectral energy accumulation: FP sum over squared magnitudes.
fn energy() -> Loop {
    let mut b = LoopBuilder::new("turb3d.energy");
    b.trip(FFT_N * 4).invocations(CALLS / 50);
    let x = b.array("x", ScalarType::F64, 4 * FFT_N + 16);
    let l = b.load(x, 1, 0);
    let sq = b.fmul(l, l);
    b.reduce_add(sq);
    b.finish()
}

/// Real-space renormalization after the inverse transform: one multiply
/// per point, unit stride, but over a short FFT line.
fn realspace_scale() -> Loop {
    let mut b = LoopBuilder::new("turb3d.rescale");
    b.trip(FFT_N * 8).invocations(CALLS / 8);
    let u = b.array("u", ScalarType::F64, 8 * FFT_N + 16);
    let inv = b.live_in("invn", ScalarType::F64);
    let l = b.load(u, 1, 0);
    let m = b.fmul_li(inv, l);
    b.store(u, 1, 0, m);
    b.finish()
}

/// Spectral shell binning: an accumulation (sequential FP sum) over the
/// modes of one shell.
fn shell_sum() -> Loop {
    let mut b = LoopBuilder::new("turb3d.shell");
    b.trip(FFT_N * 2).invocations(CALLS / 40);
    let xr = b.array("specr", ScalarType::F64, 2 * FFT_N + 16);
    let xi = b.array("speci", ScalarType::F64, 2 * FFT_N + 16);
    let lr = b.load(xr, 1, 0);
    let li = b.load(xi, 1, 0);
    let r2 = b.fmul(lr, lr);
    let i2 = b.fmul(li, li);
    let mag = b.fadd(r2, i2);
    b.reduce_add(mag);
    b.finish()
}
