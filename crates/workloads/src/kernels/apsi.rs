//! 301.apsi — mesoscale pollutant-dispersion model (SPEC 2000).
//!
//! Many moderate loops over 3-D meteorology fields: vertical diffusion
//! (tridiagonal recurrences), horizontal advection stencils, and
//! thermodynamic point updates with divides and square roots. Aggregate
//! gains are small (the paper: 1.02×) because the sequential vertical
//! solves take a large share.

use sv_ir::{Loop, LoopBuilder, OpKind, Operand, ScalarType};

const N: u64 = 112; // 112×112×16 training grid, horizontal line
const STEPS: u64 = 100;

/// Eight hand kernels (suite filled to the paper's 61).
pub fn kernels() -> Vec<Loop> {
    vec![
        advection(),
        vertical_diffusion(),
        thermo(),
        smoothing(),
        coriolis(),
        moisture_clip(),
        radiation_decay(),
        moisture_excess(),
    ]
}

/// Supersaturation accumulation, if-converted: `excess += (q > qs) ?
/// q − qs : 0` as a cmp+select chain feeding a non-reassociable sum.
/// The loads, subtract, compare and select all vectorize while the
/// accumulation stays scalar — the mixed partition selective
/// vectorization is built for.
fn moisture_excess() -> Loop {
    use sv_ir::CmpPred;
    let mut b = LoopBuilder::new("apsi.excess");
    b.trip(N).invocations(STEPS * N);
    let q = b.array("q", ScalarType::F64, N + 8);
    let qs = b.array("qs", ScalarType::F64, N + 8);
    let lq = b.load(q, 1, 0);
    let ls = b.load(qs, 1, 0);
    let d = b.fsub(lq, ls);
    let c = b.cmp(CmpPred::Lt, ScalarType::F64, Operand::ConstF(0.0), Operand::def(d));
    let z = b.select(ScalarType::F64, Operand::def(c), Operand::def(d), Operand::ConstF(0.0));
    b.reduce_add(z);
    b.finish()
}

/// Horizontal advection: upwind differences, fully parallel.
fn advection() -> Loop {
    let mut b = LoopBuilder::new("apsi.advect");
    b.trip(N).invocations(STEPS * N * 4);
    let c = b.array("c", ScalarType::F64, N + 8);
    let u = b.array("u", ScalarType::F64, N + 8);
    let out = b.array("cn", ScalarType::F64, N + 8);
    let dt = b.live_in("dtdx", ScalarType::F64);
    let c0 = b.load(c, 1, 0);
    let c1 = b.load(c, 1, 1);
    let lu = b.load(u, 1, 0);
    let g = b.fsub(c1, c0);
    let f = b.fmul(lu, g);
    let s = b.fmul_li(dt, f);
    let n = b.fsub(c0, s);
    b.store(out, 1, 0, n);
    b.finish()
}

/// Vertical diffusion solve: the Thomas-algorithm recurrence with a
/// divide — sequential.
fn vertical_diffusion() -> Loop {
    let mut b = LoopBuilder::new("apsi.vdiff");
    b.trip(N).invocations(STEPS * N * 6);
    let a = b.array("a", ScalarType::F64, N + 8);
    let c = b.array("c", ScalarType::F64, N + 8);
    let kz = b.array("kz", ScalarType::F64, N + 8);
    let d = b.array("d", ScalarType::F64, N + 8);
    let w = b.array("w", ScalarType::F64, N + 8);
    let dz = b.live_in("dzi", ScalarType::F64);
    // Parallel part: assemble the diffusion coefficients.
    let lk = b.load(kz, 1, 0);
    let lk1 = b.load(kz, 1, 1);
    let ks = b.fadd(lk, lk1);
    let coef = b.fmul_li(dz, ks);
    b.store(w, 1, 0, coef);
    let la = b.load(a, 1, 0);
    let lc = b.load(c, 1, 0);
    let off = b.fmul(la, lc);
    // Sequential part: the Thomas forward sweep feeding d.
    let m = b.fmul(off, coef);
    let r = b.recurrence(OpKind::Sub, ScalarType::F64, m);
    b.store(d, 1, 0, r);
    b.finish()
}

/// Thermodynamic update: sqrt + divide per point, parallel but
/// long-latency-unit bound.
fn thermo() -> Loop {
    let mut b = LoopBuilder::new("apsi.thermo");
    b.trip(N).invocations(STEPS * N / 8);
    let t = b.array("t", ScalarType::F64, N + 8);
    let p = b.array("p", ScalarType::F64, N + 8);
    let out = b.array("theta", ScalarType::F64, N + 8);
    let lt = b.load(t, 1, 0);
    let lp = b.load(p, 1, 0);
    let sp = b.fsqrt(lp);
    let r = b.fdiv(lt, sp);
    b.store(out, 1, 0, r);
    b.finish()
}

/// Shapiro smoothing filter: 1-2-1 weighted average, parallel.
fn smoothing() -> Loop {
    let mut b = LoopBuilder::new("apsi.smooth");
    b.trip(N).invocations(STEPS * N * 2);
    let f = b.array("f", ScalarType::F64, N + 8);
    let out = b.array("fs", ScalarType::F64, N + 8);
    let fm = b.load(f, 1, 0);
    let fc = b.load(f, 1, 1);
    let fp = b.load(f, 1, 2);
    let s1 = b.fadd(fm, fp);
    let tc = b.fadd(fc, fc);
    let s2 = b.fadd(s1, tc);
    let avg = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(s2), Operand::ConstF(0.25));
    b.store(out, 1, 0, avg);
    b.finish()
}

/// Coriolis rotation of the wind components: cross-coupled multiply–adds
/// over u and v.
fn coriolis() -> Loop {
    let mut b = LoopBuilder::new("apsi.coriolis");
    b.trip(N).invocations(STEPS * N);
    let u = b.array("u", ScalarType::F64, N + 8);
    let v = b.array("v", ScalarType::F64, N + 8);
    let fcor = b.live_in("f", ScalarType::F64);
    let lu = b.load(u, 1, 0);
    let lv = b.load(v, 1, 0);
    let du = b.fmul_li(fcor, lv);
    let nu = b.fadd(lu, du);
    b.store(u, 1, 0, nu);
    let dv = b.fmul_li(fcor, lu);
    let nv = b.fsub(lv, dv);
    b.store(v, 1, 0, nv);
    b.finish()
}

/// Moisture clipping: negative humidities are zeroed and the removed mass
/// accumulated for conservation accounting.
fn moisture_clip() -> Loop {
    use sv_ir::Operand;
    let mut b = LoopBuilder::new("apsi.clip");
    b.trip(N).invocations(STEPS * N / 2);
    let q = b.array("q", ScalarType::F64, N + 8);
    let lq = b.load(q, 1, 0);
    let cl = b.bin(
        OpKind::Max,
        ScalarType::F64,
        Operand::def(lq),
        Operand::ConstF(0.0),
    );
    b.store(q, 1, 0, cl);
    let removed = b.fsub(cl, lq);
    b.reduce_add(removed);
    b.finish()
}

/// Long-wave radiation decay: a first-order relaxation toward the
/// equilibrium profile — multiply-dominated, parallel.
fn radiation_decay() -> Loop {
    let mut b = LoopBuilder::new("apsi.radiation");
    b.trip(N).invocations(STEPS * N / 4);
    let t = b.array("t", ScalarType::F64, N + 8);
    let teq = b.array("teq", ScalarType::F64, N + 8);
    let tau = b.live_in("tau", ScalarType::F64);
    let lt = b.load(t, 1, 0);
    let le = b.load(teq, 1, 0);
    let d = b.fsub(le, lt);
    let relax = b.fmul_li(tau, d);
    let nt = b.fadd(lt, relax);
    b.store(t, 1, 0, nt);
    b.finish()
}
