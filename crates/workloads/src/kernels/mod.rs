//! Hand-written IR encodings of each benchmark's hot kernels.
//!
//! Every function documents which source loop it models. Trip counts come
//! from the benchmarks' training inputs (array dimensions), invocation
//! counts from their outer-loop structure, both rounded — the evaluation
//! compares cycle *ratios*, which depend on the products only weakly.

pub mod apsi;
pub mod hydro2d;
pub mod mgrid;
pub mod nasa7;
pub mod su2cor;
pub mod swim;
pub mod tomcatv;
pub mod turb3d;
pub mod wave5;

use sv_ir::{Loop, LoopBuilder, ScalarType};

/// The paper's Figure 1 dot product: `s += x[i] * y[i]` with the
/// reduction *not* reassociable (the FP default), so the add must stay
/// scalar.
pub fn figure1_dot_product() -> Loop {
    let mut b = LoopBuilder::new("figure1.dot");
    b.trip(1000).invocations(1);
    let x = b.array("x", ScalarType::F64, 1024);
    let y = b.array("y", ScalarType::F64, 1024);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let m = b.fmul(lx, ly);
    b.reduce_add(m);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_hand_kernels_verify() {
        let all: Vec<Vec<Loop>> = vec![
            tomcatv::kernels(),
            swim::kernels(),
            mgrid::kernels(),
            nasa7::kernels(),
            su2cor::kernels(),
            hydro2d::kernels(),
            turb3d::kernels(),
            wave5::kernels(),
            apsi::kernels(),
        ];
        for suite in &all {
            assert!(!suite.is_empty());
            for l in suite {
                assert!(l.verify().is_ok(), "kernel {} is invalid", l.name);
                assert!(l.trip.count > 0);
                assert!(l.invocations > 0);
            }
        }
    }

    #[test]
    fn figure1_matches_paper_shape() {
        let l = figure1_dot_product();
        assert_eq!(l.ops.len(), 4);
        assert!(!l.allow_reassoc);
    }
}
