//! 093.nasa7 — the NAS kernels (SPEC 92).
//!
//! Seven numeric kernels with very different characters: `mxm`'s inner
//! loop is an FP dot-product reduction (sequential without
//! reassociation), `cfft2d` has stride-2 complex butterflies, `cholsky`
//! and `gmtry` carry divide recurrences, `btrix` is a big straight-line
//! block solve, `vpenta` a pentadiagonal recurrence, `emit` a vorticity
//! accumulation. Traditional vectorization collapses here (the paper
//! measures 0.18×) because distribution scalar-expands everything around
//! the reductions.

use sv_ir::{Loop, LoopBuilder, OpKind, Operand, ScalarType};

const N: u64 = 128;
const REPS: u64 = 60;

/// Seven hand kernels (suite filled to the paper's 30).
pub fn kernels() -> Vec<Loop> {
    vec![mxm(), cfft2d(), cholsky(), btrix(), gmtry(), emit(), vpenta()]
}

/// `mxm` inner loop: `c += a[i]·b[i]` — the canonical non-reassociable
/// FP reduction; only the load/multiply stream can be vectorized.
fn mxm() -> Loop {
    let mut b = LoopBuilder::new("nasa7.mxm");
    b.trip(N).invocations(REPS * N * 16);
    let a = b.array("a", ScalarType::F64, N + 8);
    let bb = b.array("b", ScalarType::F64, N + 8);
    let la = b.load(a, 1, 0);
    let lb = b.load(bb, 1, 0);
    let m = b.fmul(la, lb);
    b.reduce_add(m);
    b.finish()
}

/// `cfft2d` butterfly: complex data interleaved re/im ⇒ stride-2 memory
/// refs, so the memory side stays scalar while the arithmetic could go
/// either way.
fn cfft2d() -> Loop {
    let mut b = LoopBuilder::new("nasa7.cfft2d");
    b.trip(N / 2).invocations(REPS * 14);
    let x = b.array("x", ScalarType::F64, 2 * N + 16);
    let y = b.array("y", ScalarType::F64, 2 * N + 16);
    let wr = b.live_in("wr", ScalarType::F64);
    let wi = b.live_in("wi", ScalarType::F64);
    let xr = b.load(x, 2, 0);
    let xi = b.load(x, 2, 1);
    let yr = b.load(y, 2, 0);
    let yi = b.load(y, 2, 1);
    // (tr, ti) = w · (y_r, y_i)
    let t1 = b.fmul_li(wr, yr);
    let t2 = b.fmul_li(wi, yi);
    let tr = b.fsub(t1, t2);
    let t3 = b.fmul_li(wr, yi);
    let t4 = b.fmul_li(wi, yr);
    let ti = b.fadd(t3, t4);
    let or1 = b.fadd(xr, tr);
    let oi1 = b.fadd(xi, ti);
    b.store(x, 2, 0, or1);
    b.store(x, 2, 1, oi1);
    let or2 = b.fsub(xr, tr);
    let oi2 = b.fsub(xi, ti);
    b.store(y, 2, 0, or2);
    b.store(y, 2, 1, oi2);
    b.finish()
}

/// `cholsky` elimination step: `a[i] −= f·a[i−off]` with a divide feeding
/// the pivot — the multiply-add stream is parallel, the divide chain not.
fn cholsky() -> Loop {
    let mut b = LoopBuilder::new("nasa7.cholsky");
    b.trip(N).invocations(REPS * 8);
    let a = b.array("a", ScalarType::F64, 2 * N + 16);
    let piv = b.array("piv", ScalarType::F64, N + 8);
    let f = b.live_in("f", ScalarType::F64);
    let above = b.load(a, 1, N as i64);
    let cur = b.load(a, 1, 0);
    let scaled = b.fmul_li(f, above);
    let upd = b.fsub(cur, scaled);
    b.store(a, 1, 0, upd);
    let lp = b.load(piv, 1, 0);
    let d = b.fdiv(upd, lp);
    b.store(piv, 1, 1, d); // divide feeds the next pivot: recurrence
    b.finish()
}

/// `btrix` block-tridiagonal inner loop: a long straight-line FP chain
/// with many loads — purely resource-bound.
fn btrix() -> Loop {
    let mut b = LoopBuilder::new("nasa7.btrix");
    b.trip(N).invocations(REPS * 16);
    let arrs: Vec<_> = (0..5)
        .map(|i| b.array(format!("m{i}"), ScalarType::F64, N + 8))
        .collect();
    let out = b.array("out", ScalarType::F64, N + 8);
    let mut acc: Option<sv_ir::OpId> = None;
    for (i, &a) in arrs.iter().enumerate() {
        let l = b.load(a, 1, 0);
        let l2 = b.load(a, 1, 1);
        let m = b.fmul(l, l2);
        acc = Some(match acc {
            None => m,
            Some(prev) => {
                if i % 2 == 0 {
                    b.fadd(prev, m)
                } else {
                    b.fsub(prev, m)
                }
            }
        });
    }
    b.store(out, 1, 0, acc.unwrap());
    b.finish()
}

/// `gmtry` Gaussian elimination: divide-and-subtract recurrence.
fn gmtry() -> Loop {
    let mut b = LoopBuilder::new("nasa7.gmtry");
    b.trip(N).invocations(REPS * 4);
    let rmatrx = b.array("rmatrx", ScalarType::F64, 2 * N + 16);
    let l = b.load(rmatrx, 1, 0);
    let r = b.recurrence(OpKind::Sub, ScalarType::F64, l);
    let d = b.bin(OpKind::Div, ScalarType::F64, Operand::def(r), Operand::ConstF(3.0));
    b.store(rmatrx, 1, N as i64, d);
    b.finish()
}

/// `emit` vortex emission: parallel arithmetic plus an FP sum.
fn emit() -> Loop {
    let mut b = LoopBuilder::new("nasa7.emit");
    b.trip(N).invocations(REPS * 2);
    let z = b.array("z", ScalarType::F64, N + 8);
    let g = b.array("gamma", ScalarType::F64, N + 8);
    let out = b.array("force", ScalarType::F64, N + 8);
    let lz = b.load(z, 1, 0);
    let lg = b.load(g, 1, 0);
    let sq = b.fmul(lz, lz);
    let s = b.fsqrt(sq);
    let m = b.fmul(s, lg);
    b.store(out, 1, 0, m);
    b.reduce_add(m);
    b.finish()
}

/// `vpenta` pentadiagonal inversion: two chained recurrences.
fn vpenta() -> Loop {
    let mut b = LoopBuilder::new("nasa7.vpenta");
    b.trip(N).invocations(REPS * 8);
    let x = b.array("x", ScalarType::F64, N + 8);
    let y = b.array("y", ScalarType::F64, N + 8);
    let lx = b.load(x, 1, 0);
    let r1 = b.recurrence(OpKind::Mul, ScalarType::F64, lx);
    let r2 = b.recurrence(OpKind::Add, ScalarType::F64, r1);
    b.store(y, 1, 0, r2);
    b.finish()
}
