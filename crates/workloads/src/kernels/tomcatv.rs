//! 101.tomcatv — vectorized mesh generation (SPEC 95).
//!
//! The program is one big SOR-style iteration: a 9-point-stencil residual
//! computation, max-norm reductions, a tridiagonal solve per row (forward
//! elimination + back substitution — inherently sequential), and additive
//! mesh updates. The stencil and update loops carry almost all the work,
//! are fully data parallel, and are memory/FP-balanced — which is exactly
//! where selective vectorization shines (the paper's best result, 1.38×).

use sv_ir::{Loop, LoopBuilder, OpKind, Operand, ScalarType};

const N: u64 = 253; // training mesh is 257²; inner loops run 2..n-1
const STEPS: u64 = 100; // outer relaxation sweeps (scaled down uniformly)

/// The six resource-limited inner loops (paper Table 3 reports 6).
pub fn kernels() -> Vec<Loop> {
    vec![residual(), rhs_update(), boundary(), forward_elim(), back_subst(), mesh_add()]
}

/// Main residual: the 9-point stencil over `x` and `y` computing `rx, ry`.
/// ~30 FP ops and 12 unit-stride memory refs per point.
fn residual() -> Loop {
    let mut b = LoopBuilder::new("tomcatv.residual");
    b.trip(N).invocations(STEPS * N);
    let x = b.array("x", ScalarType::F64, 3 * N + 8);
    let y = b.array("y", ScalarType::F64, 3 * N + 8);
    let rx = b.array("rx", ScalarType::F64, N + 8);
    let ry = b.array("ry", ScalarType::F64, N + 8);

    // Neighbour loads; rows are linearized so ±N is the vertical stencil.
    let xm = b.load(x, 1, 0);
    let xp = b.load(x, 1, 2);
    let xc = b.load(x, 1, 1);
    let xu = b.load(x, 1, (N + 1) as i64);
    let xd = b.load(x, 1, (2 * N + 1) as i64);
    let ym = b.load(y, 1, 0);
    let yp = b.load(y, 1, 2);
    let yc = b.load(y, 1, 1);
    let yu = b.load(y, 1, (N + 1) as i64);
    let yd = b.load(y, 1, (2 * N + 1) as i64);

    // Metric terms: xx = (x[i+1]-x[i-1])/2 etc.
    let half = Operand::ConstF(0.5);
    let xx_d = b.fsub(xp, xm);
    let xx = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(xx_d), half);
    let yx_d = b.fsub(yp, ym);
    let yx = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(yx_d), half);
    let xy_d = b.fsub(xd, xu);
    let xy = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(xy_d), half);
    let yy_d = b.fsub(yd, yu);
    let yy = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(yy_d), half);

    // a = ¼(xy² + yy²), b = ¼(xx² + yx²), c = ¼(xx·xy + yx·yy)
    let quarter = Operand::ConstF(0.25);
    let xy2 = b.fmul(xy, xy);
    let yy2 = b.fmul(yy, yy);
    let s1 = b.fadd(xy2, yy2);
    let aa = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(s1), quarter);
    let xx2 = b.fmul(xx, xx);
    let yx2 = b.fmul(yx, yx);
    let s2 = b.fadd(xx2, yx2);
    let bb = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(s2), quarter);
    let c1 = b.fmul(xx, xy);
    let c2 = b.fmul(yx, yy);
    let s3 = b.fadd(c1, c2);
    let cc = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(s3), quarter);

    // Residuals: rx = a·(x[i-1]+x[i+1]) − 2(b+c)·x[i] (flattened form).
    let sxm = b.fadd(xm, xp);
    let t1 = b.fmul(aa, sxm);
    let bc = b.fadd(bb, cc);
    let t2 = b.fmul(bc, xc);
    let rxv = b.fsub(t1, t2);
    b.store(rx, 1, 0, rxv);
    let sym = b.fadd(ym, yp);
    let u1 = b.fmul(aa, sym);
    let u2 = b.fmul(bc, yc);
    let ryv = b.fsub(u1, u2);
    b.store(ry, 1, 0, ryv);
    // The max-norm reductions live in the same loop, as in the original
    // Fortran: without reduction recognition they pin a scalar component
    // inside an otherwise fully data-parallel body — the mixed loop shape
    // the paper's selective vectorization is built for.
    let axv = b.fabs(rxv);
    b.reduce(OpKind::Max, ScalarType::F64, axv);
    let ayv = b.fabs(ryv);
    b.reduce(OpKind::Max, ScalarType::F64, ayv);
    b.finish()
}

/// RHS scaling: `d[i] = rx[i] * rel` — short, fully vectorizable.
fn rhs_update() -> Loop {
    let mut b = LoopBuilder::new("tomcatv.rhs");
    b.trip(N).invocations(STEPS * N);
    let rx = b.array("rx", ScalarType::F64, N + 8);
    let d = b.array("d", ScalarType::F64, N + 8);
    let rel = b.live_in("rel", ScalarType::F64);
    let l = b.load(rx, 1, 0);
    let m = b.fmul_li(rel, l);
    b.store(d, 1, 0, m);
    b.finish()
}

/// Boundary initialization sweep: plain copies along the mesh edge.
fn boundary() -> Loop {
    let mut b = LoopBuilder::new("tomcatv.boundary");
    b.trip(N).invocations(STEPS * 4);
    let edge = b.array("edge", ScalarType::F64, N + 8);
    let xb = b.array("xb", ScalarType::F64, N + 8);
    let l = b.load(edge, 1, 0);
    b.store(xb, 1, 0, l);
    b.finish()
}

/// Tridiagonal forward elimination with precomputed reciprocals (the
/// usual strength reduction): `d[i] = (b[i] − a[i]·d[i-1]) · binv[i]` — a
/// multiply–subtract recurrence, fully sequential but divide-free on the
/// cycle.
fn forward_elim() -> Loop {
    let mut b = LoopBuilder::new("tomcatv.forward");
    b.trip(N).invocations(STEPS * N);
    let aa = b.array("aa", ScalarType::F64, N + 8);
    let binv = b.array("binv", ScalarType::F64, N + 8);
    let dd = b.array("dd", ScalarType::F64, N + 8);
    let la = b.load(aa, 1, 0);
    let lb = b.load(binv, 1, 0);
    // r[i] = a[i]·binv[i] − r[i−1]: the eliminated coefficient lives in a
    // register around the back edge.
    let prod = b.fmul(la, lb);
    let r = b.recurrence(OpKind::Sub, ScalarType::F64, prod);
    b.store(dd, 1, 0, r);
    b.finish()
}

/// Back substitution: `x[i] = d[i]·(r[i] − c[i]·x[i+1])` walking
/// backwards — again a sequential recurrence.
fn back_subst() -> Loop {
    let mut b = LoopBuilder::new("tomcatv.backsub");
    b.trip(N).invocations(STEPS * N);
    let c = b.array("c", ScalarType::F64, N + 8);
    let r = b.array("r", ScalarType::F64, N + 8);
    let xx = b.array("xx", ScalarType::F64, N + 8);
    let lc = b.load(c, 1, 0);
    let lr = b.load(r, 1, 0);
    let lx = b.load(xx, 1, 0); // previous solution element (recurrence via memory)
    let prod = b.fmul(lc, lx);
    let diff = b.fsub(lr, prod);
    b.store(xx, 1, 1, diff);
    b.finish()
}

/// Mesh update: `x[i] += rx[i]; y[i] += ry[i]` — the classic add-update.
fn mesh_add() -> Loop {
    let mut b = LoopBuilder::new("tomcatv.meshadd");
    b.trip(N).invocations(STEPS * N);
    let x = b.array("x", ScalarType::F64, N + 8);
    let y = b.array("y", ScalarType::F64, N + 8);
    let rx = b.array("rx", ScalarType::F64, N + 8);
    let ry = b.array("ry", ScalarType::F64, N + 8);
    let lx = b.load(x, 1, 0);
    let lrx = b.load(rx, 1, 0);
    let sx = b.fadd(lx, lrx);
    b.store(x, 1, 0, sx);
    let ly = b.load(y, 1, 0);
    let lry = b.load(ry, 1, 0);
    let sy = b.fadd(ly, lry);
    b.store(y, 1, 0, sy);
    b.finish()
}
