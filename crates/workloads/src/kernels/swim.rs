//! 171.swim — shallow water equations (SPEC 2000).
//!
//! Three big stencil sweeps (`calc1`, `calc2`, `calc3`) dominate: pure
//! element-wise finite differences, fully data parallel, memory heavy.
//! A small periodic-boundary copy loop runs per sweep.

use sv_ir::{Loop, LoopBuilder, ScalarType};

const N: u64 = 512; // 512×512 training grid, row-linearized
const STEPS: u64 = 30;

/// The eight hand-modeled inner loops (the suite is filled to the paper's
/// 14 by the synthetic generator).
pub fn kernels() -> Vec<Loop> {
    vec![
        calc1(),
        calc2(),
        calc3(),
        boundary_copy(),
        pcheck(),
        initial_conditions(),
        halve_timestep(),
        ns_boundary(),
        wetdry_update(),
    ]
}

/// Wet/dry masked update, if-converted: `u[i] += dt·(du[i] − drag(u))`
/// only where the cell mask is wet, flattened to a conditional saxpy.
/// The cubic drag polynomial makes the loop FP-bound like `calc1`, and
/// the select runs elementwise with the rest of the chain.
fn wetdry_update() -> Loop {
    use sv_ir::{CmpPred, OpKind, Operand};
    let mut b = LoopBuilder::new("swim.wetdry");
    b.trip(N).invocations(STEPS * N);
    let mask = b.array("mask", ScalarType::F64, 2 * N + 8);
    let u = b.array("u", ScalarType::F64, 2 * N + 8);
    let du = b.array("du", ScalarType::F64, 2 * N + 8);
    let dt = b.live_in("dt", ScalarType::F64);
    let lm = b.load(mask, 1, 0);
    let lu = b.load(u, 1, 0);
    let ld = b.load(du, 1, 0);
    // drag(u) = u·(c1 + u·(c2 + u·c3)) — Horner form, three mul/add pairs.
    let c3u = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(lu), Operand::ConstF(0.003));
    let h2 = b.bin(OpKind::Add, ScalarType::F64, Operand::def(c3u), Operand::ConstF(0.02));
    let h2u = b.fmul(h2, lu);
    let h1 = b.bin(OpKind::Add, ScalarType::F64, Operand::def(h2u), Operand::ConstF(0.1));
    let drag = b.fmul(h1, lu);
    let net = b.fsub(ld, drag);
    let ax = b.fmul_li(dt, net);
    let s = b.fadd(lu, ax);
    let c = b.cmp(CmpPred::Ne, ScalarType::F64, Operand::def(lm), Operand::ConstF(0.0));
    let r = b.fselect(c, s, lu);
    b.store(u, 1, 0, r);
    b.finish()
}

/// `calc1`: CU, CV, Z, H from U, V, P — 8 loads, 4 stores, ~14 FP ops.
fn calc1() -> Loop {
    let mut b = LoopBuilder::new("swim.calc1");
    b.trip(N).invocations(STEPS * N);
    let u = b.array("u", ScalarType::F64, 2 * N + 8);
    let v = b.array("v", ScalarType::F64, 2 * N + 8);
    let p = b.array("p", ScalarType::F64, 2 * N + 8);
    let cu = b.array("cu", ScalarType::F64, N + 8);
    let cv = b.array("cv", ScalarType::F64, N + 8);
    let z = b.array("z", ScalarType::F64, N + 8);
    let h = b.array("h", ScalarType::F64, N + 8);

    let pc = b.load(p, 1, 0);
    let pe = b.load(p, 1, 1);
    let pn = b.load(p, 1, N as i64);
    let uc = b.load(u, 1, 0);
    let ue = b.load(u, 1, 1);
    let vc = b.load(v, 1, 0);
    let vn = b.load(v, 1, N as i64);
    let un = b.load(u, 1, N as i64);

    // cu = ½(p[i]+p[i+1])·u
    let sp = b.fadd(pc, pe);
    let cuv = b.fmul(sp, uc);
    b.store(cu, 1, 0, cuv);
    // cv = ½(p[i]+p[i+N])·v
    let spn = b.fadd(pc, pn);
    let cvv = b.fmul(spn, vc);
    b.store(cv, 1, 0, cvv);
    // z = (dv/dx − du/dy) / (p sums)
    let dv = b.fsub(vn, vc);
    let du = b.fsub(ue, uc);
    let num = b.fsub(dv, du);
    let den = b.fadd(sp, spn);
    let zv = b.fdiv(num, den);
    b.store(z, 1, 0, zv);
    // h = p + ¼(u² + v²)
    let u2 = b.fmul(uc, ue);
    let v2 = b.fmul(vc, vn);
    let ke = b.fadd(u2, v2);
    let hv = b.fadd(pc, ke);
    b.store(h, 1, 0, hv);
    let _ = un;
    b.finish()
}

/// `calc2`: the time-stepped U, V, P update — 9 loads, 3 stores.
fn calc2() -> Loop {
    let mut b = LoopBuilder::new("swim.calc2");
    b.trip(N).invocations(STEPS * N);
    let cu = b.array("cu", ScalarType::F64, 2 * N + 8);
    let cv = b.array("cv", ScalarType::F64, 2 * N + 8);
    let z = b.array("z", ScalarType::F64, 2 * N + 8);
    let h = b.array("h", ScalarType::F64, 2 * N + 8);
    let unew = b.array("unew", ScalarType::F64, N + 8);
    let vnew = b.array("vnew", ScalarType::F64, N + 8);
    let pnew = b.array("pnew", ScalarType::F64, N + 8);
    let tdts = b.live_in("tdts8", ScalarType::F64);

    let zc = b.load(z, 1, 0);
    let zn = b.load(z, 1, N as i64);
    let cvc = b.load(cv, 1, 0);
    let cve = b.load(cv, 1, 1);
    let cuc = b.load(cu, 1, 0);
    let cun = b.load(cu, 1, N as i64);
    let hc = b.load(h, 1, 0);
    let he = b.load(h, 1, 1);
    let hn = b.load(h, 1, N as i64);

    let zs = b.fadd(zc, zn);
    let cvs = b.fadd(cvc, cve);
    let t1 = b.fmul(zs, cvs);
    let t2 = b.fmul_li(tdts, t1);
    let dh = b.fsub(he, hc);
    let un = b.fsub(t2, dh);
    b.store(unew, 1, 0, un);

    let cus = b.fadd(cuc, cun);
    let t3 = b.fmul(zs, cus);
    let t4 = b.fmul_li(tdts, t3);
    let dhn = b.fsub(hn, hc);
    let vn = b.fsub(t4, dhn);
    b.store(vnew, 1, 0, vn);

    let cue = b.load(cu, 1, 1);
    let dcu = b.fsub(cue, cuc);
    let dcv = b.fsub(cve, cvc);
    let div = b.fadd(dcu, dcv);
    let pn = b.fsub(hc, div);
    b.store(pnew, 1, 0, pn);
    b.finish()
}

/// `calc3`: the time-smoothing update `uold = u + α(unew − 2u + uold)`.
fn calc3() -> Loop {
    let mut b = LoopBuilder::new("swim.calc3");
    b.trip(N).invocations(STEPS * N);
    let u = b.array("u", ScalarType::F64, N + 8);
    let uold = b.array("uold", ScalarType::F64, N + 8);
    let unew = b.array("unew", ScalarType::F64, N + 8);
    let alpha = b.live_in("alpha", ScalarType::F64);
    let lu = b.load(u, 1, 0);
    let lo = b.load(uold, 1, 0);
    let ln = b.load(unew, 1, 0);
    let two_u = b.fadd(lu, lu);
    let curv1 = b.fsub(ln, two_u);
    let curv = b.fadd(curv1, lo);
    let scaled = b.fmul_li(alpha, curv);
    let res = b.fadd(lu, scaled);
    b.store(uold, 1, 0, res);
    b.store(u, 1, 0, ln);
    b.finish()
}

/// Periodic boundary copy: short trip, pure copies — little to gain, a
/// loop where all techniques tie.
fn boundary_copy() -> Loop {
    let mut b = LoopBuilder::new("swim.boundary");
    b.trip(N).invocations(STEPS * 3);
    let src = b.array("interior", ScalarType::F64, N + 8);
    let dst = b.array("halo", ScalarType::F64, N + 8);
    let l = b.load(src, 1, 0);
    b.store(dst, 1, 0, l);
    b.finish()
}

/// `pcheck`-style diagnostics: three FP sums over the state arrays —
/// sequential reductions that tie every technique.
fn pcheck() -> Loop {
    let mut b = LoopBuilder::new("swim.pcheck");
    b.trip(N).invocations(STEPS / 2 * N / 8);
    let p = b.array("p", ScalarType::F64, N + 8);
    let u = b.array("u", ScalarType::F64, N + 8);
    let v = b.array("v", ScalarType::F64, N + 8);
    let lp = b.load(p, 1, 0);
    b.reduce_add(lp);
    let lu = b.load(u, 1, 0);
    let au = b.fabs(lu);
    b.reduce_add(au);
    let lv = b.load(v, 1, 0);
    let av = b.fabs(lv);
    b.reduce_add(av);
    b.finish()
}

/// Initial-condition setup: trigonometric-flavoured polynomials of the
/// grid index, exercising induction-variable data operands.
fn initial_conditions() -> Loop {
    use sv_ir::{OpKind, Operand};
    let mut b = LoopBuilder::new("swim.init");
    b.trip(N).invocations(N); // once per row at startup
    let psi = b.array("psi", ScalarType::F64, N + 8);
    let amp = b.live_in("amp", ScalarType::F64);
    let idx = b.bin(
        OpKind::Mul,
        ScalarType::F64,
        Operand::iv(),
        Operand::ConstF(0.015),
    );
    let sq = b.fmul(idx, idx);
    let wave = b.fsub(idx, sq);
    let scaled = b.fmul_li(amp, wave);
    b.store(psi, 1, 0, scaled);
    b.finish()
}

/// Time-step halving on restart: a couple of scalar multiplies over short
/// coefficient arrays.
fn halve_timestep() -> Loop {
    use sv_ir::{OpKind, Operand};
    let mut b = LoopBuilder::new("swim.halvedt");
    b.trip(32).invocations(STEPS / 10 + 1);
    let c = b.array("coef", ScalarType::F64, 48);
    let l = b.load(c, 1, 0);
    let h = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(l), Operand::ConstF(0.5));
    b.store(c, 1, 0, h);
    b.finish()
}

/// North–south periodic boundary: strided row copy (the grid pitch makes
/// it non-unit-stride — not vectorizable without gather).
fn ns_boundary() -> Loop {
    let mut b = LoopBuilder::new("swim.nsboundary");
    b.trip(N / 2).invocations(STEPS * 3);
    let grid = b.array("grid", ScalarType::F64, 2 * N + 16);
    let halo = b.array("halo2", ScalarType::F64, N + 8);
    let l = b.load(grid, 2, 0);
    b.store(halo, 1, 0, l);
    b.finish()
}
