//! 146.wave5 — plasma particle-in-cell simulation (SPEC 95).
//!
//! Particle pushes (field interpolation, position/velocity updates) mix
//! unit-stride field arrays with particle-indexed accesses that defeat
//! unit-stride vectorization, plus FFT-ish field solves. With 133
//! resource-limited loops, no single kernel dominates; gains are modest
//! (the paper: 1.03×).

use sv_ir::{Loop, LoopBuilder, OpKind, ScalarType};

const NP: u64 = 5000; // particles per push loop (scaled)
const NF: u64 = 1000; // field points
const STEPS: u64 = 40;

/// Eight hand kernels (suite filled to the paper's 133).
pub fn kernels() -> Vec<Loop> {
    vec![
        particle_push(),
        field_interp(),
        charge_deposit(),
        field_solve(),
        diagnostics(),
        vy_push(),
        current_smooth(),
        boundary_absorb(),
        field_argmax(),
    ]
}

/// Peak-field diagnostic, if-converted argmax: a max reduction tracks
/// the largest |E| while a select-carried recurrence latches the index
/// where it last improved. The compare and the max are elementwise but
/// the index latch is a true distance-1 cycle, so only part of the loop
/// may vectorize — a partition stress for the cmp/select path.
fn field_argmax() -> Loop {
    use sv_ir::{CmpPred, OpKind, Operand, ScalarType};
    let mut b = LoopBuilder::new("wave5.fieldmax");
    b.trip(NF).invocations(STEPS);
    let e = b.array("efield", ScalarType::F64, NF + 8);
    let le = b.load(e, 1, 0);
    let mag = b.fabs(le);
    let m = b.reduce(OpKind::Max, ScalarType::F64, mag);
    // `prev max < |E|` — reads the accumulator from the previous
    // iteration, exactly when the max is about to improve.
    let c = b.cmp(
        CmpPred::Lt,
        ScalarType::F64,
        Operand::carried(m, 1),
        Operand::def(mag),
    );
    let idx = b.select_recurrence(ScalarType::I64, Operand::def(c), Operand::iv());
    b.live_out("argmax", idx);
    b.finish()
}

/// Velocity/position update: unit-stride over the particle arrays, fully
/// parallel — the benchmark's best case.
fn particle_push() -> Loop {
    let mut b = LoopBuilder::new("wave5.push");
    b.trip(NP).invocations(STEPS);
    let px = b.array("px", ScalarType::F64, NP + 8);
    let vx = b.array("vx", ScalarType::F64, NP + 8);
    let ex = b.array("ex", ScalarType::F64, NP + 8);
    let qm = b.live_in("qm", ScalarType::F64);
    let lv = b.load(vx, 1, 0);
    let le = b.load(ex, 1, 0);
    let acc = b.fmul_li(qm, le);
    let nv = b.fadd(lv, acc);
    b.store(vx, 1, 0, nv);
    let lp = b.load(px, 1, 0);
    let np = b.fadd(lp, nv);
    b.store(px, 1, 0, np);
    b.finish()
}

/// Field interpolation at particle positions: the gather is modeled by a
/// non-unit-stride read — not vectorizable without hardware gather.
fn field_interp() -> Loop {
    let mut b = LoopBuilder::new("wave5.interp");
    b.trip(NP / 2).invocations(STEPS);
    let grid = b.array("grid", ScalarType::F64, 2 * NP + 16);
    let w = b.array("w", ScalarType::F64, NP + 8);
    let out = b.array("epart", ScalarType::F64, NP + 8);
    let g0 = b.load(grid, 2, 0);
    let g1 = b.load(grid, 2, 1);
    let lw = b.load(w, 1, 0);
    let d = b.fsub(g1, g0);
    let itp = b.fmul(lw, d);
    let res = b.fadd(g0, itp);
    b.store(out, 1, 0, res);
    b.finish()
}

/// Charge deposition: scatter modeled as a non-unit-stride
/// read-modify-write — sequentializing, like the real histogramming loop.
fn charge_deposit() -> Loop {
    let mut b = LoopBuilder::new("wave5.deposit");
    b.trip(NP / 2).invocations(STEPS);
    let rho = b.array("rho", ScalarType::F64, 2 * NP + 16);
    let q = b.array("q", ScalarType::F64, NP + 8);
    let lq = b.load(q, 1, 0);
    let lr = b.load(rho, 2, 0);
    let s = b.fadd(lr, lq);
    b.store(rho, 2, 0, s);
    b.finish()
}

/// Tridiagonal field solve along each line: a forward recurrence.
fn field_solve() -> Loop {
    let mut b = LoopBuilder::new("wave5.solve");
    b.trip(NF).invocations(STEPS * 8);
    let d = b.array("diag", ScalarType::F64, NF + 8);
    let r = b.array("rhs", ScalarType::F64, NF + 8);
    let s = b.array("scale", ScalarType::F64, NF + 8);
    let out = b.array("phi", ScalarType::F64, NF + 8);
    // Parallel preconditioning of the right-hand side...
    let ld = b.load(d, 1, 0);
    let lr = b.load(r, 1, 0);
    let ls = b.load(s, 1, 0);
    let pre = b.fmul(lr, ls);
    let m = b.fmul(ld, pre);
    b.store(out, 1, 0, m);
    // ...feeding the sequential elimination sweep.
    let acc = b.recurrence(OpKind::Sub, ScalarType::F64, m);
    b.store(r, 1, 1, acc);
    b.finish()
}

/// Energy/momentum diagnostics: parallel squares into an FP sum.
fn diagnostics() -> Loop {
    let mut b = LoopBuilder::new("wave5.diag");
    b.trip(NP).invocations(STEPS / 4);
    let vx = b.array("vx", ScalarType::F64, NP + 8);
    let vy = b.array("vy", ScalarType::F64, NP + 8);
    let lx = b.load(vx, 1, 0);
    let ly = b.load(vy, 1, 0);
    let sx = b.fmul(lx, lx);
    let sy = b.fmul(ly, ly);
    let s = b.fadd(sx, sy);
    b.reduce_add(s);
    b.finish()
}

/// The y-velocity push: same shape as the x push, second hot copy.
fn vy_push() -> Loop {
    let mut b = LoopBuilder::new("wave5.vypush");
    b.trip(NP).invocations(STEPS);
    let py = b.array("py", ScalarType::F64, NP + 8);
    let vy = b.array("vy2", ScalarType::F64, NP + 8);
    let ey = b.array("ey", ScalarType::F64, NP + 8);
    let qm = b.live_in("qm", ScalarType::F64);
    let lv = b.load(vy, 1, 0);
    let le = b.load(ey, 1, 0);
    let acc = b.fmul_li(qm, le);
    let nv = b.fadd(lv, acc);
    b.store(vy, 1, 0, nv);
    let lp = b.load(py, 1, 0);
    let np = b.fadd(lp, nv);
    b.store(py, 1, 0, np);
    b.finish()
}

/// Current smoothing: a 1-2-1 filter over the deposited current.
fn current_smooth() -> Loop {
    use sv_ir::Operand;
    let mut b = LoopBuilder::new("wave5.smooth");
    b.trip(NF).invocations(STEPS * 2);
    let j = b.array("cur", ScalarType::F64, NF + 8);
    let js = b.array("curs", ScalarType::F64, NF + 8);
    let jm = b.load(j, 1, 0);
    let jc = b.load(j, 1, 1);
    let jp = b.load(j, 1, 2);
    let side = b.fadd(jm, jp);
    let twice = b.fadd(jc, jc);
    let sum = b.fadd(side, twice);
    let avg = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(sum), Operand::ConstF(0.25));
    b.store(js, 1, 1, avg);
    b.finish()
}

/// Absorbing boundary for the fields: an exponential-taper multiply near
/// the edges, low trip count, entered constantly.
fn boundary_absorb() -> Loop {
    let mut b = LoopBuilder::new("wave5.absorb");
    b.trip(32).invocations(STEPS * 64);
    let e = b.array("efield", ScalarType::F64, 48);
    let taper = b.array("taper", ScalarType::F64, 48);
    let le = b.load(e, 1, 0);
    let lt = b.load(taper, 1, 0);
    let damped = b.fmul(le, lt);
    b.store(e, 1, 0, damped);
    b.finish()
}
