//! Optimality properties of the branch-and-bound oracle, exercised over
//! the whole workload suite, plus the committed strict-gap regressions.
//!
//! The oracle ([`sv_core::optimal_search`], built on this crate's
//! [`sv_analysis::bnb`] engine) claims two things for every loop it
//! proves: no legal partition schedules below the delivered II, and the
//! delivered II never exceeds the Kernighan–Lin heuristic's. This suite
//! checks both claims across every suite loop on the two CI-gate
//! machines, and pins the known strict improvements — the loops where
//! the exact search beats the paper's heuristic — as named regressions
//! so a search change that loses one fails by name.

use sv_core::parallel::{default_jobs, run_ordered};
use sv_core::{
    compile_checked, optimal_search, DriverConfig, OptimalConfig, Strategy,
};
use sv_machine::{MachineConfig, MachineRegistry};
use sv_workloads::all_benchmarks;

/// The committed `examples/machines/` registry (builtins + specs).
fn registry() -> MachineRegistry {
    let mut r = MachineRegistry::builtin();
    let dir = format!("{}/../../examples/machines", env!("CARGO_MANIFEST_DIR"));
    r.load_dir(std::path::Path::new(&dir)).expect("sweep specs load");
    r
}

fn suite_loop(name: &str) -> sv_ir::Loop {
    all_benchmarks()
        .iter()
        .flat_map(|s| s.loops.clone())
        .find(|l| l.name == name)
        .unwrap_or_else(|| panic!("no suite loop named `{name}`"))
}

/// Run the full pipeline both ways and return
/// `(heuristic_ii, optimal_ii, resmii, recmii)` for one case, asserting
/// the oracle closed its proof (no degradation in the driver report).
fn both_iis(l: &sv_ir::Loop, m: &MachineConfig) -> (u32, u32, u32, u32) {
    let (heur, _) = compile_checked(l, m, &DriverConfig::for_strategy(Strategy::Selective))
        .unwrap_or_else(|e| panic!("{}: selective: {e}", l.name));
    let (opt, report) = compile_checked(l, m, &DriverConfig::for_strategy(Strategy::Optimal))
        .unwrap_or_else(|e| panic!("{}: optimal: {e}", l.name));
    assert!(
        report.clean(),
        "{} on {}: oracle degraded: {:?}",
        l.name,
        m.name,
        report.fallbacks
    );
    let s = &opt.segments[0].schedule;
    (heur.segments[0].schedule.ii, s.ii, s.resmii, s.recmii)
}

/// Debug builds stride the sweep and skip the heaviest regressions so
/// `cargo test` stays quick; ci.sh runs this suite with `--release`,
/// where the full 754-case sweep closes in well under a minute.
fn debug_stride() -> usize {
    if cfg!(debug_assertions) {
        7
    } else {
        1
    }
}

/// Every suite loop on both CI-gate machines: the oracle proves within
/// the default budget, never above the heuristic, never below the
/// delivered schedule's own lower bounds.
#[test]
fn oracle_bounds_hold_on_every_suite_loop() {
    let registry = registry();
    let machines: Vec<(String, MachineConfig)> = ["paper", "vl4"]
        .iter()
        .map(|n| ((*n).to_string(), registry.get(n).unwrap().clone()))
        .collect();
    let loops: Vec<sv_ir::Loop> =
        all_benchmarks().iter().flat_map(|s| s.loops.clone()).collect();
    let cases: Vec<(usize, usize)> = (0..machines.len())
        .flat_map(|mi| (0..loops.len()).map(move |li| (mi, li)))
        .step_by(debug_stride())
        .collect();
    let checked = run_ordered(&cases, default_jobs(), |_, &(mi, li)| {
        let (mname, m) = &machines[mi];
        let l = &loops[li];
        let (heur_ii, opt_ii, resmii, recmii) = both_iis(l, m);
        assert!(
            opt_ii <= heur_ii,
            "{} on {mname}: proved optimal II {opt_ii} above heuristic II {heur_ii}",
            l.name
        );
        assert!(
            opt_ii >= resmii.max(recmii),
            "{} on {mname}: proved II {opt_ii} below its own MII {}",
            l.name,
            resmii.max(recmii)
        );
        1u32
    });
    assert_eq!(checked.iter().sum::<u32>() as usize, cases.len());
}

/// One strict-gap case, driven through the oracle directly so the proof
/// artifacts (outcome, witness, root bound) are themselves checked.
fn assert_gap(machine: &str, looop: &str, heur_ii: u32, opt_ii: u32) {
    use sv_analysis::OptimalOutcome;
    let registry = registry();
    let m = registry.get(machine).unwrap().clone();
    let l = suite_loop(looop);
    let (heur, _) = compile_checked(&l, &m, &DriverConfig::for_strategy(Strategy::Selective))
        .unwrap();
    let seed = heur.partition.as_ref().expect("selective records a partition");
    let seed_ii = heur.segments[0].schedule.ii;
    assert_eq!(seed_ii, heur_ii, "{looop} on {machine}: heuristic II moved");
    let report =
        optimal_search(&l, &m, &seed.partition, seed_ii, &OptimalConfig::default());
    assert_eq!(
        report.outcome,
        OptimalOutcome::Proved(opt_ii),
        "{looop} on {machine}: proof lost (stats {:?})",
        report.stats
    );
    let w = report.witness.as_ref().expect("a strict improvement carries a witness");
    assert_eq!(w.schedule.ii, opt_ii);
    assert!(
        report.root_lower_bound <= opt_ii,
        "root bound {} above the proved minimum {opt_ii}",
        report.root_lower_bound
    );
}

// The committed strict-gap regressions: loops where the exact search
// beats the Kernighan–Lin heuristic. The full gap table lives in the
// `table_optimality.txt` golden snapshot; these name the structurally
// distinct cases (tracked divides, exact vector packing, deep
// recurrences, long-II vl4 loops) so a pruning or ordering change that
// loses one fails with a readable name.

#[test]
fn gap_paper_nasa7_synth5() {
    assert_gap("paper", "093.nasa7.synth5", 8, 7);
}

#[test]
fn gap_paper_tomcatv_residual() {
    if cfg!(debug_assertions) {
        return; // deepest search tree (418k nodes); release-only, see ci.sh
    }
    assert_gap("paper", "tomcatv.residual", 19, 17);
}

#[test]
fn gap_paper_su2cor_synth9() {
    assert_gap("paper", "103.su2cor.synth9", 10, 9);
}

#[test]
fn gap_vl4_nasa7_gmtry() {
    if cfg!(debug_assertions) {
        return; // tracked-divide packing at II 66; release-only, see ci.sh
    }
    assert_gap("vl4", "nasa7.gmtry", 70, 66);
}

#[test]
fn gap_vl4_su2cor_synth0() {
    if cfg!(debug_assertions) {
        return; // largest gap (77 -> 66), heaviest probes; release-only, see ci.sh
    }
    assert_gap("vl4", "103.su2cor.synth0", 77, 66);
}

#[test]
fn gap_vl4_swim_synth2() {
    assert_gap("vl4", "171.swim.synth2", 11, 9);
}

#[test]
fn gap_vl4_apsi_synth23() {
    if cfg!(debug_assertions) {
        return; // long-II exact probes; release-only, see ci.sh
    }
    assert_gap("vl4", "301.apsi.synth23", 69, 66);
}
