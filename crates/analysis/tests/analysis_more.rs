//! Additional dependence-analysis behaviour tests.

use sv_analysis::{
    brute_force_mem_deps, mem_dependences, strongly_connected_components,
    vectorizable_ops, DepGraph, DepKind, Distance, VecStatus,
};
use sv_ir::{ArrayId, LoopBuilder, MemRef, OpKind, Operand, ScalarType};

fn r(stride: i64, offset: i64) -> MemRef {
    MemRef::scalar(ArrayId(0), stride, offset)
}

#[test]
fn weak_zero_siv_is_exact() {
    // a[5] (invariant) read by a moving a[i]: the conflict happens while
    // the moving reference has not passed element 5, i.e. exactly at
    // distances 0..=5 — the classic weak-zero SIV case, solved exactly.
    let deps = mem_dependences(&r(0, 5), &r(1, 0), 64);
    let expect: Vec<Distance> = (0..=5).map(Distance::Exact).collect();
    assert_eq!(deps, expect);
    let oracle = brute_force_mem_deps(&r(0, 5), &r(1, 0), 16);
    assert_eq!(oracle.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn crossing_siv_pair_is_exact() {
    // a[i] vs a[10 − i]: the references cross once; conflicts exist at the
    // even distances 0, 2, …, 10 (i = (10 − d)/2 ≥ 0) and nowhere else.
    let deps = mem_dependences(&r(1, 0), &r(-1, 10), 64);
    let expect: Vec<Distance> = (0..=5).map(|k| Distance::Exact(2 * k)).collect();
    assert_eq!(deps, expect);
    let oracle = brute_force_mem_deps(&r(1, 0), &r(-1, 10), 16);
    for d in [0u32, 2, 4, 6, 8, 10] {
        assert!(oracle.contains(&d));
    }
    assert!(!oracle.contains(&1));
}

#[test]
fn wide_vector_refs_against_wide_refs() {
    // Two width-2 refs offset by one element overlap at distances 0 and 1.
    let a = MemRef { array: ArrayId(0), stride: 1, offset: 0, width: 2 };
    let b = MemRef { array: ArrayId(0), stride: 1, offset: 1, width: 2 };
    assert_eq!(
        mem_dependences(&a, &b, 64),
        vec![Distance::Exact(0)],
        "a's window ends where b's begins in the same iteration"
    );
    assert_eq!(
        mem_dependences(&b, &a, 64),
        vec![Distance::Exact(0), Distance::Exact(1), Distance::Exact(2)]
    );
}

#[test]
fn output_dependence_edges_are_built() {
    let mut b = LoopBuilder::new("t");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let ly = b.load(y, 1, 0);
    b.store(x, 1, 1, ly); // writes x[i+1]
    b.store(x, 1, 0, ly); // writes x[i] — same cell one iteration later
    let l = b.finish();
    let g = DepGraph::build(&l);
    assert!(g
        .edges()
        .iter()
        .any(|e| e.kind == DepKind::Output && e.distance == 1));
}

#[test]
fn two_statement_cycle_detected_via_mixed_edges() {
    // s1: t[i] = a[i-1]; s2: a[i] = t[i] + c  — cycle with total distance 1
    // (t flow at 0, a flow at 1 back into s1's load).
    let mut b = LoopBuilder::new("t");
    let a = b.array("a", ScalarType::F64, 64);
    let t = b.array("t", ScalarType::F64, 64);
    let la = b.load(a, 1, 0);
    let st_t = b.store(t, 1, 1, la);
    let lt = b.load(t, 1, 1);
    let inc = b.bin(
        OpKind::Add,
        ScalarType::F64,
        Operand::def(lt),
        Operand::ConstF(1.0),
    );
    let st_a = b.store(a, 1, 1, inc);
    let l = b.finish();
    let g = DepGraph::build(&l);
    let sccs = strongly_connected_components(&g);
    assert_eq!(sccs.component_of(la), sccs.component_of(st_a));
    assert_eq!(sccs.component_of(st_t), sccs.component_of(lt));
    let v = vectorizable_ops(&l, &g, 2);
    assert!(v.iter().all(|s| *s == VecStatus::InDependenceCycle), "{v:?}");
}

#[test]
fn distinct_distance_classes_stay_parallel() {
    // a[2i] written, a[2i+1] read: disjoint parity classes, no edges, all
    // vectorizable except the non-unit-stride memory ops themselves.
    let mut b = LoopBuilder::new("t");
    let a = b.array("a", ScalarType::F64, 200);
    let la = b.load(a, 2, 1);
    let n = b.fneg(la);
    b.store(a, 2, 0, n);
    let l = b.finish();
    let g = DepGraph::build(&l);
    assert!(g.edges().iter().all(|e| !e.is_mem));
    let v = vectorizable_ops(&l, &g, 2);
    assert_eq!(v[0], VecStatus::NotUnitStride);
    assert!(v[1].is_vectorizable());
    assert_eq!(v[2], VecStatus::NotUnitStride);
}

#[test]
fn reduction_feeding_store_keeps_store_scalar_only_by_cycle_rules() {
    // The reduction's value is stored each iteration; the store is not in
    // the cycle and remains legally vectorizable (partition decisions are
    // the partitioner's job, not legality's).
    let mut b = LoopBuilder::new("t");
    let x = b.array("x", ScalarType::F64, 64);
    let out = b.array("out", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let s = b.reduce_add(lx);
    b.store(out, 1, 0, s);
    let l = b.finish();
    let g = DepGraph::build(&l);
    let v = vectorizable_ops(&l, &g, 2);
    assert_eq!(v[s.index()], VecStatus::ReductionNeedsReassoc);
    assert!(v[2].is_vectorizable(), "store of the running sum");
}

#[test]
fn long_distance_star_free_loop_vectorizable_at_smaller_vl() {
    // a[i+6] = f(a[i]): legal at vl 2 and 4, illegal at vl 8.
    let mut b = LoopBuilder::new("t");
    let a = b.array("a", ScalarType::F64, 128);
    let la = b.load(a, 1, 0);
    let n = b.fabs(la);
    b.store(a, 1, 6, n);
    let l = b.finish();
    let g = DepGraph::build(&l);
    for (vl, ok) in [(2u32, true), (4, true), (8, false)] {
        let v = vectorizable_ops(&l, &g, vl);
        assert_eq!(v.iter().all(|s| s.is_vectorizable()), ok, "vl={vl}");
    }
}

#[test]
fn select_three_operand_form_builds_all_register_edges() {
    // cond, then-arm, else-arm: every one of a select's three operands
    // must contribute its own flow edge into the dependence graph.
    let mut b = LoopBuilder::new("sel");
    let x = b.array("x", ScalarType::F64, 16);
    let y = b.array("y", ScalarType::F64, 16);
    let z = b.array("z", ScalarType::F64, 16);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let c = b.fcmplt(lx, ly);
    let s = b.fselect(c, lx, ly);
    b.store(z, 1, 0, s);
    let l = b.finish();
    let g = DepGraph::build(&l);
    for src in [c, lx, ly] {
        assert!(
            g.edges()
                .iter()
                .any(|e| e.src == src && e.dst == s && !e.is_mem && e.kind == DepKind::Flow),
            "missing flow edge {src:?} -> select"
        );
    }
    // A carried read through the else-arm is an edge too.
    let mut b = LoopBuilder::new("selc");
    let x = b.array("x", ScalarType::F64, 16);
    let w = b.array("w", ScalarType::F64, 16);
    let lx = b.load(x, 1, 0);
    let c = b.fcmplt(lx, lx);
    let s = b.select(
        ScalarType::F64,
        Operand::def(c),
        Operand::def(lx),
        Operand::carried(lx, 2),
    );
    b.store(w, 1, 0, s);
    let l = b.finish();
    let g = DepGraph::build(&l);
    assert!(
        g.edges()
            .iter()
            .any(|e| e.src == lx && e.dst == s && e.distance == 2),
        "carried else-arm edge missing"
    );
}

#[test]
fn cmp_select_chain_is_vectorizable_and_not_a_reduction() {
    // A straight-line clip kernel (load, compare, select, store) has no
    // cycles: every op vectorizes, and the select must not be mistaken
    // for a reduction by the cycle rules.
    let mut b = LoopBuilder::new("clip");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let c = b.fcmplt(lx, lx);
    let s = b.fselect(c, lx, lx);
    b.store(y, 1, 0, s);
    let l = b.finish();
    assert!(!l.ops[s.index()].is_reduction);
    let g = DepGraph::build(&l);
    let v = vectorizable_ops(&l, &g, 4);
    assert!(v.iter().all(|st| *st == VecStatus::Vectorizable), "{v:?}");
}
