//! Brute-force dependence oracle for testing the subscript solver.

use std::collections::BTreeSet;
use sv_ir::MemRef;

/// Enumerate, by direct simulation of the iteration space, every distance
/// `d` with `0 ≤ d < iters` such that `dst` at iteration `i + d` touches an
/// element `src` touched at some iteration `i < iters`.
///
/// This is the oracle the property tests compare [`crate::mem_dependences`]
/// against: exact distances must match the oracle exactly (restricted to
/// the enumerated window), and `Star` results must cover every oracle hit.
pub fn brute_force_mem_deps(src: &MemRef, dst: &MemRef, iters: u32) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    for i in 0..i64::from(iters) {
        for d in 0..i64::from(iters) {
            let j = i + d;
            let (a0, a1) = (src.first_element(i), src.first_element(i) + i64::from(src.width));
            let (b0, b1) = (dst.first_element(j), dst.first_element(j) + i64::from(dst.width));
            if a0 < b1 && b0 < a1 {
                out.insert(d as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscript::{mem_dependences, Distance};
    use sv_ir::ArrayId;

    fn check_agrees(src: MemRef, dst: MemRef) {
        let oracle = brute_force_mem_deps(&src, &dst, 24);
        let analytic = mem_dependences(&src, &dst, 1 << 20);
        let has_star = analytic.contains(&Distance::Star);
        let exact: BTreeSet<u32> = analytic
            .iter()
            .filter_map(|d| match d {
                Distance::Exact(e) => Some(*e),
                Distance::Far | Distance::Star => None,
            })
            .collect();
        if has_star {
            // Star must cover everything the oracle finds.
            assert!(
                oracle.iter().all(|d| exact.contains(d) || has_star),
                "star should be conservative"
            );
        } else {
            // Inside the window every dependence is reported exactly; the
            // analysis may also see dependences whose witness iteration
            // lies outside the 24-iteration oracle, so it may be a
            // superset there.
            let exact_in_window: BTreeSet<u32> =
                exact.into_iter().filter(|&d| d < 24).collect();
            assert!(
                oracle.is_subset(&exact_in_window),
                "missed dependences: src={src:?} dst={dst:?} oracle={oracle:?} got={exact_in_window:?}"
            );
        }
    }

    #[test]
    fn oracle_matches_same_stride_cases() {
        let cases = [
            (1, 0, 1, 1, 0, 1),
            (1, 2, 1, 1, 0, 1),
            (2, 4, 1, 2, 0, 1),
            (2, 1, 1, 2, 0, 1),
            (-1, 20, 1, -1, 18, 1),
            (1, 0, 2, 1, 0, 1),
            (1, 1, 2, 1, 0, 2),
            (3, 0, 2, 3, 4, 2),
        ];
        for (s1, o1, w1, s2, o2, w2) in cases {
            check_agrees(
                MemRef { array: ArrayId(0), stride: s1, offset: o1, width: w1 },
                MemRef { array: ArrayId(0), stride: s2, offset: o2, width: w2 },
            );
        }
    }

    #[test]
    fn oracle_respects_invariant_refs() {
        check_agrees(
            MemRef::scalar(ArrayId(0), 0, 5),
            MemRef::scalar(ArrayId(0), 0, 5),
        );
        check_agrees(
            MemRef::scalar(ArrayId(0), 0, 5),
            MemRef::scalar(ArrayId(0), 0, 6),
        );
    }

    #[test]
    fn mismatched_stride_is_exact_within_the_bound() {
        // a[3i] at iteration i collides with a[2i] at iteration i + d
        // whenever i = 2d, i.e. at every distance.
        let src = MemRef::scalar(ArrayId(0), 3, 0);
        let dst = MemRef::scalar(ArrayId(0), 2, 0);
        let oracle = brute_force_mem_deps(&src, &dst, 24);
        let analytic = mem_dependences(&src, &dst, 1 << 20);
        assert!(!oracle.is_empty());
        for d in &oracle {
            assert!(analytic.contains(&Distance::Exact(*d)), "missing d={d}");
        }
        assert!(analytic.contains(&Distance::Far));
        assert!(!analytic.contains(&Distance::Star));
    }
}
