//! Tarjan's strongly connected components over the dependence graph.
//!
//! Cycles in the dependence graph are what force sequential execution;
//! classic vectorization (and the paper) finds them with Tarjan's
//! algorithm. The implementation is iterative so pathological synthetic
//! loops cannot overflow the stack.

use crate::graph::DepGraph;
use sv_ir::OpId;

/// The strongly connected components of a dependence graph.
#[derive(Debug, Clone)]
pub struct Sccs {
    /// Component index of each operation.
    comp_of: Vec<u32>,
    /// Members of each component, in program order. Components are stored
    /// in topological order of the condensation (sources first).
    comps: Vec<Vec<OpId>>,
}

impl Sccs {
    /// The component containing `op`.
    #[inline]
    pub fn component_of(&self, op: OpId) -> u32 {
        self.comp_of[op.index()]
    }

    /// Components in topological order (every dependence points from an
    /// earlier to a later or same component).
    #[inline]
    pub fn components(&self) -> &[Vec<OpId>] {
        &self.comps
    }

    /// True when `op` is in a dependence cycle: its component has more than
    /// one member, or it has a self edge (checked against `g`).
    pub fn in_cycle(&self, op: OpId, g: &DepGraph) -> bool {
        self.comps[self.comp_of[op.index()] as usize].len() > 1 || g.has_self_cycle(op)
    }
}

/// Compute the SCCs of `g` (all edges, every distance).
pub fn strongly_connected_components(g: &DepGraph) -> Sccs {
    let n = g.op_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_of = vec![u32::MAX; n];
    let mut comps_rev: Vec<Vec<OpId>> = Vec::new();

    // Iterative Tarjan: frames of (node, next-successor-cursor).
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        cursor: usize,
    }

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame { v: root, cursor: 0 }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            let succ: Vec<usize> = g
                .succ_edges(OpId(v as u32))
                .map(|e| e.dst.index())
                .collect();
            if frame.cursor < succ.len() {
                let w = succ[frame.cursor];
                frame.cursor += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame { v: w, cursor: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = comps_rev.len() as u32;
                        comp.push(OpId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps_rev.push(comp);
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.v;
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order; flip them and
    // remap indices so `comps` is topological.
    let count = comps_rev.len() as u32;
    comps_rev.reverse();
    for c in comp_of.iter_mut() {
        *c = count - 1 - *c;
    }
    Sccs { comp_of, comps: comps_rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, OpKind, ScalarType};

    #[test]
    fn straight_line_is_all_singletons() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(x, 1, 0, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.components().len(), 3);
        assert!(!sccs.in_cycle(lx, &g));
    }

    #[test]
    fn reduction_is_self_cycle_singleton() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.reduce_add(lx);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let sccs = strongly_connected_components(&g);
        assert!(sccs.in_cycle(s, &g));
        assert!(!sccs.in_cycle(lx, &g));
    }

    #[test]
    fn memory_recurrence_forms_multi_op_cycle() {
        // a[i+1] = -a[i]: load and store are mutually dependent.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", ScalarType::F64, 32);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        let st = b.store(a, 1, 1, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.component_of(la), sccs.component_of(st));
        assert_eq!(sccs.component_of(la), sccs.component_of(n));
        assert!(sccs.in_cycle(n, &g));
    }

    #[test]
    fn condensation_is_topological() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        let m = b.fbin(OpKind::Mul, n, lx);
        b.store(y, 1, 0, m);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let sccs = strongly_connected_components(&g);
        for e in g.edges() {
            assert!(
                sccs.component_of(e.src) <= sccs.component_of(e.dst),
                "edge {:?} violates topological order",
                e
            );
        }
    }
}
