//! Vectorizability legality per operation.

use crate::graph::DepGraph;
use crate::scc::strongly_connected_components;
use sv_ir::{Loop, OpKind, VectorForm};

/// Why an operation can or cannot be vectorized for a given vector length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecStatus {
    /// Legal to vectorize.
    Vectorizable,
    /// Memory operation without unit stride; the machine has no
    /// scatter/gather support, so it must stay scalar.
    NotUnitStride,
    /// Member of a dependence cycle whose distance can be smaller than the
    /// vector length.
    InDependenceCycle,
    /// Reduction accumulation that would need reassociation (illegal for FP
    /// unless the loop permits it).
    ReductionNeedsReassoc,
    /// Uses a loop-carried register value at a distance not divisible by
    /// the vector length; the vector lanes would straddle two producer
    /// vectors.
    CarriedUseMisaligned,
    /// Already in vector form (transformed loops only).
    AlreadyVector,
}

impl VecStatus {
    /// True for [`VecStatus::Vectorizable`].
    #[inline]
    pub fn is_vectorizable(self) -> bool {
        matches!(self, VecStatus::Vectorizable)
    }
}

/// Classify every operation of `l` for vectorization at vector length `vl`.
///
/// Follows the classic rule — operations in a dependence cycle execute
/// sequentially, the rest can be vectorized — with the paper's refinements:
///
/// * a cycle is harmless when every loop-carried edge in its component has
///   distance ≥ `vl` (the paper's `a[i+4] = a[i]` example);
/// * a reduction whose only cycle is its own accumulation is vectorizable
///   into partial sums iff the loop allows reassociation;
/// * memory operations must be unit-stride (no scatter/gather hardware);
/// * loop-carried register uses must align with the vector length.
///
/// # Panics
///
/// Panics if `vl < 2` — vectorization is meaningless below that — or if
/// `graph` was built from a different loop.
pub fn vectorizable_ops(l: &Loop, graph: &DepGraph, vl: u32) -> Vec<VecStatus> {
    assert!(vl >= 2, "vector length must be at least 2");
    assert_eq!(graph.op_count(), l.ops.len(), "graph/loop mismatch");
    let sccs = strongly_connected_components(graph);

    // For each component: does it tolerate vectorization at vl?
    // True iff every carried edge inside the component has distance >= vl
    // and no star edges exist inside it.
    let n_comps = sccs.components().len();
    let mut comp_ok = vec![true; n_comps];
    for e in graph.edges() {
        let cs = sccs.component_of(e.src);
        if cs != sccs.component_of(e.dst) {
            continue;
        }
        let c = cs as usize;
        if e.star || (e.distance >= 1 && e.distance < vl) {
            comp_ok[c] = false;
        }
    }

    l.ops
        .iter()
        .map(|op| {
            if op.opcode.form == VectorForm::Vector
                || matches!(op.opcode.kind, OpKind::Merge | OpKind::Pack | OpKind::Extract)
            {
                return VecStatus::AlreadyVector;
            }
            if let Some(m) = &op.mem {
                if !m.unit_stride() {
                    return VecStatus::NotUnitStride;
                }
            }
            if op.is_reduction {
                // The self-cycle is inherent; everything else in its
                // component must still be cycle-free.
                let comp = &sccs.components()[sccs.component_of(op.id) as usize];
                if comp.len() > 1 {
                    return VecStatus::InDependenceCycle;
                }
                // The paper's compiler performs no reduction recognition
                // (§6 lists it as future work): a reduction is vectorized
                // into partial results only when the loop explicitly
                // licenses reassociation.
                return if l.allow_reassoc {
                    VecStatus::Vectorizable
                } else {
                    VecStatus::ReductionNeedsReassoc
                };
            }
            if sccs.in_cycle(op.id, graph)
                && !comp_ok[sccs.component_of(op.id) as usize]
            {
                return VecStatus::InDependenceCycle;
            }
            // Carried register uses must land on vector boundaries.
            for (_, d) in op.def_uses() {
                if d >= 1 && d % vl != 0 {
                    return VecStatus::CarriedUseMisaligned;
                }
            }
            VecStatus::Vectorizable
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, Operand, ScalarType};

    fn classify(l: &Loop, vl: u32) -> Vec<VecStatus> {
        let g = DepGraph::build(l);
        vectorizable_ops(l, &g, vl)
    }

    #[test]
    fn straight_line_fully_vectorizable() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(y, 1, 0, n);
        let l = b.finish();
        assert!(classify(&l, 2).iter().all(|s| s.is_vectorizable()));
    }

    #[test]
    fn non_unit_stride_blocks_memory_op_only() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 2, 0);
        let n = b.fneg(lx);
        b.store(y, 1, 0, n);
        let l = b.finish();
        let v = classify(&l, 2);
        assert_eq!(v[lx.index()], VecStatus::NotUnitStride);
        assert!(v[n.index()].is_vectorizable());
    }

    #[test]
    fn fp_reduction_needs_reassoc() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.reduce_add(lx);
        let l = b.finish();
        let v = classify(&l, 2);
        assert_eq!(v[s.index()], VecStatus::ReductionNeedsReassoc);
        assert!(v[lx.index()].is_vectorizable());
    }

    #[test]
    fn reassoc_enables_reduction() {
        let mut b = LoopBuilder::new("t");
        b.allow_reassoc(true);
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.reduce_add(lx);
        let l = b.finish();
        assert!(classify(&l, 2)[s.index()].is_vectorizable());
    }

    #[test]
    fn short_memory_recurrence_blocks() {
        // a[i+1] = -a[i]: distance 1 < vl.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", ScalarType::F64, 32);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 1, n);
        let l = b.finish();
        let v = classify(&l, 2);
        assert!(v.iter().all(|s| *s == VecStatus::InDependenceCycle));
    }

    #[test]
    fn long_distance_cycle_allows_vectorization() {
        // a[i+4] = -a[i]: the paper's example — legal for vl ≤ 4.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 4, n);
        let l = b.finish();
        let v2 = classify(&l, 2);
        assert!(v2.iter().all(|s| s.is_vectorizable()), "{v2:?}");
        let v8 = classify(&l, 8);
        assert!(v8.iter().all(|s| *s == VecStatus::InDependenceCycle));
    }

    #[test]
    fn misaligned_carried_register_use() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        // y[i] = x-value from 3 iterations ago: 3 % 2 != 0.
        let u = b.bin(
            sv_ir::OpKind::Add,
            ScalarType::F64,
            Operand::carried(lx, 3),
            Operand::def(lx),
        );
        b.store(y, 1, 0, u);
        let l = b.finish();
        let v = classify(&l, 2);
        assert_eq!(v[u.index()], VecStatus::CarriedUseMisaligned);
        assert!(v[lx.index()].is_vectorizable());
        // With vl = 3 the distance aligns.
        assert!(classify(&l, 3)[u.index()].is_vectorizable());
    }

    #[test]
    fn recurrence_blocks_itself_only() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let r = b.recurrence(sv_ir::OpKind::Mul, ScalarType::F64, lx);
        b.store(y, 1, 0, r);
        let l = b.finish();
        let v = classify(&l, 2);
        assert_eq!(v[r.index()], VecStatus::InDependenceCycle);
        assert!(v[lx.index()].is_vectorizable());
    }
}
