//! Affine subscript dependence testing.
//!
//! For a single loop with canonical induction variable `i`, a reference
//! touches elements `stride*i + offset .. + width`. Dependence testing asks:
//! for which iteration distances `d ≥ 0` can reference `src` (at iteration
//! `i`) and reference `dst` (at iteration `i + d`) touch the same element?
//!
//! With one index variable the classic ZIV/strong-SIV/weak-SIV machinery
//! collapses to exact small-integer arithmetic, which we implement directly
//! and cross-check against brute-force enumeration in the property tests.

use sv_ir::MemRef;

/// Bound under which mismatched-stride pairs are tested distance by
/// distance; beyond it, possible dependences collapse into
/// [`Distance::Far`]. Far larger than any vector length and any cycle the
/// scheduler could care about.
pub const FAR_BOUND: u32 = 64;

/// A dependence distance between two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Distance {
    /// Dependence at exactly this iteration distance (0 = intra-iteration).
    Exact(u32),
    /// Dependences may exist at distances greater than [`FAR_BOUND`] (and
    /// only there). Such edges order loop distribution and add a weak
    /// scheduling constraint, but never inhibit vectorization: every
    /// distance exceeds any vector length.
    Far,
    /// Dependence at unboundedly many distances *including short ones*
    /// (loop-invariant conflicts). Consumers must treat this
    /// conservatively: it blocks vectorization and pins scheduling at
    /// distance 1 in both directions.
    Star,
}

impl Distance {
    /// The smallest distance this value admits.
    pub fn min_distance(self) -> u32 {
        match self {
            Distance::Exact(d) => d,
            Distance::Far => FAR_BOUND + 1,
            Distance::Star => 0,
        }
    }
}

/// All iteration distances `d ≥ 0` at which `dst` (executing `d` iterations
/// after `src`) may touch an element `src` touched.
///
/// Returns an empty vector when the references are provably independent in
/// that direction. The result is exact for same-stride pairs (any width)
/// and, for mismatched strides, exact up to [`FAR_BOUND`] with a
/// [`Distance::Far`] marker covering any solutions beyond; only
/// loop-invariant conflicts remain fully conservative ([`Distance::Star`]).
/// References to *different arrays* must be filtered by the caller.
pub fn mem_dependences(src: &MemRef, dst: &MemRef, max_exact: u32) -> Vec<Distance> {
    debug_assert_eq!(src.array, dst.array, "caller must pair refs per array");
    let (s1, o1, w1) = (src.stride, src.offset, src.width as i64);
    let (s2, o2, w2) = (dst.stride, dst.offset, dst.width as i64);

    if s1 == s2 {
        let s = s1;
        if s == 0 {
            // Loop-invariant addresses: conflict iff windows overlap, and
            // then at every distance.
            return if windows_overlap(o1, w1, o2, w2) {
                vec![Distance::Star]
            } else {
                Vec::new()
            };
        }
        // Element match: s*i + o1 + a = s*(i+d) + o2 + b
        //   ⇒ s*d = (o1 - o2) + (a - b),  a ∈ [0, w1), b ∈ [0, w2)
        // so s*d ranges over (o1 - o2 - w2, o1 - o2 + w1).
        let lo = o1 - o2 - (w2 - 1);
        let hi = o1 - o2 + (w1 - 1);
        let mut out = Vec::new();
        for target in lo..=hi {
            if target % s == 0 {
                let d = target / s;
                if d >= 0 {
                    if d as u64 > u64::from(max_exact) {
                        // Far-apart dependence; report exactly anyway (u32
                        // saturation) so the caller can apply the paper's
                        // distance ≥ VL exception.
                        out.push(Distance::Exact(u32::try_from(d).unwrap_or(u32::MAX)));
                    } else {
                        out.push(Distance::Exact(d as u32));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        return out;
    }

    // Mismatched strides:
    //   s1*i + o1 + a = s2*(i + d) + o2 + b
    //   ⇒ (s1 - s2)*i = s2*d + (o2 - o1) + (b - a)
    // For each candidate d the right-hand side determines i exactly, so
    // distances up to FAR_BOUND are tested one by one; a Far marker covers
    // the (arithmetic-progression) solutions beyond when they can exist.
    let g = gcd((s1 - s2).unsigned_abs(), s2.unsigned_abs());
    if g > 1 {
        let any = (-(w1 - 1)..=(w2 - 1))
            .any(|ba| ((o2 - o1) + ba).rem_euclid(g as i64) == 0);
        if !any {
            return Vec::new();
        }
    }
    let _ = max_exact;
    let denom = s1 - s2; // nonzero here
    let mut out = Vec::new();
    for d in 0..=i64::from(FAR_BOUND) {
        let hit = (-(w1 - 1)..=(w2 - 1)).any(|ba| {
            let rhs = s2 * d + (o2 - o1) + ba;
            rhs % denom == 0 && rhs / denom >= 0
        });
        if hit {
            out.push(Distance::Exact(d as u32));
        }
    }
    // Solutions at arbitrarily large d need i = (s2·d + c)/(s1 − s2) to
    // stay ≥ 0 as d grows: the quotient's sign is sign(s2)·sign(denom).
    let unbounded = s2 != 0 && (s2 > 0) == (denom > 0);
    if unbounded {
        out.push(Distance::Far);
    }
    out
}

fn windows_overlap(o1: i64, w1: i64, o2: i64, w2: i64) -> bool {
    o1 < o2 + w2 && o2 < o1 + w1
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::ArrayId;

    fn r(stride: i64, offset: i64) -> MemRef {
        MemRef::scalar(ArrayId(0), stride, offset)
    }

    fn rw(stride: i64, offset: i64, width: u32) -> MemRef {
        MemRef { array: ArrayId(0), stride, offset, width }
    }

    #[test]
    fn same_ref_is_distance_zero() {
        assert_eq!(mem_dependences(&r(1, 0), &r(1, 0), 64), vec![Distance::Exact(0)]);
    }

    #[test]
    fn forward_carried_distance() {
        // src touches a[i+2]; dst (later) touches a[i] ⇒ dst at i+2 touches
        // what src touched at i.
        assert_eq!(mem_dependences(&r(1, 2), &r(1, 0), 64), vec![Distance::Exact(2)]);
        // The other direction is independent (negative distance).
        assert_eq!(mem_dependences(&r(1, 0), &r(1, 2), 64), vec![]);
    }

    #[test]
    fn stride_divisibility() {
        // a[2i] vs a[2i+1]: disjoint parity classes.
        assert_eq!(mem_dependences(&r(2, 0), &r(2, 1), 64), vec![]);
        // a[2i] vs a[2i+4]: distance would be negative one way, 2 the other.
        assert_eq!(mem_dependences(&r(2, 4), &r(2, 0), 64), vec![Distance::Exact(2)]);
    }

    #[test]
    fn negative_stride_pairs() {
        // a[-i + 8] at iteration i matches a[-i + 10] two iterations later:
        // -i + 8 = -(i + 2) + 10.
        assert_eq!(mem_dependences(&r(-1, 8), &r(-1, 10), 64), vec![Distance::Exact(2)]);
        assert_eq!(mem_dependences(&r(-1, 10), &r(-1, 8), 64), vec![]);
    }

    #[test]
    fn invariant_conflict_is_star() {
        assert_eq!(mem_dependences(&r(0, 5), &r(0, 5), 64), vec![Distance::Star]);
        assert_eq!(mem_dependences(&r(0, 5), &r(0, 6), 64), vec![]);
    }

    #[test]
    fn wide_refs_extend_overlap() {
        // Vector ref of width 2 at a[i] vs scalar a[i+1]: overlap at d=0 one
        // way and d=1 the other.
        let v = rw(1, 0, 2);
        assert_eq!(
            mem_dependences(&v, &r(1, 0), 64),
            vec![Distance::Exact(0), Distance::Exact(1)]
        );
        assert_eq!(
            mem_dependences(&r(1, 1), &v, 64),
            vec![Distance::Exact(0), Distance::Exact(1)]
        );
    }

    #[test]
    fn mismatched_strides_gcd_independence() {
        // a[2i] vs a[4i+1]: everything even vs odd ⇒ independent.
        assert_eq!(mem_dependences(&r(2, 0), &r(4, 1), 64), vec![]);
        // a[2i] (src) vs a[4i+2] (dst): 2i = 4(i+d)+2 ⇒ i = -2d-2 < 0 for
        // every d ≥ 0: provably independent in this direction…
        assert_eq!(mem_dependences(&r(2, 0), &r(4, 2), 64), vec![]);
        // …while the opposite direction hits every positive distance
        // (4i+2 = 2(i+d) ⇒ d = i+1), reported exactly up to FAR_BOUND plus
        // a Far tail.
        let deps = mem_dependences(&r(4, 2), &r(2, 0), 64);
        assert_eq!(deps[0], Distance::Exact(1));
        assert!(!deps.contains(&Distance::Exact(0)));
        assert!(deps.contains(&Distance::Far));
        assert_eq!(deps.len() as u32, FAR_BOUND + 1);
    }

    #[test]
    fn mismatched_strides_bounded_distances() {
        // a[7] (invariant, width 1? no: stride 0 src) vs moving dst is the
        // Star case; here: src a[3i], dst a[i]: 3i = i' with i' = i + d ⇒
        // dependences exist only while i' keeps up: i = d/2 ⇒ even d only.
        let deps = mem_dependences(&r(3, 0), &r(1, 0), 64);
        assert!(deps.contains(&Distance::Exact(0)));
        assert!(deps.contains(&Distance::Exact(2)));
        assert!(!deps.contains(&Distance::Exact(1)));
        assert!(deps.contains(&Distance::Far));
        // Reverse: dst outruns src: src a[i], dst a[3i]: i = 3(i+d) ⇒
        // i = -3d/2 ≤ 0: only d = 0 (at i = 0).
        let deps = mem_dependences(&r(1, 0), &r(3, 0), 64);
        assert_eq!(deps, vec![Distance::Exact(0)]);
    }

    #[test]
    fn long_distance_reported_exactly() {
        // a[i+100] then a[i]: distance 100 even past max_exact.
        assert_eq!(mem_dependences(&r(1, 100), &r(1, 0), 4), vec![Distance::Exact(100)]);
    }

    #[test]
    fn min_distance_of_star_is_zero() {
        assert_eq!(Distance::Star.min_distance(), 0);
        assert_eq!(Distance::Exact(3).min_distance(), 3);
    }
}
