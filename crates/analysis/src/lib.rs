//! # sv-analysis — loop dependence analysis and vectorizability
//!
//! Implements the analysis side of the paper's compilation flow: array
//! dependence testing on affine subscripts, construction of the loop's data
//! dependence graph (register and memory edges with iteration distances),
//! Tarjan's strongly-connected-components pass to find dependence cycles,
//! and the vectorizability legality rules of classic vectorization
//! ("operations in a dependence cycle must execute sequentially; the rest
//! can be vectorized", Allen & Kennedy), including the paper's
//! vector-length exception for long-distance cycles and reduction handling.
//!
//! ```
//! use sv_analysis::{DepGraph, vectorizable_ops, VecStatus};
//! use sv_ir::{LoopBuilder, ScalarType};
//!
//! let mut b = LoopBuilder::new("dot");
//! let x = b.array("x", ScalarType::F64, 64);
//! let y = b.array("y", ScalarType::F64, 64);
//! let lx = b.load(x, 1, 0);
//! let ly = b.load(y, 1, 0);
//! let m = b.fmul(lx, ly);
//! let s = b.reduce_add(m);
//! let l = b.finish();
//!
//! let g = DepGraph::build(&l);
//! let v = vectorizable_ops(&l, &g, 2);
//! assert_eq!(v[m.index()], VecStatus::Vectorizable);
//! // FP reduction without reassociation stays sequential.
//! assert_eq!(v[s.index()], VecStatus::ReductionNeedsReassoc);
//! ```

mod brute;
mod graph;
mod legality;
pub mod optimal;
mod scc;
mod subscript;

pub use brute::brute_force_mem_deps;
pub use graph::{DepEdge, DepGraph, DepKind};
pub use legality::{vectorizable_ops, VecStatus};
pub use optimal::{
    branch_and_bound, BnbProblem, LeafEval, NodeBudget, OptimalOutcome, SearchStats,
};
pub use scc::{strongly_connected_components, Sccs};
pub use subscript::{mem_dependences, Distance, FAR_BOUND};
