//! Data dependence graph construction.

use crate::subscript::{mem_dependences, Distance};
use sv_ir::{Loop, OpId, OpKind};

/// Classification of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True (read-after-write) dependence; register or memory.
    Flow,
    /// Anti (write-after-read) dependence; memory only in this IR.
    Anti,
    /// Output (write-after-write) dependence; memory only.
    Output,
}

/// One dependence edge `src → dst`: `dst`, executing `distance` iterations
/// after `src`, depends on `src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source (the operation depended upon).
    pub src: OpId,
    /// Sink (the dependent operation).
    pub dst: OpId,
    /// Kind of dependence.
    pub kind: DepKind,
    /// Iteration distance (0 = intra-iteration).
    pub distance: u32,
    /// True for memory-carried edges (false for register dataflow).
    pub is_mem: bool,
    /// True when the distance is a conservative stand-in for "many
    /// distances" ([`Distance::Star`]); such edges block vectorization.
    pub star: bool,
}

/// The loop's data dependence graph.
///
/// Register edges come from def-operands; memory edges from pairwise
/// subscript tests between references to the same array (at least one of
/// the pair being a store). *All* cross-iteration edges on
/// iteration-private arrays (scalar↔vector communication slots) are
/// omitted: those locations carry no values between iterations and are
/// renamed per in-flight iteration, so overlapped slot reuse is legal.
/// Every executor that interleaves iterations implements that renaming
/// (`sv-sim`'s `privrot` module) — omitting the edges without it lets
/// iteration `j+1`'s store land before iteration `j`'s load.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    edges: Vec<DepEdge>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

/// Cap on exact distances the subscript tester enumerates before the edge
/// is irrelevant to both RecMII and the vector-length exception.
const MAX_EXACT_DISTANCE: u32 = 1 << 20;

impl DepGraph {
    /// Build the dependence graph of `l`.
    pub fn build(l: &Loop) -> DepGraph {
        let n = l.ops.len();
        let mut edges = Vec::new();

        // Register dataflow edges.
        for op in &l.ops {
            for (producer, distance) in op.def_uses() {
                edges.push(DepEdge {
                    src: producer,
                    dst: op.id,
                    kind: DepKind::Flow,
                    distance,
                    is_mem: false,
                    star: false,
                });
            }
        }

        // Memory edges: ordered pairs (a, b), at least one store, same array.
        let mem_ops: Vec<&sv_ir::Operation> =
            l.ops.iter().filter(|o| o.opcode.kind.is_mem()).collect();
        for a in &mem_ops {
            for b in &mem_ops {
                let (ra, rb) = (a.mem_ref(), b.mem_ref());
                if ra.array != rb.array {
                    continue;
                }
                let a_store = a.opcode.kind == OpKind::Store;
                let b_store = b.opcode.kind == OpKind::Store;
                if !a_store && !b_store {
                    continue;
                }
                let kind = match (a_store, b_store) {
                    (true, false) => DepKind::Flow,
                    (false, true) => DepKind::Anti,
                    (true, true) => DepKind::Output,
                    (false, false) => unreachable!(),
                };
                let private = l.array(ra.array).iteration_private;
                for dist in mem_dependences(ra, rb, MAX_EXACT_DISTANCE) {
                    match dist {
                        Distance::Exact(0) => {
                            // Intra-iteration: direction is program order;
                            // the symmetric direction is produced by the
                            // (b, a) pass.
                            if a.id < b.id {
                                edges.push(DepEdge {
                                    src: a.id,
                                    dst: b.id,
                                    kind,
                                    distance: 0,
                                    is_mem: true,
                                    star: false,
                                });
                            }
                        }
                        Distance::Exact(d) => {
                            if !private {
                                edges.push(DepEdge {
                                    src: a.id,
                                    dst: b.id,
                                    kind,
                                    distance: d,
                                    is_mem: true,
                                    star: false,
                                });
                            }
                        }
                        Distance::Far => {
                            // Solutions only past FAR_BOUND: a weak carried
                            // edge that orders distribution and constrains
                            // scheduling, but (distance ≥ any VL) never
                            // inhibits vectorization.
                            if !private {
                                edges.push(DepEdge {
                                    src: a.id,
                                    dst: b.id,
                                    kind,
                                    distance: crate::subscript::FAR_BOUND + 1,
                                    is_mem: true,
                                    star: false,
                                });
                            }
                        }
                        Distance::Star => {
                            if a.id < b.id {
                                edges.push(DepEdge {
                                    src: a.id,
                                    dst: b.id,
                                    kind,
                                    distance: 0,
                                    is_mem: true,
                                    star: true,
                                });
                            }
                            if !private {
                                edges.push(DepEdge {
                                    src: a.id,
                                    dst: b.id,
                                    kind,
                                    distance: 1,
                                    is_mem: true,
                                    star: true,
                                });
                            }
                        }
                    }
                }
            }
        }

        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succs[e.src.index()].push(i);
            preds[e.dst.index()].push(i);
        }
        DepGraph { n, edges, succs, preds }
    }

    /// Number of operations the graph covers.
    #[inline]
    pub fn op_count(&self) -> usize {
        self.n
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges leaving `op`.
    pub fn succ_edges(&self, op: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succs[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Edges entering `op`.
    pub fn pred_edges(&self, op: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.preds[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// True when `op` has a dependence self-cycle (self edge of distance
    /// ≥ 1, e.g. reductions and first-order recurrences).
    pub fn has_self_cycle(&self, op: OpId) -> bool {
        self.succ_edges(op).any(|e| e.dst == op && e.distance >= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    #[test]
    fn register_edges_from_operands() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(x, 1, 4, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        assert!(g
            .edges()
            .iter()
            .any(|e| e.src == lx && e.dst == n && !e.is_mem && e.kind == DepKind::Flow));
    }

    #[test]
    fn loop_carried_flow_through_memory() {
        // a[i+1] = f(a[i]) — classic distance-1 recurrence through memory.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", ScalarType::F64, 32);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        let st = b.store(a, 1, 1, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let flow = g
            .edges()
            .iter()
            .find(|e| e.src == st && e.dst == la && e.is_mem && e.kind == DepKind::Flow)
            .expect("store→load flow edge");
        assert_eq!(flow.distance, 1);
        // a[i] is never stored at or after the iteration that reads it, so
        // there is no anti edge in this loop.
        assert!(!g.edges().iter().any(|e| e.kind == DepKind::Anti));
    }

    #[test]
    fn reduction_self_cycle() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.reduce_add(lx);
        let l = b.finish();
        let g = DepGraph::build(&l);
        assert!(g.has_self_cycle(s));
        assert!(!g.has_self_cycle(lx));
    }

    #[test]
    fn independent_arrays_produce_no_mem_edges() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let g = DepGraph::build(&l);
        assert!(g.edges().iter().all(|e| !e.is_mem));
    }

    #[test]
    fn iteration_private_array_skips_carried_edges() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let st = b.store(x, 1, 0, lx); // same location: anti d=0, output none
        let l = {
            let mut l = b.finish();
            l.arrays[0].iteration_private = true;
            l
        };
        let g = DepGraph::build(&l);
        // Flow store→load would be at distance... store a[i], load a[i]:
        // load is earlier; store→load flow occurs at d ≥ 1 — suppressed by
        // privacy. The anti edge at d=0 stays.
        assert!(g.edges().iter().any(|e| e.src == lx && e.dst == st && e.distance == 0));
        assert!(!g.edges().iter().any(|e| e.is_mem && e.distance >= 1));
    }

    #[test]
    fn star_edges_for_invariant_store() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 0, 3);
        let n = b.fneg(lx);
        let st = b.store(x, 0, 3, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        // load→store anti at d=0 (star) and store→load flow at d=1 (star).
        assert!(g.edges().iter().any(|e| e.src == lx && e.dst == st && e.star));
        assert!(g
            .edges()
            .iter()
            .any(|e| e.src == st && e.dst == lx && e.star && e.distance == 1));
    }

    #[test]
    fn pred_succ_adjacency_consistent() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(x, 1, 0, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        for e in g.edges() {
            assert!(g.succ_edges(e.src).any(|f| f == e));
            assert!(g.pred_edges(e.dst).any(|f| f == e));
        }
    }
}
