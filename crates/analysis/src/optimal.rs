//! Generic branch-and-bound core for the optimal-II oracle.
//!
//! The search itself is machine- and IR-agnostic: it minimizes an integer
//! objective over a binary decision tree, pruning subtrees whose lower
//! bound cannot beat the incumbent and charging every expansion against a
//! deterministic node budget. The problem instance — how partitions map to
//! initiation intervals, what bounds hold, how leaves are certified — lives
//! in `sv-core::optimal`, which implements [`BnbProblem`] on top of the
//! transformer, the MII bounds and the exact schedule probe in
//! `sv-modsched::exact`. Splitting it this way keeps the certified search
//! algorithm free of dependency cycles (this crate sees only `sv-ir`) and
//! lets tests drive the engine with synthetic problems.
//!
//! An outcome is only [`OptimalOutcome::Proved`] when the tree closed
//! within budget *and* every leaf evaluation was decisive; a single
//! undecided leaf (its own probe budget died) degrades the result to
//! [`OptimalOutcome::BudgetExhausted`] carrying the best value actually
//! witnessed.

/// Final verdict of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimalOutcome {
    /// The search closed: this is the exact minimum, with a witness held
    /// by the problem instance.
    Proved(u32),
    /// The node budget ran out (or a leaf probe was undecided) before the
    /// tree closed; the true optimum may be smaller than `best_found`.
    BudgetExhausted {
        /// Best witnessed value when the search stopped.
        best_found: u32,
    },
}

impl OptimalOutcome {
    /// The best witnessed value either way.
    pub fn best(&self) -> u32 {
        match *self {
            OptimalOutcome::Proved(v) => v,
            OptimalOutcome::BudgetExhausted { best_found } => best_found,
        }
    }

    /// Whether the value is a proven optimum.
    pub fn is_proved(&self) -> bool {
        matches!(self, OptimalOutcome::Proved(_))
    }
}

/// Deterministic search effort counters, reported alongside the outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes expanded (bound computed).
    pub nodes: u64,
    /// Nodes pruned by the lower bound.
    pub pruned: u64,
    /// Leaves evaluated exactly.
    pub leaves: u64,
    /// Leaf evaluations that improved the incumbent.
    pub improved: u64,
}

/// What a leaf evaluation concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafEval {
    /// The leaf's exact value — strictly below the incumbent passed in —
    /// with a witness recorded by the problem instance.
    Improved(u32),
    /// The leaf cannot beat the incumbent (proof, not a guess).
    NoImprovement,
    /// The leaf's probe budget died; nothing was decided.
    Undecided,
}

/// A minimization problem the engine can search.
pub trait BnbProblem {
    /// A partial assignment (search-tree node).
    type Node: Clone;

    /// A sound lower bound on every completion of `node`. Expansions where
    /// this reaches the incumbent are pruned.
    fn lower_bound(&mut self, node: &Self::Node) -> u32;

    /// Split `node` into children (first child explored first), or `None`
    /// when the node is complete (a leaf). The engine imposes no arity
    /// limit but the canonical problem branches binary.
    fn branch(&mut self, node: &Self::Node) -> Option<Vec<Self::Node>>;

    /// Exactly evaluate a complete assignment against the incumbent.
    /// `Improved(v)` must come with `v < incumbent` and a recorded witness.
    fn evaluate_leaf(&mut self, node: &Self::Node, incumbent: u32) -> LeafEval;
}

/// Node budget for one search run: one unit per expanded tree node.
/// Leaf probes meter their own (usually much larger) work against a
/// problem-internal budget and report exhaustion via
/// [`LeafEval::Undecided`].
#[derive(Debug, Clone, Copy)]
pub struct NodeBudget {
    remaining: u64,
}

impl NodeBudget {
    /// Allow `n` node expansions.
    pub fn new(n: u64) -> NodeBudget {
        NodeBudget { remaining: n }
    }
}

/// Run branch and bound from `root`, starting from a witnessed upper bound
/// `incumbent` (the heuristic's achieved value — the caller must hold a
/// witness for it). Returns the outcome and effort statistics.
///
/// Depth-first, children in the order the problem returns them, fully
/// deterministic for a deterministic problem instance.
pub fn branch_and_bound<P: BnbProblem>(
    problem: &mut P,
    root: P::Node,
    incumbent: u32,
    budget: NodeBudget,
) -> (OptimalOutcome, SearchStats) {
    let mut stats = SearchStats::default();
    let mut best = incumbent;
    let mut remaining = budget.remaining;
    let mut decisive = true;
    let mut stack: Vec<P::Node> = vec![root];

    while let Some(node) = stack.pop() {
        if remaining == 0 {
            return (OptimalOutcome::BudgetExhausted { best_found: best }, stats);
        }
        remaining -= 1;
        stats.nodes += 1;

        if problem.lower_bound(&node) >= best {
            stats.pruned += 1;
            continue;
        }
        match problem.branch(&node) {
            Some(children) => {
                // First child explored first: push in reverse.
                for c in children.into_iter().rev() {
                    stack.push(c);
                }
            }
            None => {
                stats.leaves += 1;
                match problem.evaluate_leaf(&node, best) {
                    LeafEval::Improved(v) => {
                        debug_assert!(v < best, "leaf must strictly improve");
                        best = v;
                        stats.improved += 1;
                    }
                    LeafEval::NoImprovement => {}
                    LeafEval::Undecided => decisive = false,
                }
            }
        }
    }

    if decisive {
        (OptimalOutcome::Proved(best), stats)
    } else {
        (OptimalOutcome::BudgetExhausted { best_found: best }, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy problem: choose bits to minimize a weighted sum, lower bound =
    /// sum of decided weights (weights are non-negative).
    struct Toy {
        weights: Vec<u32>,
        witness: Option<Vec<bool>>,
    }

    #[derive(Clone)]
    struct Partial(Vec<Option<bool>>);

    impl BnbProblem for Toy {
        type Node = Partial;

        fn lower_bound(&mut self, node: &Partial) -> u32 {
            node.0
                .iter()
                .enumerate()
                .map(|(i, b)| match b {
                    Some(true) => self.weights[i],
                    _ => 0,
                })
                .sum()
        }

        fn branch(&mut self, node: &Partial) -> Option<Vec<Partial>> {
            let i = node.0.iter().position(|b| b.is_none())?;
            let mut on = node.clone();
            on.0[i] = Some(true);
            let mut off = node.clone();
            off.0[i] = Some(false);
            Some(vec![off, on])
        }

        fn evaluate_leaf(&mut self, node: &Partial, incumbent: u32) -> LeafEval {
            // Constraint: at least one bit must be set.
            if !node.0.contains(&Some(true)) {
                return LeafEval::NoImprovement;
            }
            let v = self.lower_bound(node);
            if v < incumbent {
                self.witness = Some(node.0.iter().map(|b| b.unwrap()).collect());
                LeafEval::Improved(v)
            } else {
                LeafEval::NoImprovement
            }
        }
    }

    #[test]
    fn finds_the_minimum_and_proves_it() {
        let mut p = Toy { weights: vec![5, 2, 9], witness: None };
        let root = Partial(vec![None; 3]);
        let (out, stats) = branch_and_bound(&mut p, root, 100, NodeBudget::new(1_000));
        assert_eq!(out, OptimalOutcome::Proved(2));
        assert_eq!(p.witness, Some(vec![false, true, false]));
        assert!(stats.leaves >= 1);
        assert!(stats.improved >= 1);
    }

    #[test]
    fn keeps_incumbent_when_nothing_beats_it() {
        let mut p = Toy { weights: vec![5, 2, 9], witness: None };
        let root = Partial(vec![None; 3]);
        let (out, _) = branch_and_bound(&mut p, root, 2, NodeBudget::new(1_000));
        // Best leaf equals the incumbent: proved, not improved.
        assert_eq!(out, OptimalOutcome::Proved(2));
        assert_eq!(p.witness, None);
    }

    #[test]
    fn tiny_budget_degrades_to_exhausted() {
        let mut p = Toy { weights: vec![1; 12], witness: None };
        let root = Partial(vec![None; 12]);
        let (out, _) = branch_and_bound(&mut p, root, 100, NodeBudget::new(3));
        assert!(matches!(out, OptimalOutcome::BudgetExhausted { best_found: 100 }));
    }

    #[test]
    fn undecided_leaf_poisons_the_proof() {
        struct Undecider;
        impl BnbProblem for Undecider {
            type Node = u8;
            fn lower_bound(&mut self, _: &u8) -> u32 {
                0
            }
            fn branch(&mut self, n: &u8) -> Option<Vec<u8>> {
                (*n < 1).then(|| vec![1, 2])
            }
            fn evaluate_leaf(&mut self, n: &u8, _: u32) -> LeafEval {
                if *n == 1 {
                    LeafEval::Undecided
                } else {
                    LeafEval::NoImprovement
                }
            }
        }
        let (out, _) =
            branch_and_bound(&mut Undecider, 0, 7, NodeBudget::new(100));
        assert_eq!(out, OptimalOutcome::BudgetExhausted { best_found: 7 });
    }

    #[test]
    fn pruning_respects_the_bound() {
        // Incumbent 1: everything with a decided weight >= 1 is pruned, so
        // only the all-false path reaches a leaf (and fails the
        // at-least-one constraint). Proved at the incumbent.
        let mut p = Toy { weights: vec![3, 4], witness: None };
        let root = Partial(vec![None; 2]);
        let (out, stats) = branch_and_bound(&mut p, root, 1, NodeBudget::new(1_000));
        assert_eq!(out, OptimalOutcome::Proved(1));
        assert!(stats.pruned >= 1);
    }
}
