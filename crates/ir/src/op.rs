//! Operations, opcodes and operands.

use crate::mem::MemRef;
use crate::types::{RegClass, ScalarType};
use std::fmt;

/// Identifier of an operation inside one [`crate::Loop`].
///
/// `OpId(n)` is always the index of the operation in the loop's
/// program-order operation list; the verifier enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// The operation's index in the loop body.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// The operation kinds of the IR.
///
/// The set covers the instruction classes of the paper's simulated VLIW
/// (Table 1): memory operations, integer and floating-point ALU operations,
/// multiplies and divides (the long-latency, non-pipelined class), and the
/// vector-merge operation used to realign misaligned vector memory
/// accesses. Loop-control overhead (back branch, induction update) is
/// modeled by the machine description rather than explicit IR ops, matching
/// the paper's use of rotating-register branch support.
/// Comparison predicate of an [`OpKind::Cmp`] operation.
///
/// Only the four ordered predicates are modeled; `Gt`/`Ge` are expressed
/// by swapping the operands of `Lt`/`Le`, which keeps the canonical form
/// (and hence canonical hashes) unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (ordered).
    Lt,
    /// Less than or equal (ordered).
    Le,
}

impl CmpPred {
    /// All predicates, in mnemonic order.
    pub const ALL: [CmpPred; 4] = [CmpPred::Eq, CmpPred::Ne, CmpPred::Lt, CmpPred::Le];

    /// Predicate suffix of the mnemonic (`cmpeq`, `cmpne`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Memory read. Carries a [`MemRef`]; takes no value operands.
    Load,
    /// Memory write. Carries a [`MemRef`]; takes the stored value.
    Store,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division — long latency and non-pipelined on the paper's machine.
    Div,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root (modeled with divide latency, as is conventional).
    Sqrt,
    /// Register copy.
    Copy,
    /// Vector realignment on the dedicated merge unit.
    ///
    /// In this reproduction `Merge` is value-pass-through: it forwards its
    /// single operand and exists to charge the merge unit and its latency,
    /// exactly the cost the paper attributes to misaligned vector memory
    /// operations after previous-iteration reuse.
    Merge,
    /// Zero-cost gather of scalar lane values into a vector (variadic: one
    /// operand per lane). Exists only under the idealized *free*
    /// communication model of the paper's Figure 1, where operands move
    /// between scalar and vector units without explicit instructions.
    Pack,
    /// Zero-cost extraction of one lane of a vector value; operands are the
    /// vector and a constant lane index. Free-communication counterpart of
    /// the vector→scalar transfer.
    Extract,
    /// Ordered comparison producing a 0/1 value in the opcode's element
    /// type — the if-converted encoding of a branch condition. Not a
    /// reduction kind; executes on the ordinary ALUs.
    Cmp(CmpPred),
    /// Three-operand conditional move `cond != 0 ? a : b` — the
    /// if-converted encoding of a guarded assignment, after the LLVM SLP
    /// select idiom. Data flow only: both arms are always evaluated, so
    /// select is pass-through cost on its own functional unit, not control
    /// flow.
    Select,
}

impl OpKind {
    /// Number of value operands the kind consumes. [`OpKind::Pack`] is
    /// variadic (one operand per vector lane) and reports the minimum of 1;
    /// check [`OpKind::is_variadic`].
    pub fn arity(self) -> usize {
        match self {
            OpKind::Load => 0,
            OpKind::Store | OpKind::Neg | OpKind::Abs | OpKind::Sqrt | OpKind::Copy
            | OpKind::Merge | OpKind::Pack => 1,
            OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Min
            | OpKind::Max | OpKind::Extract | OpKind::Cmp(_) => 2,
            OpKind::Select => 3,
        }
    }

    /// True for kinds accepting more operands than [`OpKind::arity`].
    pub fn is_variadic(self) -> bool {
        matches!(self, OpKind::Pack)
    }

    /// True when the kind produces a result value.
    pub fn defines_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// True for kinds that are commutative and associative, and hence legal
    /// reduction operators.
    pub fn is_reduction_kind(self) -> bool {
        matches!(self, OpKind::Add | OpKind::Mul | OpKind::Min | OpKind::Max)
    }

    /// True for memory operations.
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Neg => "neg",
            OpKind::Abs => "abs",
            OpKind::Sqrt => "sqrt",
            OpKind::Copy => "copy",
            OpKind::Merge => "merge",
            OpKind::Pack => "pack",
            OpKind::Extract => "extract",
            OpKind::Cmp(CmpPred::Eq) => "cmpeq",
            OpKind::Cmp(CmpPred::Ne) => "cmpne",
            OpKind::Cmp(CmpPred::Lt) => "cmplt",
            OpKind::Cmp(CmpPred::Le) => "cmple",
            OpKind::Select => "select",
        }
    }
}

/// Whether an opcode is the scalar or the vector form of its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorForm {
    /// One element per execution.
    Scalar,
    /// One machine vector (`vector_length` elements) per execution.
    Vector,
}

impl VectorForm {
    /// True for [`VectorForm::Vector`].
    #[inline]
    pub fn is_vector(self) -> bool {
        matches!(self, VectorForm::Vector)
    }
}

/// A complete opcode: kind × element type × scalar/vector form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Opcode {
    /// Operation kind.
    pub kind: OpKind,
    /// Element type.
    pub ty: ScalarType,
    /// Scalar or vector form.
    pub form: VectorForm,
}

impl Opcode {
    /// Scalar opcode of `kind` on `ty`.
    pub fn scalar(kind: OpKind, ty: ScalarType) -> Opcode {
        Opcode { kind, ty, form: VectorForm::Scalar }
    }

    /// Vector opcode of `kind` on `ty`.
    pub fn vector(kind: OpKind, ty: ScalarType) -> Opcode {
        Opcode { kind, ty, form: VectorForm::Vector }
    }

    /// The same opcode in the other form.
    pub fn with_form(self, form: VectorForm) -> Opcode {
        Opcode { form, ..self }
    }

    /// True for the vector form.
    #[inline]
    pub fn is_vector(self) -> bool {
        self.form.is_vector()
    }

    /// Register class of the value this opcode defines (if any).
    pub fn def_class(self) -> RegClass {
        RegClass::of(self.ty, self.is_vector())
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_vector() {
            write!(f, "v")?;
        }
        write!(f, "{}.{}", self.kind.mnemonic(), self.ty)
    }
}

/// A value operand of an operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// The value defined by operation `op`, `distance` iterations ago.
    /// `distance == 0` is an intra-iteration use; `distance >= 1` is a
    /// loop-carried use (the value flows around the back edge).
    Def {
        /// Defining operation.
        op: OpId,
        /// Iteration distance of the use.
        distance: u32,
    },
    /// A loop-invariant input, set before the loop.
    LiveIn(crate::program::LiveInId),
    /// Integer immediate.
    ConstI(i64),
    /// Floating-point immediate.
    ConstF(f64),
    /// An affine function of the loop's canonical induction variable:
    /// `scale * iter + offset` as an `i64` data value. Source loops use
    /// `scale = 1, offset = 0`; the vectorizing/unrolling transformer
    /// rewrites the coefficients so each lane sees its original iteration
    /// number.
    Iv {
        /// Multiplier of the iteration number.
        scale: i64,
        /// Constant addend.
        offset: i64,
    },
}

impl Operand {
    /// Intra-iteration use of `op`'s value.
    pub fn def(op: OpId) -> Operand {
        Operand::Def { op, distance: 0 }
    }

    /// The canonical induction variable itself (`1 * iter + 0`).
    pub fn iv() -> Operand {
        Operand::Iv { scale: 1, offset: 0 }
    }

    /// Loop-carried use of `op`'s value from `distance` iterations ago.
    pub fn carried(op: OpId, distance: u32) -> Operand {
        Operand::Def { op, distance }
    }

    /// The defining operation, if this operand is a def use.
    pub fn def_op(&self) -> Option<(OpId, u32)> {
        match *self {
            Operand::Def { op, distance } => Some((op, distance)),
            _ => None,
        }
    }

    /// True when the operand is loop-invariant (constant or live-in).
    pub fn is_invariant(&self) -> bool {
        matches!(self, Operand::LiveIn(_) | Operand::ConstI(_) | Operand::ConstF(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::Def { op, distance: 0 } => write!(f, "{op}"),
            Operand::Def { op, distance } => write!(f, "{op}@-{distance}"),
            Operand::LiveIn(id) => write!(f, "${}", id.0),
            Operand::ConstI(v) => write!(f, "#{v}"),
            Operand::ConstF(v) => write!(f, "#{v:?}"),
            Operand::Iv { scale, offset } => write!(f, "iv*{scale}{offset:+}"),
        }
    }
}

/// Initial value observed by loop-carried reads of an operation's value
/// before the producing iteration exists (iteration `t < distance`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CarriedInit {
    /// Zero (the default for ordinary values).
    #[default]
    Zero,
    /// One (multiplicative reduction identity).
    One,
    /// +∞ (min-reduction identity).
    PosInf,
    /// −∞ (max-reduction identity).
    NegInf,
}

impl CarriedInit {
    /// The identity element for a reduction kind.
    pub fn identity_for(kind: OpKind) -> CarriedInit {
        match kind {
            OpKind::Mul => CarriedInit::One,
            OpKind::Min => CarriedInit::PosInf,
            OpKind::Max => CarriedInit::NegInf,
            _ => CarriedInit::Zero,
        }
    }
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Identifier; equals the op's index in the loop body.
    pub id: OpId,
    /// Opcode.
    pub opcode: Opcode,
    /// Value operands (length must equal `opcode.kind.arity()`).
    pub operands: Vec<Operand>,
    /// Memory reference for `Load`/`Store` kinds.
    pub mem: Option<MemRef>,
    /// Marks the accumulation operation of a reduction (`s = s ⊕ x`).
    /// Reduction ops carry a self-referential first operand
    /// `Def { op: self, distance: 1 }`.
    pub is_reduction: bool,
    /// Value seen by carried reads of this op before its first iteration.
    pub carried_init: CarriedInit,
}

impl Operation {
    /// True when the operation produces a result value.
    #[inline]
    pub fn defines_value(&self) -> bool {
        self.opcode.kind.defines_value()
    }

    /// The operation's memory reference, panicking if it is not a memory op.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-memory operation.
    pub fn mem_ref(&self) -> &MemRef {
        self.mem.as_ref().expect("mem_ref on non-memory operation")
    }

    /// Iterate over (producer, distance) pairs of def-operands.
    pub fn def_uses(&self) -> impl Iterator<Item = (OpId, u32)> + '_ {
        self.operands.iter().filter_map(Operand::def_op)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.id, self.opcode)?;
        if self.is_reduction {
            write!(f, " [red]")?;
        }
        match self.carried_init {
            CarriedInit::Zero => {}
            CarriedInit::One => write!(f, " [init one]")?,
            CarriedInit::PosInf => write!(f, " [init +inf]")?,
            CarriedInit::NegInf => write!(f, " [init -inf]")?,
        }
        for (i, o) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {o}")?;
            } else {
                write!(f, ", {o}")?;
            }
        }
        if let Some(m) = &self.mem {
            write!(f, " {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kinds() {
        assert_eq!(OpKind::Load.arity(), 0);
        assert_eq!(OpKind::Store.arity(), 1);
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Merge.arity(), 1);
        assert_eq!(OpKind::Sqrt.arity(), 1);
        assert_eq!(OpKind::Cmp(CmpPred::Lt).arity(), 2);
        assert_eq!(OpKind::Select.arity(), 3);
    }

    #[test]
    fn cmp_select_are_not_reductions() {
        for p in CmpPred::ALL {
            assert!(!OpKind::Cmp(p).is_reduction_kind());
            assert!(OpKind::Cmp(p).defines_value());
        }
        assert!(!OpKind::Select.is_reduction_kind());
        assert!(OpKind::Select.defines_value());
        assert!(!OpKind::Select.is_variadic());
    }

    #[test]
    fn cmp_select_mnemonics() {
        assert_eq!(OpKind::Cmp(CmpPred::Eq).mnemonic(), "cmpeq");
        assert_eq!(OpKind::Cmp(CmpPred::Ne).mnemonic(), "cmpne");
        assert_eq!(OpKind::Cmp(CmpPred::Lt).mnemonic(), "cmplt");
        assert_eq!(OpKind::Cmp(CmpPred::Le).mnemonic(), "cmple");
        assert_eq!(OpKind::Select.mnemonic(), "select");
        assert_eq!(
            Opcode::vector(OpKind::Select, ScalarType::F64).to_string(),
            "vselect.f64"
        );
        assert_eq!(
            Opcode::scalar(OpKind::Cmp(CmpPred::Lt), ScalarType::I64).to_string(),
            "cmplt.i64"
        );
    }

    #[test]
    fn store_defines_nothing() {
        assert!(!OpKind::Store.defines_value());
        assert!(OpKind::Load.defines_value());
        assert!(OpKind::Merge.defines_value());
    }

    #[test]
    fn reduction_kinds() {
        assert!(OpKind::Add.is_reduction_kind());
        assert!(OpKind::Mul.is_reduction_kind());
        assert!(OpKind::Min.is_reduction_kind());
        assert!(!OpKind::Sub.is_reduction_kind());
        assert!(!OpKind::Div.is_reduction_kind());
    }

    #[test]
    fn opcode_display() {
        let s = Opcode::scalar(OpKind::Mul, ScalarType::F64);
        let v = Opcode::vector(OpKind::Mul, ScalarType::F64);
        assert_eq!(s.to_string(), "mul.f64");
        assert_eq!(v.to_string(), "vmul.f64");
        assert_eq!(s.with_form(VectorForm::Vector), v);
    }

    #[test]
    fn opcode_def_class() {
        assert_eq!(
            Opcode::vector(OpKind::Add, ScalarType::F64).def_class(),
            RegClass::VectorFp
        );
        assert_eq!(
            Opcode::scalar(OpKind::Add, ScalarType::I64).def_class(),
            RegClass::ScalarInt
        );
    }

    #[test]
    fn operand_helpers() {
        let o = Operand::carried(OpId(3), 2);
        assert_eq!(o.def_op(), Some((OpId(3), 2)));
        assert!(!o.is_invariant());
        assert!(Operand::ConstI(4).is_invariant());
        assert_eq!(Operand::def(OpId(1)).def_op(), Some((OpId(1), 0)));
    }
}
