//! Textual rendering of loops, for logs and debugging.

use crate::program::Loop;
use std::fmt;

pub(crate) fn fmt_loop(l: &Loop, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(
        f,
        "loop {} (trip {}{} x{} invocations, scale {}",
        l.name,
        l.trip.count,
        if l.trip.compile_time_known { "" } else { "?" },
        l.invocations,
        l.iter_scale
    )?;
    if l.vector_width > 1 {
        write!(f, ", width {}", l.vector_width)?;
    }
    write!(f, ")")?;
    if l.allow_reassoc {
        write!(f, " [reassoc]")?;
    }
    writeln!(f)?;
    for (i, a) in l.arrays.iter().enumerate() {
        write!(
            f,
            "  array @{i} {} : {}[{}] align {}{}",
            a.name,
            a.ty,
            a.len,
            a.base_align,
            if a.iteration_private { " private" } else { "" }
        )?;
        match a.fill {
            crate::mem::ArrayFill::Data => {}
            crate::mem::ArrayFill::Zero => write!(f, " fill zero")?,
            crate::mem::ArrayFill::One => write!(f, " fill one")?,
            crate::mem::ArrayFill::PosInf => write!(f, " fill +inf")?,
            crate::mem::ArrayFill::NegInf => write!(f, " fill -inf")?,
        }
        writeln!(f)?;
    }
    for (i, li) in l.live_ins.iter().enumerate() {
        writeln!(f, "  livein ${i} {} : {}", li.name, li.ty)?;
    }
    for op in &l.ops {
        writeln!(f, "  {op}")?;
    }
    for lo in &l.live_outs {
        write!(f, "  liveout {} = {}", lo.name, lo.op)?;
        if let Some(k) = lo.horizontal {
            write!(f, " (horizontal {})", k.mnemonic())?;
        }
        if let Some(k) = lo.combine {
            write!(f, " (combine {})", k.mnemonic())?;
        }
        writeln!(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::LoopBuilder;
    use crate::types::ScalarType;

    #[test]
    fn renders_all_sections() {
        let mut b = LoopBuilder::new("show");
        b.trip(100).invocations(3);
        let x = b.array("x", ScalarType::F64, 100);
        let a = b.live_in("a", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let m = b.fmul_li(a, lx);
        b.reduce_add(m);
        let text = b.finish().to_string();
        assert!(text.contains("loop show"));
        assert!(text.contains("array @0 x"));
        assert!(text.contains("livein $0 a"));
        assert!(text.contains("mul.f64"));
        assert!(text.contains("[red]"));
        assert!(text.contains("liveout"));
    }
}
