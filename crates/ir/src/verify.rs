//! Structural verification of loops.

use crate::op::{OpId, VectorForm};
use crate::program::Loop;
use std::fmt;

/// A violated structural invariant, reported by [`Loop::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// `ops[n].id != OpId(n)`.
    IdMismatch { at: usize, found: OpId },
    /// Operand count does not match the opcode's arity.
    BadArity { op: OpId, expected: usize, found: usize },
    /// Memory op without a [`crate::MemRef`], or a non-memory op with one.
    MemRefMismatch { op: OpId },
    /// Memory ref width disagrees with the opcode form (scalar refs must
    /// have width 1; vector refs width > 1).
    BadRefWidth { op: OpId, width: u32 },
    /// Def-operand names an op that defines no value (a store).
    UseOfNonValue { op: OpId, referenced: OpId },
    /// Def-operand names an out-of-range op.
    DanglingDef { op: OpId, referenced: OpId },
    /// Intra-iteration operand (`distance == 0`) references the op itself or
    /// a later op, so program order would not be executable.
    ForwardUse { op: OpId, referenced: OpId },
    /// Reduction flag on a non-reduction kind, or without the carried
    /// self-operand in position 0.
    MalformedReduction { op: OpId },
    /// Memory ref names an undeclared array.
    DanglingArray { op: OpId },
    /// Operand names an undeclared live-in.
    DanglingLiveIn { op: OpId },
    /// Live-out references an out-of-range or non-value op.
    BadLiveOut { name: String },
    /// `iter_scale` must be at least 1.
    BadIterScale,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IdMismatch { at, found } => {
                write!(f, "op at index {at} has id {found}")
            }
            VerifyError::BadArity { op, expected, found } => {
                write!(f, "{op} has {found} operands, opcode needs {expected}")
            }
            VerifyError::MemRefMismatch { op } => {
                write!(f, "{op} has a memory-ref/opcode mismatch")
            }
            VerifyError::BadRefWidth { op, width } => {
                write!(f, "{op} has memory ref width {width} inconsistent with its form")
            }
            VerifyError::UseOfNonValue { op, referenced } => {
                write!(f, "{op} uses {referenced}, which defines no value")
            }
            VerifyError::DanglingDef { op, referenced } => {
                write!(f, "{op} references nonexistent op {referenced}")
            }
            VerifyError::ForwardUse { op, referenced } => {
                write!(f, "{op} uses {referenced} at distance 0 but it is not earlier")
            }
            VerifyError::MalformedReduction { op } => {
                write!(f, "{op} is a malformed reduction")
            }
            VerifyError::DanglingArray { op } => {
                write!(f, "{op} references an undeclared array")
            }
            VerifyError::DanglingLiveIn { op } => {
                write!(f, "{op} references an undeclared live-in")
            }
            VerifyError::BadLiveOut { name } => {
                write!(f, "live-out `{name}` references a bad op")
            }
            VerifyError::BadIterScale => write!(f, "iter_scale must be >= 1"),
        }
    }
}

impl std::error::Error for VerifyError {}

pub(crate) fn verify(l: &Loop) -> Result<(), VerifyError> {
    if l.iter_scale == 0 {
        return Err(VerifyError::BadIterScale);
    }
    for (i, op) in l.ops.iter().enumerate() {
        if op.id.index() != i {
            return Err(VerifyError::IdMismatch { at: i, found: op.id });
        }
        let expected = op.opcode.kind.arity();
        let arity_ok = if op.opcode.kind.is_variadic() {
            op.operands.len() >= expected
        } else {
            op.operands.len() == expected
        };
        if !arity_ok {
            return Err(VerifyError::BadArity {
                op: op.id,
                expected,
                found: op.operands.len(),
            });
        }
        let is_mem = op.opcode.kind.is_mem();
        if is_mem != op.mem.is_some() {
            return Err(VerifyError::MemRefMismatch { op: op.id });
        }
        if let Some(m) = &op.mem {
            if (l.arrays.len() as u32) <= m.array.0 {
                return Err(VerifyError::DanglingArray { op: op.id });
            }
            let scalar_form = op.opcode.form == VectorForm::Scalar;
            if (scalar_form && m.width != 1) || (!scalar_form && m.width < 2) {
                return Err(VerifyError::BadRefWidth { op: op.id, width: m.width });
            }
        }
        for operand in &op.operands {
            match operand {
                crate::op::Operand::Def { op: d, distance } => {
                    if d.index() >= l.ops.len() {
                        return Err(VerifyError::DanglingDef { op: op.id, referenced: *d });
                    }
                    if !l.ops[d.index()].defines_value() {
                        return Err(VerifyError::UseOfNonValue {
                            op: op.id,
                            referenced: *d,
                        });
                    }
                    if *distance == 0 && d.index() >= i {
                        return Err(VerifyError::ForwardUse { op: op.id, referenced: *d });
                    }
                }
                crate::op::Operand::LiveIn(id)
                    if id.0 as usize >= l.live_ins.len() => {
                        return Err(VerifyError::DanglingLiveIn { op: op.id });
                    }
                _ => {}
            }
        }
        if op.is_reduction {
            let self_carried = matches!(
                op.operands.first(),
                Some(crate::op::Operand::Def { op: d, distance }) if *d == op.id && *distance >= 1
            );
            if !op.opcode.kind.is_reduction_kind() || !self_carried {
                return Err(VerifyError::MalformedReduction { op: op.id });
            }
        }
    }
    for lo in &l.live_outs {
        let ok = lo.op.index() < l.ops.len() && l.ops[lo.op.index()].defines_value();
        if !ok {
            return Err(VerifyError::BadLiveOut { name: lo.name.clone() });
        }
        if let Some(k) = lo.horizontal {
            if !k.is_reduction_kind() {
                return Err(VerifyError::BadLiveOut { name: lo.name.clone() });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::mem::MemRef;
    use crate::op::{CarriedInit, Opcode, Operand, Operation};
    use crate::types::ScalarType;

    fn valid_loop() -> Loop {
        let mut b = LoopBuilder::new("v");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(x, 1, 0, n);
        b.finish()
    }

    #[test]
    fn valid_loop_verifies() {
        assert!(valid_loop().verify().is_ok());
    }

    #[test]
    fn detects_id_mismatch() {
        let mut l = valid_loop();
        l.ops[1].id = OpId(5);
        assert!(matches!(l.verify(), Err(VerifyError::IdMismatch { at: 1, .. })));
    }

    #[test]
    fn detects_bad_arity() {
        let mut l = valid_loop();
        l.ops[1].operands.push(Operand::ConstI(1));
        assert!(matches!(l.verify(), Err(VerifyError::BadArity { .. })));
    }

    #[test]
    fn detects_missing_mem_ref() {
        let mut l = valid_loop();
        l.ops[0].mem = None;
        assert!(matches!(l.verify(), Err(VerifyError::MemRefMismatch { .. })));
    }

    #[test]
    fn detects_use_of_store_value() {
        let mut l = valid_loop();
        // op 2 is the store; make the neg use it (loop-carried so ordering
        // is not the failure).
        l.ops[1].operands[0] = Operand::carried(OpId(2), 1);
        assert!(matches!(l.verify(), Err(VerifyError::UseOfNonValue { .. })));
    }

    #[test]
    fn detects_forward_use() {
        let mut l = valid_loop();
        l.ops[1].operands[0] = Operand::def(OpId(1));
        assert!(matches!(l.verify(), Err(VerifyError::ForwardUse { .. })));
    }

    #[test]
    fn detects_dangling_def() {
        let mut l = valid_loop();
        l.ops[1].operands[0] = Operand::def(OpId(40));
        assert!(matches!(l.verify(), Err(VerifyError::DanglingDef { .. })));
    }

    #[test]
    fn detects_malformed_reduction() {
        let mut l = valid_loop();
        l.ops[1].is_reduction = true;
        assert!(matches!(l.verify(), Err(VerifyError::MalformedReduction { .. })));
    }

    #[test]
    fn detects_bad_ref_width() {
        let mut l = valid_loop();
        l.ops[0].mem = Some(MemRef { width: 2, ..*l.ops[0].mem_ref() });
        assert!(matches!(l.verify(), Err(VerifyError::BadRefWidth { .. })));
    }

    #[test]
    fn detects_bad_live_out() {
        let mut l = valid_loop();
        l.live_outs.push(crate::program::LiveOut {
            name: "bogus".into(),
            op: OpId(2), // the store
            horizontal: None,
            combine: None,
        });
        assert!(matches!(l.verify(), Err(VerifyError::BadLiveOut { .. })));
    }

    #[test]
    fn detects_zero_iter_scale() {
        let mut l = valid_loop();
        l.iter_scale = 0;
        assert_eq!(l.verify(), Err(VerifyError::BadIterScale));
    }

    #[test]
    fn vector_op_requires_wide_ref() {
        let mut l = valid_loop();
        l.ops.push(Operation {
            id: OpId(3),
            opcode: Opcode::vector(crate::op::OpKind::Load, ScalarType::F64),
            operands: vec![],
            mem: Some(MemRef::scalar(crate::mem::ArrayId(0), 1, 0)),
            is_reduction: false,
            carried_init: CarriedInit::Zero,
        });
        assert!(matches!(l.verify(), Err(VerifyError::BadRefWidth { .. })));
    }
}
