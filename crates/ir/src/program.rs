//! The loop container: operations, arrays, live-ins/outs and trip metadata.

use crate::mem::{ArrayDecl, ArrayId};
use crate::op::{OpId, Operation};
use crate::types::ScalarType;
use crate::verify::VerifyError;
use std::fmt;

/// Identifier of a loop-invariant live-in value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LiveInId(pub u32);

/// A loop-invariant input value, defined before the loop body executes.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveIn {
    /// Human-readable name.
    pub name: String,
    /// Value type.
    pub ty: ScalarType,
}

/// A value observed after the loop finishes (reduction results and other
/// scalar outputs). The functional simulator compares live-outs by `name`
/// between a source loop and its transformed versions.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveOut {
    /// Name used to match live-outs across transformed versions of a loop.
    pub name: String,
    /// Operation whose final value is observed.
    pub op: OpId,
    /// When `Some(kind)`, `op` defines a *vector* of partial results that
    /// must be combined elementwise with `kind` after the loop (the
    /// horizontal combine emitted when a reduction is vectorized into
    /// partial sums).
    pub horizontal: Option<crate::op::OpKind>,
    /// When `Some(kind)`, the live-out is a running reduction whose values
    /// from separately executed loop pieces (a distributed loop and its
    /// cleanup loop, say) combine with `kind`; `None` values are replaced
    /// by later pieces.
    pub combine: Option<crate::op::OpKind>,
}

/// Trip-count metadata for a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripCount {
    /// Number of iterations actually executed per invocation.
    pub count: u64,
    /// Whether the count is a compile-time constant. When it is not, or is
    /// not divisible by the vectorization factor, transformed loops need a
    /// cleanup loop for the remainder iterations.
    pub compile_time_known: bool,
}

impl TripCount {
    /// A compile-time-known trip count.
    pub fn known(count: u64) -> TripCount {
        TripCount { count, compile_time_known: true }
    }

    /// A trip count only known at run time (the common case for the SPEC
    /// loops, whose bounds are subroutine arguments).
    pub fn runtime(count: u64) -> TripCount {
        TripCount { count, compile_time_known: false }
    }
}

/// An innermost `do` loop without control flow: the unit of work for the
/// whole pipeline.
///
/// Invariants (checked by [`Loop::verify`]):
/// * `ops[n].id == OpId(n)` — ids are program-order indices;
/// * operand counts match opcode arities; memory ops carry a [`crate::MemRef`]
///   whose width matches their form; only memory ops carry one;
/// * def-operands reference ops that define a value; intra-iteration uses
///   (`distance == 0`) reference *earlier* ops, so program order is a valid
///   execution order;
/// * reduction ops use a legal reduction kind and carry the self-referential
///   carried operand in position 0;
/// * live-ins/arrays referenced by operands/refs exist; live-outs reference
///   value-defining ops.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Loop name, used in reports.
    pub name: String,
    /// Operations in program order.
    pub ops: Vec<Operation>,
    /// Arrays referenced by memory operations.
    pub arrays: Vec<ArrayDecl>,
    /// Loop-invariant inputs.
    pub live_ins: Vec<LiveIn>,
    /// Values observed after the loop.
    pub live_outs: Vec<LiveOut>,
    /// Trip count per invocation.
    pub trip: TripCount,
    /// How many times the loop is entered over the whole program run.
    pub invocations: u64,
    /// Whether floating-point reassociation is permitted, i.e. whether
    /// reductions may be vectorized into partial sums. (The paper's Figure 1
    /// discussion assumes it is *not*, which is the default for FP.)
    pub allow_reassoc: bool,
    /// Number of *original* iterations completed by one iteration of this
    /// loop. Source loops have 1; a loop vectorized/unrolled by factor `k`
    /// has `k`. Used to compare initiation intervals per original iteration.
    pub iter_scale: u32,
    /// Lane count of the vector values in this loop (1 when no vector
    /// operations exist). Usually equals `iter_scale` for vectorized
    /// loops, but differs under the widened-window extension, where one
    /// iteration covers more original iterations than a vector holds.
    pub vector_width: u32,
}

impl Loop {
    /// An empty loop shell with the given name. Use [`crate::LoopBuilder`]
    /// for convenient construction.
    pub fn new(name: impl Into<String>) -> Loop {
        Loop {
            name: name.into(),
            ops: Vec::new(),
            arrays: Vec::new(),
            live_ins: Vec::new(),
            live_outs: Vec::new(),
            trip: TripCount::runtime(1024),
            invocations: 1,
            allow_reassoc: false,
            iter_scale: 1,
            vector_width: 1,
        }
    }

    /// The operations in program order.
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Append an operation, assigning it the next id. Returns the id.
    pub fn push_op(&mut self, mut op: Operation) -> OpId {
        let id = OpId(self.ops.len() as u32);
        op.id = id;
        self.ops.push(op);
        id
    }

    /// Declare an array, returning its id.
    pub fn push_array(&mut self, decl: ArrayDecl) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(decl);
        id
    }

    /// Declare a live-in, returning its id.
    pub fn push_live_in(&mut self, li: LiveIn) -> LiveInId {
        let id = LiveInId(self.live_ins.len() as u32);
        self.live_ins.push(li);
        id
    }

    /// The array declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[inline]
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Number of iterations this loop executes per invocation, accounting
    /// for [`Loop::iter_scale`]: a transformed loop covering `k` original
    /// iterations executes `⌊count/k⌋` iterations (the remainder is handled
    /// by a cleanup loop).
    pub fn executed_iterations(&self) -> u64 {
        self.trip.count / u64::from(self.iter_scale)
    }

    /// Original iterations left for a cleanup loop after this loop ran.
    pub fn remainder_iterations(&self) -> u64 {
        self.trip.count % u64::from(self.iter_scale)
    }

    /// Check structural invariants. See the type-level docs for the list.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn verify(&self) -> Result<(), VerifyError> {
        crate::verify::verify(self)
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::display::fmt_loop(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CarriedInit, OpKind, Opcode, Operand, Operation};
    use crate::mem::MemRef;

    fn load_op(arr: ArrayId) -> Operation {
        Operation {
            id: OpId(0),
            opcode: Opcode::scalar(OpKind::Load, ScalarType::F64),
            operands: vec![],
            mem: Some(MemRef::scalar(arr, 1, 0)),
            is_reduction: false,
            carried_init: CarriedInit::Zero,
        }
    }

    #[test]
    fn push_op_assigns_sequential_ids() {
        let mut l = Loop::new("t");
        let a = l.push_array(ArrayDecl {
            name: "a".into(),
            ty: ScalarType::F64,
            len: 8,
            base_align: 16,
            iteration_private: false,
            fill: crate::mem::ArrayFill::Data,
        });
        let i0 = l.push_op(load_op(a));
        let i1 = l.push_op(Operation {
            id: OpId(99),
            opcode: Opcode::scalar(OpKind::Neg, ScalarType::F64),
            operands: vec![Operand::def(i0)],
            mem: None,
            is_reduction: false,
            carried_init: CarriedInit::Zero,
        });
        assert_eq!(i0, OpId(0));
        assert_eq!(i1, OpId(1));
        assert_eq!(l.op(i1).id, i1);
    }

    #[test]
    fn executed_and_remainder_iterations() {
        let mut l = Loop::new("t");
        l.trip = TripCount::known(10);
        l.iter_scale = 4;
        assert_eq!(l.executed_iterations(), 2);
        assert_eq!(l.remainder_iterations(), 2);
        l.iter_scale = 1;
        assert_eq!(l.executed_iterations(), 10);
        assert_eq!(l.remainder_iterations(), 0);
    }

    #[test]
    fn trip_count_constructors() {
        assert!(TripCount::known(5).compile_time_known);
        assert!(!TripCount::runtime(5).compile_time_known);
    }
}
