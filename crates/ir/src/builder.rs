//! Ergonomic construction of loops.

use crate::mem::{ArrayDecl, ArrayId, MemRef};
use crate::op::{CarriedInit, CmpPred, OpId, OpKind, Opcode, Operand, Operation, VectorForm};
use crate::program::{LiveIn, LiveInId, LiveOut, Loop, TripCount};
use crate::types::ScalarType;
use crate::verify::VerifyError;

/// Builder for [`Loop`]s in scalar source form.
///
/// The builder emits operations in program order and wires operands by the
/// [`OpId`]s it returns. Every arithmetic helper has an `f`-prefixed `f64`
/// variant and an `i`-prefixed `i64` variant; `op` is the fully general
/// entry point.
///
/// ```
/// use sv_ir::{LoopBuilder, ScalarType};
///
/// // y[i] = a * x[i] + y[i]  (daxpy)
/// let mut b = LoopBuilder::new("daxpy");
/// let x = b.array("x", ScalarType::F64, 1000);
/// let y = b.array("y", ScalarType::F64, 1000);
/// let a = b.live_in("a", ScalarType::F64);
/// let lx = b.load(x, 1, 0);
/// let ly = b.load(y, 1, 0);
/// let ax = b.fmul_li(a, lx);
/// let s = b.fadd(ax, ly);
/// b.store(y, 1, 0, s);
/// let l = b.finish();
/// assert!(l.verify().is_ok());
/// ```
#[derive(Debug)]
pub struct LoopBuilder {
    looop: Loop,
}

impl LoopBuilder {
    /// Start building a loop with the given name.
    pub fn new(name: impl Into<String>) -> LoopBuilder {
        LoopBuilder { looop: Loop::new(name) }
    }

    /// Set the trip count (runtime-known by default).
    pub fn trip(&mut self, count: u64) -> &mut Self {
        self.looop.trip = TripCount::runtime(count);
        self
    }

    /// Set a compile-time-known trip count.
    pub fn trip_known(&mut self, count: u64) -> &mut Self {
        self.looop.trip = TripCount::known(count);
        self
    }

    /// Set how many times the loop is invoked over the program run.
    pub fn invocations(&mut self, n: u64) -> &mut Self {
        self.looop.invocations = n;
        self
    }

    /// Allow floating-point reassociation (vectorizable reductions).
    pub fn allow_reassoc(&mut self, yes: bool) -> &mut Self {
        self.looop.allow_reassoc = yes;
        self
    }

    /// Declare an array of `len` elements.
    pub fn array(&mut self, name: impl Into<String>, ty: ScalarType, len: u64) -> ArrayId {
        self.looop.push_array(ArrayDecl::plain(name, ty, len))
    }

    /// Declare an array whose base is *not* vector aligned (base offset of
    /// one element), for modeling statically misaligned streams.
    pub fn array_misaligned(
        &mut self,
        name: impl Into<String>,
        ty: ScalarType,
        len: u64,
    ) -> ArrayId {
        let mut d = ArrayDecl::plain(name, ty, len);
        d.base_align = ty.size_bytes();
        self.looop.push_array(d)
    }

    /// Declare a loop-invariant live-in value.
    pub fn live_in(&mut self, name: impl Into<String>, ty: ScalarType) -> LiveInId {
        self.looop.push_live_in(LiveIn { name: name.into(), ty })
    }

    /// Emit a scalar load `array[stride*i + offset]`.
    pub fn load(&mut self, array: ArrayId, stride: i64, offset: i64) -> OpId {
        let ty = self.looop.array(array).ty;
        self.push(
            Opcode::scalar(OpKind::Load, ty),
            vec![],
            Some(MemRef::scalar(array, stride, offset)),
            false,
        )
    }

    /// Emit a scalar store `array[stride*i + offset] = value`.
    pub fn store(&mut self, array: ArrayId, stride: i64, offset: i64, value: OpId) -> OpId {
        let ty = self.looop.array(array).ty;
        self.push(
            Opcode::scalar(OpKind::Store, ty),
            vec![Operand::def(value)],
            Some(MemRef::scalar(array, stride, offset)),
            false,
        )
    }

    /// Emit a binary f64 operation.
    pub fn fbin(&mut self, kind: OpKind, a: OpId, b: OpId) -> OpId {
        self.bin(kind, ScalarType::F64, Operand::def(a), Operand::def(b))
    }

    /// Emit a binary i64 operation.
    pub fn ibin(&mut self, kind: OpKind, a: OpId, b: OpId) -> OpId {
        self.bin(kind, ScalarType::I64, Operand::def(a), Operand::def(b))
    }

    /// `a + b` on f64.
    pub fn fadd(&mut self, a: OpId, b: OpId) -> OpId {
        self.fbin(OpKind::Add, a, b)
    }

    /// `a - b` on f64.
    pub fn fsub(&mut self, a: OpId, b: OpId) -> OpId {
        self.fbin(OpKind::Sub, a, b)
    }

    /// `a * b` on f64.
    pub fn fmul(&mut self, a: OpId, b: OpId) -> OpId {
        self.fbin(OpKind::Mul, a, b)
    }

    /// `a / b` on f64.
    pub fn fdiv(&mut self, a: OpId, b: OpId) -> OpId {
        self.fbin(OpKind::Div, a, b)
    }

    /// `min(a, b)` on f64.
    pub fn fmin(&mut self, a: OpId, b: OpId) -> OpId {
        self.fbin(OpKind::Min, a, b)
    }

    /// `max(a, b)` on f64.
    pub fn fmax(&mut self, a: OpId, b: OpId) -> OpId {
        self.fbin(OpKind::Max, a, b)
    }

    /// `-a` on f64.
    pub fn fneg(&mut self, a: OpId) -> OpId {
        self.unary(OpKind::Neg, ScalarType::F64, a)
    }

    /// `|a|` on f64.
    pub fn fabs(&mut self, a: OpId) -> OpId {
        self.unary(OpKind::Abs, ScalarType::F64, a)
    }

    /// `sqrt(a)` on f64.
    pub fn fsqrt(&mut self, a: OpId) -> OpId {
        self.unary(OpKind::Sqrt, ScalarType::F64, a)
    }

    /// `a + b` on i64.
    pub fn iadd(&mut self, a: OpId, b: OpId) -> OpId {
        self.ibin(OpKind::Add, a, b)
    }

    /// `a * b` on i64.
    pub fn imul(&mut self, a: OpId, b: OpId) -> OpId {
        self.ibin(OpKind::Mul, a, b)
    }

    /// Live-in × def binary op on the live-in's type.
    pub fn fmul_li(&mut self, a: LiveInId, b: OpId) -> OpId {
        let ty = self.looop.live_ins[a.0 as usize].ty;
        self.bin(OpKind::Mul, ty, Operand::LiveIn(a), Operand::def(b))
    }

    /// Live-in + def binary op on the live-in's type.
    pub fn fadd_li(&mut self, a: LiveInId, b: OpId) -> OpId {
        let ty = self.looop.live_ins[a.0 as usize].ty;
        self.bin(OpKind::Add, ty, Operand::LiveIn(a), Operand::def(b))
    }

    /// Binary op with fully general operands.
    pub fn bin(&mut self, kind: OpKind, ty: ScalarType, a: Operand, b: Operand) -> OpId {
        debug_assert_eq!(kind.arity(), 2);
        self.push(Opcode::scalar(kind, ty), vec![a, b], None, false)
    }

    /// Unary op.
    pub fn unary(&mut self, kind: OpKind, ty: ScalarType, a: OpId) -> OpId {
        debug_assert_eq!(kind.arity(), 1);
        self.push(Opcode::scalar(kind, ty), vec![Operand::def(a)], None, false)
    }

    /// Emit an ordered comparison `a <pred> b` producing 0/1 in `ty`.
    pub fn cmp(&mut self, pred: CmpPred, ty: ScalarType, a: Operand, b: Operand) -> OpId {
        self.bin(OpKind::Cmp(pred), ty, a, b)
    }

    /// `a < b` on two defs, producing a 0/1 value of their type.
    pub fn fcmplt(&mut self, a: OpId, b: OpId) -> OpId {
        self.cmp(CmpPred::Lt, ScalarType::F64, Operand::def(a), Operand::def(b))
    }

    /// Emit a conditional move `cond != 0 ? a : b` in `ty`.
    pub fn select(&mut self, ty: ScalarType, cond: Operand, a: Operand, b: Operand) -> OpId {
        self.push(
            Opcode::scalar(OpKind::Select, ty),
            vec![cond, a, b],
            None,
            false,
        )
    }

    /// Select over three defs on f64.
    pub fn fselect(&mut self, cond: OpId, a: OpId, b: OpId) -> OpId {
        self.select(
            ScalarType::F64,
            Operand::def(cond),
            Operand::def(a),
            Operand::def(b),
        )
    }

    /// `r = cond ? value : r@1` — a select-carried first-order recurrence
    /// (argmax-style index tracking: the carried value survives until the
    /// condition next fires). Starts at zero.
    pub fn select_recurrence(&mut self, ty: ScalarType, cond: Operand, value: Operand) -> OpId {
        let id = OpId(self.looop.ops.len() as u32);
        let op = Operation {
            id,
            opcode: Opcode::scalar(OpKind::Select, ty),
            operands: vec![cond, value, Operand::carried(id, 1)],
            mem: None,
            is_reduction: false,
            carried_init: CarriedInit::Zero,
        };
        self.looop.push_op(op)
    }

    /// Emit the accumulation op of a reduction `s = s ⊕ value` (f64 sum by
    /// default via [`LoopBuilder::reduce_add`]) and register `s` as a
    /// live-out named after the op.
    pub fn reduce(&mut self, kind: OpKind, ty: ScalarType, value: OpId) -> OpId {
        assert!(kind.is_reduction_kind(), "{kind:?} is not a reduction kind");
        let id = OpId(self.looop.ops.len() as u32);
        let op = Operation {
            id,
            opcode: Opcode::scalar(kind, ty),
            operands: vec![Operand::carried(id, 1), Operand::def(value)],
            mem: None,
            is_reduction: true,
            carried_init: CarriedInit::identity_for(kind),
        };
        let id = self.looop.push_op(op);
        self.looop.live_outs.push(LiveOut {
            name: format!("red{}", id.0),
            op: id,
            horizontal: None,
            combine: Some(kind),
        });
        id
    }

    /// `s += value` reduction on f64.
    pub fn reduce_add(&mut self, value: OpId) -> OpId {
        self.reduce(OpKind::Add, ScalarType::F64, value)
    }

    /// Emit a first-order recurrence `t = f(t@-1, value)`; such ops sit on a
    /// distance-1 dependence cycle and are never vectorizable. Returns the
    /// op id. `kind` need not be associative (e.g. `Sub`, `Div`, `Mul`).
    /// The carried value starts at the kind's identity (1 for `Mul`, 0
    /// otherwise) so multiplicative chains are not degenerate.
    pub fn recurrence(&mut self, kind: OpKind, ty: ScalarType, value: OpId) -> OpId {
        debug_assert_eq!(kind.arity(), 2);
        let id = OpId(self.looop.ops.len() as u32);
        let op = Operation {
            id,
            opcode: Opcode::scalar(kind, ty),
            operands: vec![Operand::carried(id, 1), Operand::def(value)],
            mem: None,
            is_reduction: false,
            carried_init: CarriedInit::identity_for(kind),
        };
        self.looop.push_op(op)
    }

    /// Fully general push. `opcode.form` may be vector for use by the
    /// transformation passes.
    pub fn push(
        &mut self,
        opcode: Opcode,
        operands: Vec<Operand>,
        mem: Option<MemRef>,
        is_reduction: bool,
    ) -> OpId {
        debug_assert!(
            opcode.form == VectorForm::Scalar || mem.is_none() || mem.unwrap().width > 0
        );
        self.looop.push_op(Operation {
            id: OpId(0),
            opcode,
            operands,
            mem,
            is_reduction,
            carried_init: if is_reduction {
                CarriedInit::identity_for(opcode.kind)
            } else {
                CarriedInit::Zero
            },
        })
    }

    /// Register a value as a live-out under `name`.
    pub fn live_out(&mut self, name: impl Into<String>, op: OpId) -> &mut Self {
        self.looop.live_outs.push(LiveOut {
            name: name.into(),
            op,
            horizontal: None,
            combine: None,
        });
        self
    }

    /// Finish, returning the loop.
    ///
    /// # Panics
    ///
    /// Panics if the built loop fails verification — a builder bug in the
    /// caller. [`LoopBuilder::try_finish`] reports the same condition as
    /// an error.
    pub fn finish(self) -> Loop {
        let name = self.looop.name.clone();
        match self.try_finish() {
            Ok(l) => l,
            Err(e) => panic!("LoopBuilder produced an invalid loop `{name}`: {e}"),
        }
    }

    /// Finish, verifying the loop and returning the verifier's complaint
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] in the built loop.
    pub fn try_finish(self) -> Result<Loop, VerifyError> {
        self.looop.verify()?;
        Ok(self.looop)
    }

    /// Finish without verifying — for callers that patch operands
    /// afterwards (e.g. the expression frontend's carried-read holes) and
    /// run [`Loop::verify`] themselves.
    pub fn finish_unchecked(self) -> Loop {
        self.looop
    }

    /// Access the loop under construction without verifying.
    pub fn as_loop(&self) -> &Loop {
        &self.looop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_dot_product() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let m = b.fmul(lx, ly);
        let s = b.reduce_add(m);
        let l = b.finish();
        assert_eq!(l.ops.len(), 4);
        assert!(l.ops[s.index()].is_reduction);
        assert_eq!(l.live_outs.len(), 1);
        assert_eq!(l.live_outs[0].op, s);
    }

    #[test]
    fn recurrence_is_not_reduction() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let r = b.recurrence(OpKind::Sub, ScalarType::F64, lx);
        b.store(x, 1, 0, r);
        let l = b.finish();
        assert!(!l.ops[r.index()].is_reduction);
        assert_eq!(l.ops[r.index()].operands[0].def_op(), Some((r, 1)));
    }

    #[test]
    #[should_panic(expected = "not a reduction kind")]
    fn reduce_rejects_nonassociative_kind() {
        let mut b = LoopBuilder::new("bad");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce(OpKind::Sub, ScalarType::F64, lx);
    }

    #[test]
    fn misaligned_array_base() {
        let mut b = LoopBuilder::new("mis");
        let x = b.array_misaligned("x", ScalarType::F64, 64);
        assert_eq!(b.as_loop().array(x).base_align, 8);
    }

    #[test]
    fn trip_and_invocations() {
        let mut b = LoopBuilder::new("meta");
        b.trip_known(128).invocations(7);
        let x = b.array("x", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        b.store(x, 1, 0, lx);
        let l = b.finish();
        assert_eq!(l.trip, TripCount::known(128));
        assert_eq!(l.invocations, 7);
    }
}
