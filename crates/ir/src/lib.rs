//! # sv-ir — loop intermediate representation
//!
//! The low-level loop IR consumed by every other crate in the `selvec`
//! workspace. It models exactly the class of loops the MICRO 2005 paper
//! *Exploiting Vector Parallelism in Software Pipelined Loops* targets:
//! innermost `do` loops without control flow or function calls, operating
//! on arrays through affine subscripts, with a single canonical induction
//! variable.
//!
//! The representation is deliberately *machine-level*: each [`Operation`]
//! corresponds to one (scalar or vector) instruction, and the selective
//! vectorizer, the traditional/full vectorizers and the modulo scheduler
//! all operate on this form. Vector operations are first-class: the same
//! opcode space covers scalar instructions, vector instructions, the
//! `VMERGE`-style realignment operations used for misaligned vector memory
//! access, and nothing else — explicit scalar↔vector transfers are ordinary
//! loads and stores to *communication slots*, as on the paper's simulated
//! machine, which routes all cross-file communication through memory.
//!
//! ## Quick tour
//!
//! ```
//! use sv_ir::{LoopBuilder, ScalarType};
//!
//! // s += x[i] * y[i]   — the paper's Figure 1 dot product.
//! let mut b = LoopBuilder::new("dot");
//! let x = b.array("x", ScalarType::F64, 1024);
//! let y = b.array("y", ScalarType::F64, 1024);
//! let lx = b.load(x, 1, 0);
//! let ly = b.load(y, 1, 0);
//! let m = b.fmul(lx, ly);
//! let _s = b.reduce_add(m);
//! let l = b.finish();
//! assert_eq!(l.ops().len(), 4);
//! assert!(l.verify().is_ok());
//! ```

mod builder;
mod display;
mod frontend;
mod hash;
mod mem;
mod op;
mod parse;
mod program;
mod stats;
mod types;
mod verify;

pub use builder::LoopBuilder;
pub use frontend::loop_from_source;
pub use hash::{CanonicalHash, CanonicalHasher};
pub use mem::{ArrayDecl, ArrayFill, ArrayId, MemRef};
pub use op::{CarriedInit, CmpPred, OpId, OpKind, Opcode, Operand, Operation, VectorForm};
pub use parse::{parse_loop, ParseError};
pub use program::{LiveIn, LiveInId, LiveOut, Loop, TripCount};
pub use stats::LoopStats;
pub use types::{RegClass, ScalarType};
pub use verify::VerifyError;
