//! Parsing the textual loop format.
//!
//! The grammar is exactly what [`Loop`]'s `Display` implementation emits,
//! so `parse_loop(&l.to_string())` round-trips any loop — source,
//! transformed or distributed. This makes loops storable as plain text
//! (test fixtures, CLI input, bug reports).
//!
//! ```
//! use sv_ir::{parse_loop, LoopBuilder, ScalarType};
//!
//! let mut b = LoopBuilder::new("copy");
//! let x = b.array("x", ScalarType::F64, 16);
//! let lx = b.load(x, 1, 0);
//! b.store(x, 1, 8, lx);
//! let l = b.finish();
//! let reparsed = parse_loop(&l.to_string()).unwrap();
//! assert_eq!(l, reparsed);
//! ```

use crate::mem::{ArrayDecl, ArrayFill, ArrayId, MemRef};
use crate::op::{CarriedInit, CmpPred, OpId, OpKind, Opcode, Operand, Operation, VectorForm};
use crate::program::{LiveIn, LiveInId, LiveOut, Loop, TripCount};
use crate::types::ScalarType;
use std::fmt;

/// A syntax or structural error from [`parse_loop`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    s: &'a str,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line, message: message.into() })
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        self.skip_ws();
        if let Some(rest) = self.s.strip_prefix(token) {
            self.s = rest;
            Ok(())
        } else {
            self.err(format!("expected `{token}` at `{}`", head(self.s)))
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if let Some(rest) = self.s.strip_prefix(token) {
            self.s = rest;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        self.s = self.s.trim_start_matches([' ', '\t']);
    }

    fn word(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let end = self
            .s
            .find(|c: char| c.is_whitespace() || ",()[]:".contains(c))
            .unwrap_or(self.s.len());
        if end == 0 {
            return self.err(format!("expected a word at `{}`", head(self.s)));
        }
        let (w, rest) = self.s.split_at(end);
        self.s = rest;
        Ok(w)
    }

    fn int<T: std::str::FromStr>(&mut self) -> Result<T, ParseError> {
        self.skip_ws();
        let end = self
            .s
            .char_indices()
            .take_while(|&(i, c)| c.is_ascii_digit() || (i == 0 && (c == '-' || c == '+')))
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let (w, rest) = self.s.split_at(end);
        match w.parse() {
            Ok(v) => {
                self.s = rest;
                Ok(v)
            }
            Err(_) => self.err(format!("expected a number at `{}`", head(self.s))),
        }
    }

    fn float(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let end = self
            .s
            .char_indices()
            .take_while(|&(i, c)| {
                c.is_ascii_digit()
                    || c == '.'
                    || c == 'e'
                    || c == 'E'
                    || ((c == '-' || c == '+') && (i == 0 || matches!(self.s.as_bytes()[i - 1], b'e' | b'E')))
                    || c == 'i' // inf
                    || c == 'n' // inf / nan
                    || c == 'f'
                    || c == 'a'
                    || c == 'N'
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let (w, rest) = self.s.split_at(end);
        match w.parse() {
            Ok(v) => {
                self.s = rest;
                Ok(v)
            }
            Err(_) => self.err(format!("expected a float at `{}`", head(self.s))),
        }
    }

    fn done(&self) -> bool {
        self.s.trim().is_empty()
    }
}

fn head(s: &str) -> &str {
    let mut end = s.len().min(24);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn parse_ty(c: &mut Cursor<'_>) -> Result<ScalarType, ParseError> {
    match c.word()? {
        "f64" => Ok(ScalarType::F64),
        "i64" => Ok(ScalarType::I64),
        other => c.err(format!("unknown type `{other}`")),
    }
}

fn kind_from_mnemonic(c: &Cursor<'_>, w: &str) -> Result<OpKind, ParseError> {
    Ok(match w {
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        "add" => OpKind::Add,
        "sub" => OpKind::Sub,
        "mul" => OpKind::Mul,
        "div" => OpKind::Div,
        "min" => OpKind::Min,
        "max" => OpKind::Max,
        "neg" => OpKind::Neg,
        "abs" => OpKind::Abs,
        "sqrt" => OpKind::Sqrt,
        "copy" => OpKind::Copy,
        "merge" => OpKind::Merge,
        "pack" => OpKind::Pack,
        "extract" => OpKind::Extract,
        "cmpeq" => OpKind::Cmp(CmpPred::Eq),
        "cmpne" => OpKind::Cmp(CmpPred::Ne),
        "cmplt" => OpKind::Cmp(CmpPred::Lt),
        "cmple" => OpKind::Cmp(CmpPred::Le),
        "select" => OpKind::Select,
        other => return c.err(format!("unknown opcode `{other}`")),
    })
}

fn parse_operand(c: &mut Cursor<'_>) -> Result<Operand, ParseError> {
    c.skip_ws();
    if c.eat("%") {
        let op: u32 = c.int()?;
        let distance = if c.eat("@-") { c.int()? } else { 0 };
        Ok(Operand::Def { op: OpId(op), distance })
    } else if c.eat("$") {
        Ok(Operand::LiveIn(LiveInId(c.int()?)))
    } else if c.eat("iv*") {
        let scale: i64 = c.int()?;
        let offset: i64 = c.int()?; // printed with explicit sign
        Ok(Operand::Iv { scale, offset })
    } else if c.eat("#") {
        // Floats always carry a `.`, exponent, `inf` or `NaN`; plain
        // digit runs are integers.
        let save = c.s;
        let as_int: Result<i64, _> = c.int();
        if let Ok(v) = as_int {
            if !c.s.starts_with(['.', 'e', 'E']) {
                return Ok(Operand::ConstI(v));
            }
        }
        c.s = save;
        Ok(Operand::ConstF(c.float()?))
    } else {
        c.err(format!("expected an operand at `{}`", head(c.s)))
    }
}

fn parse_mem_ref(c: &mut Cursor<'_>) -> Result<MemRef, ParseError> {
    c.expect("@")?;
    let array: u32 = c.int()?;
    c.expect("[")?;
    let stride: i64 = c.int()?;
    c.expect("*i")?;
    let offset: i64 = c.int()?; // explicit sign
    let width = if c.eat(";w") { c.int()? } else { 1 };
    c.expect("]")?;
    Ok(MemRef { array: ArrayId(array), stride, offset, width })
}

/// Parse a loop from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax problems; the parsed loop is also
/// run through [`Loop::verify`], with violations reported the same way.
pub fn parse_loop(text: &str) -> Result<Loop, ParseError> {
    let mut l: Option<Loop> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut c = Cursor { s: trimmed, line };
        if c.eat("loop ") {
            let name = c.word()?.to_string();
            c.expect("(")?;
            c.expect("trip")?;
            let count: u64 = c.int()?;
            let compile_time_known = !c.eat("?");
            c.expect("x")?;
            let invocations: u64 = c.int()?;
            c.expect("invocations")?;
            c.expect(",")?;
            c.expect("scale")?;
            let iter_scale: u32 = c.int()?;
            let vector_width = if c.eat(",") {
                c.expect("width")?;
                c.int()?
            } else {
                1
            };
            c.expect(")")?;
            let allow_reassoc = c.eat("[reassoc]");
            let mut looop = Loop::new(name);
            looop.trip = TripCount { count, compile_time_known };
            looop.invocations = invocations;
            looop.iter_scale = iter_scale;
            looop.vector_width = vector_width;
            looop.allow_reassoc = allow_reassoc;
            l = Some(looop);
            continue;
        }
        let Some(looop) = l.as_mut() else {
            return c.err("text must start with a `loop` header");
        };
        if c.eat("array ") {
            c.expect("@")?;
            let idx: u32 = c.int()?;
            if idx as usize != looop.arrays.len() {
                return c.err("array indices must be dense and in order");
            }
            let name = c.word()?.to_string();
            c.expect(":")?;
            let ty = parse_ty(&mut c)?;
            c.expect("[")?;
            let len: u64 = c.int()?;
            c.expect("]")?;
            c.expect("align")?;
            let base_align: u64 = c.int()?;
            let iteration_private = c.eat("private");
            let fill = if c.eat("fill") {
                match c.word()? {
                    "zero" => ArrayFill::Zero,
                    "one" => ArrayFill::One,
                    "+inf" => ArrayFill::PosInf,
                    "-inf" => ArrayFill::NegInf,
                    other => return c.err(format!("unknown fill `{other}`")),
                }
            } else {
                ArrayFill::Data
            };
            looop.arrays.push(ArrayDecl {
                name,
                ty,
                len,
                base_align,
                iteration_private,
                fill,
            });
        } else if c.eat("livein ") {
            c.expect("$")?;
            let idx: u32 = c.int()?;
            if idx as usize != looop.live_ins.len() {
                return c.err("live-in indices must be dense and in order");
            }
            let name = c.word()?.to_string();
            c.expect(":")?;
            let ty = parse_ty(&mut c)?;
            looop.live_ins.push(LiveIn { name, ty });
        } else if c.eat("liveout ") {
            let name = c.word()?.to_string();
            c.expect("=")?;
            c.expect("%")?;
            let op: u32 = c.int()?;
            let mut horizontal = None;
            let mut combine = None;
            while c.eat("(") {
                let which = c.word()?.to_string();
                let mnemonic = c.word()?;
                let kind = kind_from_mnemonic(&c, mnemonic)?;
                c.expect(")")?;
                match which.as_str() {
                    "horizontal" => horizontal = Some(kind),
                    "combine" => combine = Some(kind),
                    other => return c.err(format!("unknown live-out note `{other}`")),
                }
            }
            looop.live_outs.push(LiveOut { name, op: OpId(op), horizontal, combine });
        } else if c.eat("%") {
            let id: u32 = c.int()?;
            if id as usize != looop.ops.len() {
                return c.err("op ids must be dense and in order");
            }
            c.expect("=")?;
            let mn = c.word()?;
            let (mn, form) = match mn.strip_prefix('v') {
                // `v` prefix marks the vector form, except for mnemonics
                // that genuinely start with v (none today).
                Some(rest) if !rest.is_empty() && kind_from_mnemonic(&c, rest.split('.').next().unwrap()).is_ok() => {
                    (rest, VectorForm::Vector)
                }
                _ => (mn, VectorForm::Scalar),
            };
            let (kind_s, ty_s) = mn
                .split_once('.')
                .ok_or_else(|| ParseError { line, message: format!("opcode `{mn}` missing type") })?;
            let kind = kind_from_mnemonic(&c, kind_s)?;
            let ty = match ty_s {
                "f64" => ScalarType::F64,
                "i64" => ScalarType::I64,
                other => return c.err(format!("unknown type `{other}`")),
            };
            let is_reduction = c.eat("[red]");
            let carried_init = if c.eat("[init") {
                let k = match c.word()? {
                    "one" => CarriedInit::One,
                    "+inf" => CarriedInit::PosInf,
                    "-inf" => CarriedInit::NegInf,
                    other => return c.err(format!("unknown init `{other}`")),
                };
                c.expect("]")?;
                k
            } else if is_reduction {
                CarriedInit::identity_for(kind)
            } else {
                CarriedInit::Zero
            };
            // Operands until the line ends or a memory ref starts.
            let mut operands = Vec::new();
            loop {
                c.skip_ws();
                if c.done() || c.s.starts_with('@') {
                    break;
                }
                operands.push(parse_operand(&mut c)?);
                if !c.eat(",") {
                    break;
                }
            }
            let mem = if !c.done() && {
                c.skip_ws();
                c.s.starts_with('@')
            } {
                Some(parse_mem_ref(&mut c)?)
            } else {
                None
            };
            looop.ops.push(Operation {
                id: OpId(id),
                opcode: Opcode { kind, ty, form },
                operands,
                mem,
                is_reduction,
                carried_init,
            });
        } else {
            return c.err(format!("unrecognized line `{}`", head(trimmed)));
        }
        if !c.done() {
            return c.err(format!("trailing text `{}`", head(c.s.trim())));
        }
    }
    let looop = l.ok_or(ParseError { line: 1, message: "empty input".into() })?;
    looop
        .verify()
        .map_err(|e| ParseError { line: 0, message: format!("verification failed: {e}") })?;
    Ok(looop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    fn round_trip(l: &Loop) {
        let text = l.to_string();
        let parsed = parse_loop(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(*l, parsed, "round trip of:\n{text}");
    }

    #[test]
    fn round_trips_source_loops() {
        let mut b = LoopBuilder::new("dot");
        b.trip(1000).invocations(3).allow_reassoc(true);
        let x = b.array("x", ScalarType::F64, 1024);
        let y = b.array_misaligned("y", ScalarType::F64, 1024);
        let a = b.live_in("alpha", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, -2);
        let m = b.fmul_li(a, lx);
        let s = b.fadd(m, ly);
        b.store(y, 1, 0, s);
        b.reduce_add(s);
        round_trip(&b.finish());
    }

    #[test]
    fn round_trips_constants_and_iv() {
        let mut b = LoopBuilder::new("consts");
        let x = b.array("ix", ScalarType::I64, 64);
        let iv = b.bin(OpKind::Add, ScalarType::I64, Operand::iv(), Operand::ConstI(-7));
        let f = b.bin(
            OpKind::Mul,
            ScalarType::F64,
            Operand::ConstF(2.5),
            Operand::ConstF(-0.125),
        );
        let g = b.bin(OpKind::Add, ScalarType::F64, Operand::def(f), Operand::ConstF(3.0));
        b.store(x, 1, 0, iv);
        b.live_out("gee", g);
        round_trip(&b.finish());
    }

    #[test]
    fn round_trips_recurrences_and_inits() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let r = b.recurrence(OpKind::Mul, ScalarType::F64, lx); // init one
        b.store(x, 1, 8, r);
        b.reduce(OpKind::Min, ScalarType::F64, r); // init +inf
        round_trip(&b.finish());
    }

    #[test]
    fn round_trips_cmp_and_select() {
        let mut b = LoopBuilder::new("clip");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let hi = b.live_in("hi", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let over = b.cmp(CmpPred::Lt, ScalarType::F64, Operand::LiveIn(hi), Operand::def(lx));
        let clipped = b.select(
            ScalarType::F64,
            Operand::def(over),
            Operand::LiveIn(hi),
            Operand::def(lx),
        );
        b.store(y, 1, 0, clipped);
        let l = b.finish();
        let text = l.to_string();
        assert!(text.contains("cmplt.f64"), "{text}");
        assert!(text.contains("select.f64"), "{text}");
        round_trip(&l);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_loop("loop t (trip 4 x1 invocations, scale 1)\n  bogus").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_loop("  array @0 x : f64[4] align 16").unwrap_err();
        assert!(e.message.contains("loop"));
    }

    #[test]
    fn parse_rejects_invalid_structure() {
        // References a nonexistent op: syntax fine, verification fails.
        let text = "loop t (trip 4 x1 invocations, scale 1)\n  array @0 x : f64[8] align 16\n  %0 = store.f64 %5 @0[1*i+0]";
        let e = parse_loop(text).unwrap_err();
        assert!(e.message.contains("verification failed"), "{e}");
    }
}
