//! Canonical content hashing for loops.
//!
//! [`Loop::canonical_hash`] produces a stable 128-bit fingerprint of a
//! loop (plus any caller-supplied context sections, e.g. a machine
//! description and compiler settings) suitable as a content-addressed
//! cache key. The hash is computed over the loop's canonical *display
//! form* — the exact text [`Loop`]'s `Display` emits — so it is invariant
//! under everything the display→parse round trip normalizes away
//! (insignificant whitespace, default annotations, formatting variants of
//! the same structure): `parse_loop(&l.to_string())` hashes identically
//! to `l` by construction.
//!
//! The hash function is FNV-1a/128, implemented here so the workspace
//! stays dependency-free. It is *not* cryptographic; it is a stable,
//! well-distributed fingerprint for cache addressing, where a collision
//! costs a wasted recompile check, not correctness.
//!
//! ```
//! use sv_ir::{parse_loop, LoopBuilder, ScalarType};
//!
//! let mut b = LoopBuilder::new("copy");
//! let x = b.array("x", ScalarType::F64, 16);
//! let lx = b.load(x, 1, 0);
//! b.store(x, 1, 8, lx);
//! let l = b.finish();
//!
//! let h = l.canonical_hash(&["machine-v1", "cfg-v1"]);
//! let reparsed = parse_loop(&l.to_string()).unwrap();
//! assert_eq!(h, reparsed.canonical_hash(&["machine-v1", "cfg-v1"]));
//! assert_ne!(h, l.canonical_hash(&["machine-v2", "cfg-v1"]));
//! ```

use crate::program::Loop;
use std::fmt;
use std::str::FromStr;

/// FNV-1a/128 offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a/128 prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A stable 128-bit content hash (see module docs for the contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalHash(pub u128);

impl CanonicalHash {
    /// Render as 32 lowercase hex digits (the on-disk / wire spelling).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for CanonicalHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for CanonicalHash {
    type Err = String;

    fn from_str(s: &str) -> Result<CanonicalHash, String> {
        if s.len() != 32 {
            return Err(format!("canonical hash must be 32 hex digits, got {}", s.len()));
        }
        u128::from_str_radix(s, 16)
            .map(CanonicalHash)
            .map_err(|e| format!("bad canonical hash `{s}`: {e}"))
    }
}

/// Incremental FNV-1a/128 hasher with length-delimited sections.
///
/// Sections prevent boundary ambiguity: feeding `("ab", "c")` and
/// `("a", "bc")` produce different hashes, because every section is
/// prefixed with its byte length.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u128,
}

impl Default for CanonicalHasher {
    fn default() -> CanonicalHasher {
        CanonicalHasher::new()
    }
}

impl CanonicalHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> CanonicalHasher {
        CanonicalHasher { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one length-prefixed section.
    pub fn section(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> CanonicalHash {
        CanonicalHash(self.state)
    }
}

impl Loop {
    /// The loop's canonical content hash, combined with any number of
    /// caller context sections (conventionally: a machine-description
    /// fingerprint and a compiler-configuration fingerprint, making the
    /// result a complete compile-request cache key).
    ///
    /// Stable across the display→parse round trip: the loop contributes
    /// its canonical display form, so any textual spelling that parses to
    /// this loop hashes the same.
    pub fn canonical_hash(&self, context: &[&str]) -> CanonicalHash {
        let mut h = CanonicalHasher::new();
        h.section(b"sv-ir/canonical-hash/v1");
        h.section(self.to_string().as_bytes());
        for part in context {
            h.section(part.as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::parse::parse_loop;
    use crate::types::ScalarType;

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("dot");
        b.trip(100);
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let m = b.fmul(lx, ly);
        b.reduce_add(m);
        b.finish()
    }

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a/128 of the empty input is the offset basis; "a" is a
        // published test vector.
        assert_eq!(CanonicalHasher::new().finish().0, FNV_OFFSET);
        let mut h = CanonicalHasher::new();
        h.update(b"a");
        assert_eq!(h.finish().to_hex(), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn sections_are_unambiguous() {
        let mut a = CanonicalHasher::new();
        a.section(b"ab");
        a.section(b"c");
        let mut b = CanonicalHasher::new();
        b.section(b"a");
        b.section(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_across_round_trip() {
        let l = sample();
        let r = parse_loop(&l.to_string()).unwrap();
        assert_eq!(l.canonical_hash(&[]), r.canonical_hash(&[]));
        assert_eq!(l.canonical_hash(&["m", "c"]), r.canonical_hash(&["m", "c"]));
    }

    #[test]
    fn sensitive_to_loop_and_context() {
        let l = sample();
        let mut l2 = l.clone();
        l2.trip.count += 1;
        assert_ne!(l.canonical_hash(&[]), l2.canonical_hash(&[]));
        assert_ne!(l.canonical_hash(&["a"]), l.canonical_hash(&["b"]));
        assert_ne!(l.canonical_hash(&[]), l.canonical_hash(&[""]));
    }

    #[test]
    fn hex_round_trips() {
        let h = sample().canonical_hash(&["x"]);
        let parsed: CanonicalHash = h.to_hex().parse().unwrap();
        assert_eq!(h, parsed);
        assert!("zz".parse::<CanonicalHash>().is_err());
        assert!("0".repeat(31).parse::<CanonicalHash>().is_err());
    }
}
