//! Scalar element types and register classes.

use std::fmt;

/// Element type of a value or memory cell.
///
/// The paper's evaluation operates on 64-bit data (SPEC FP with a vector
/// length of two 64-bit elements in a 128-bit vector), so the IR provides
/// exactly the two 64-bit types. Narrower types would only change the
/// vector length, which is already a free parameter of the machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 double.
    F64,
}

impl ScalarType {
    /// Size of one element in bytes.
    #[inline]
    pub fn size_bytes(self) -> u64 {
        8
    }

    /// True for [`ScalarType::F64`].
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F64)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::I64 => write!(f, "i64"),
            ScalarType::F64 => write!(f, "f64"),
        }
    }
}

/// Register class a value lives in, used for register-pressure accounting.
///
/// The paper's machine (Table 1) has four data register files: scalar
/// integer, scalar floating point, vector integer, and vector floating
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Scalar integer register file.
    ScalarInt,
    /// Scalar floating-point register file.
    ScalarFp,
    /// Vector integer register file.
    VectorInt,
    /// Vector floating-point register file.
    VectorFp,
}

impl RegClass {
    /// The register class for a value of type `ty` in scalar or vector form.
    pub fn of(ty: ScalarType, vector: bool) -> RegClass {
        match (ty.is_float(), vector) {
            (false, false) => RegClass::ScalarInt,
            (true, false) => RegClass::ScalarFp,
            (false, true) => RegClass::VectorInt,
            (true, true) => RegClass::VectorFp,
        }
    }

    /// All register classes, in a fixed order.
    pub const ALL: [RegClass; 4] = [
        RegClass::ScalarInt,
        RegClass::ScalarFp,
        RegClass::VectorInt,
        RegClass::VectorFp,
    ];
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegClass::ScalarInt => "sint",
            RegClass::ScalarFp => "sfp",
            RegClass::VectorInt => "vint",
            RegClass::VectorFp => "vfp",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_type_properties() {
        assert_eq!(ScalarType::I64.size_bytes(), 8);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
        assert!(ScalarType::F64.is_float());
        assert!(!ScalarType::I64.is_float());
        assert_eq!(ScalarType::F64.to_string(), "f64");
    }

    #[test]
    fn reg_class_of() {
        assert_eq!(RegClass::of(ScalarType::I64, false), RegClass::ScalarInt);
        assert_eq!(RegClass::of(ScalarType::F64, false), RegClass::ScalarFp);
        assert_eq!(RegClass::of(ScalarType::I64, true), RegClass::VectorInt);
        assert_eq!(RegClass::of(ScalarType::F64, true), RegClass::VectorFp);
    }

    #[test]
    fn reg_class_all_distinct() {
        for (i, a) in RegClass::ALL.iter().enumerate() {
            for b in &RegClass::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
