//! Loop statistics: op-mix summaries for reports and tooling.

use crate::op::OpKind;
use crate::program::Loop;
use std::fmt;

/// Operation-mix summary of a loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Memory reads.
    pub loads: usize,
    /// Memory writes.
    pub stores: usize,
    /// Floating-point arithmetic (including divides/square roots).
    pub fp_arith: usize,
    /// Integer arithmetic.
    pub int_arith: usize,
    /// Divides and square roots (already counted in the arith fields).
    pub long_latency: usize,
    /// Vector-form operations.
    pub vector_ops: usize,
    /// Realignment merges.
    pub merges: usize,
    /// Reduction accumulations.
    pub reductions: usize,
    /// Operations with loop-carried register operands (excluding
    /// reduction self-references).
    pub carried_uses: usize,
}

impl LoopStats {
    /// Total operations summarized.
    pub fn total(&self) -> usize {
        self.loads + self.stores + self.fp_arith + self.int_arith + self.merges
    }
}

impl fmt::Display for LoopStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops: {} loads, {} stores, {} fp, {} int, {} long-latency, \
             {} vector, {} merges, {} reductions, {} carried uses",
            self.total(),
            self.loads,
            self.stores,
            self.fp_arith,
            self.int_arith,
            self.long_latency,
            self.vector_ops,
            self.merges,
            self.reductions,
            self.carried_uses
        )
    }
}

impl Loop {
    /// Summarize the loop's operation mix.
    ///
    /// ```
    /// use sv_ir::{LoopBuilder, ScalarType};
    ///
    /// let mut b = LoopBuilder::new("dot");
    /// let x = b.array("x", ScalarType::F64, 64);
    /// let lx = b.load(x, 1, 0);
    /// let sq = b.fmul(lx, lx);
    /// b.reduce_add(sq);
    /// let s = b.finish().stats();
    /// assert_eq!((s.loads, s.fp_arith, s.reductions), (1, 2, 1));
    /// ```
    pub fn stats(&self) -> LoopStats {
        let mut s = LoopStats::default();
        for op in &self.ops {
            match op.opcode.kind {
                OpKind::Load => s.loads += 1,
                OpKind::Store => s.stores += 1,
                OpKind::Merge => s.merges += 1,
                OpKind::Pack | OpKind::Extract => {}
                kind => {
                    if op.opcode.ty.is_float() {
                        s.fp_arith += 1;
                    } else {
                        s.int_arith += 1;
                    }
                    if matches!(kind, OpKind::Div | OpKind::Sqrt) {
                        s.long_latency += 1;
                    }
                }
            }
            if op.opcode.is_vector() {
                s.vector_ops += 1;
            }
            if op.is_reduction {
                s.reductions += 1;
            }
            if op
                .def_uses()
                .any(|(p, d)| d >= 1 && !(op.is_reduction && p == op.id))
            {
                s.carried_uses += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::types::ScalarType;

    #[test]
    fn counts_every_category() {
        let mut b = LoopBuilder::new("mix");
        let x = b.array("x", ScalarType::F64, 64);
        let ix = b.array("ix", ScalarType::I64, 64);
        let lx = b.load(x, 1, 0);
        let li = b.load(ix, 1, 0);
        let d = b.fdiv(lx, lx);
        let q = b.imul(li, li);
        let r = b.recurrence(OpKind::Add, ScalarType::F64, d);
        b.store(x, 1, 8, r);
        b.store(ix, 1, 8, q);
        let s = b.finish().stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 2);
        assert_eq!(s.fp_arith, 2); // div + recurrence add
        assert_eq!(s.int_arith, 1);
        assert_eq!(s.long_latency, 1);
        assert_eq!(s.carried_uses, 1); // the recurrence
        assert_eq!(s.reductions, 0);
        assert_eq!(s.vector_ops, 0);
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        let mut b = LoopBuilder::new("d");
        let x = b.array("x", ScalarType::F64, 8);
        let lx = b.load(x, 1, 0);
        b.store(x, 1, 4, lx);
        let text = b.finish().stats().to_string();
        assert!(text.contains("1 loads"));
        assert!(text.contains("1 stores"));
    }
}
