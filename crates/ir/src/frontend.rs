//! A small expression frontend: loops as arithmetic statements.
//!
//! The low-level text format (`parse_loop`) mirrors the IR one operation
//! per line; this frontend accepts the loop the way a programmer thinks
//! about it and lowers it through [`LoopBuilder`]:
//!
//! ```text
//! loop daxpy 4096 x10 {
//!     y[i] = a * x[i] + y[i];
//!     s += x[i] * y[i];
//! }
//! ```
//!
//! * `name[i±k]`, `name[c*i±k]`, `name[k]` are array references (arrays
//!   are declared implicitly, sized to the trip count plus margin);
//! * bare identifiers that are never assigned become `f64` live-ins;
//! * `s += expr;` / `s *= expr;` declare sum/product reductions
//!   (live-outs named `s`);
//! * scalar variables assigned with `=` are per-iteration values; reading
//!   one *before* its assignment in the body (including in its own
//!   right-hand side) reads the previous iteration's value, so
//!   `t = 0.5*t + x[i];` builds a first-order recurrence;
//! * `sqrt(e)`, `abs(e)`, `min(a,b)`, `max(a,b)` map to the matching
//!   opcodes; `out t;` marks a scalar as a live-out.
//!
//! ```
//! use sv_ir::loop_from_source;
//!
//! let l = loop_from_source(
//!     "loop triad 1000 { z[i] = a * x[i] + y[i]; }",
//! )
//! .unwrap();
//! assert_eq!(l.name, "triad");
//! assert_eq!(l.ops().len(), 5); // 2 loads, mul, add, store
//! ```

use crate::builder::LoopBuilder;
use crate::op::{OpId, OpKind, Operand};
use crate::parse::ParseError;
use crate::program::Loop;
use crate::types::ScalarType;
use std::collections::HashMap;

/// Tokenizer for the expression syntax.
struct Lexer<'a> {
    s: &'a [u8],
    pos: usize,
    text: &'a str,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Int(u64),
    Sym(char),
    PlusEq,
    StarEq,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Lexer<'a> {
        Lexer { s: text.as_bytes(), pos: 0, text }
    }

    fn line(&self) -> usize {
        self.text[..self.pos].matches('\n').count() + 1
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() {
            match self.s[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < self.s.len() && self.s[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        let Some(&c) = self.s.get(self.pos) else { return Ok(Tok::Eof) };
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self
                .s
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                self.pos += 1;
            }
            return Ok(Tok::Ident(self.text[start..self.pos].to_string()));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            let mut float = false;
            while let Some(&c) = self.s.get(self.pos) {
                if c.is_ascii_digit() {
                    self.pos += 1;
                } else if c == b'.' || c == b'e' || c == b'E' {
                    float = true;
                    self.pos += 1;
                    if matches!(self.s.get(self.pos), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                } else {
                    break;
                }
            }
            let w = &self.text[start..self.pos];
            return if float {
                w.parse()
                    .map(Tok::Num)
                    .or_else(|_| self.err(format!("bad number `{w}`")))
            } else {
                w.parse()
                    .map(Tok::Int)
                    .or_else(|_| self.err(format!("bad integer `{w}`")))
            };
        }
        if c == b'+' && self.s.get(self.pos + 1) == Some(&b'=') {
            self.pos += 2;
            return Ok(Tok::PlusEq);
        }
        if c == b'*' && self.s.get(self.pos + 1) == Some(&b'=') {
            self.pos += 2;
            return Ok(Tok::StarEq);
        }
        self.pos += 1;
        Ok(Tok::Sym(c as char))
    }

    fn peek(&mut self) -> Result<Tok, ParseError> {
        let save = self.pos;
        let t = self.next();
        self.pos = save;
        t
    }

    fn expect_sym(&mut self, want: char) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Sym(c) if c == want => Ok(()),
            other => self.err(format!("expected `{want}`, found {other:?}")),
        }
    }
}

/// An affine array index `stride·i + offset`.
#[derive(Debug, Clone, Copy)]
struct Index {
    stride: i64,
    offset: i64,
}

#[derive(Debug, Clone)]
enum Expr {
    Const(f64),
    Scalar(String),
    ArrayRef(String, Index),
    Unary(OpKind, Box<Expr>),
    Binary(OpKind, Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone)]
enum Stmt {
    StoreArray(String, Index, Expr),
    AssignScalar(String, Expr),
    Reduce(String, OpKind, Expr),
    Out(String),
}

fn parse_index(lx: &mut Lexer<'_>) -> Result<Index, ParseError> {
    // Forms: i | i+k | i-k | c*i | c*i+k | c*i-k | k
    lx.expect_sym('[')?;
    let mut stride = 0i64;
    let mut offset = 0i64;
    match lx.next()? {
        Tok::Ident(id) if id == "i" => stride = 1,
        Tok::Int(c) => {
            if let Tok::Sym('*') = lx.peek()? {
                lx.next()?; // '*'
                match lx.next()? {
                    Tok::Ident(id) if id == "i" => stride = c as i64,
                    other => return lx.err(format!("expected `i`, found {other:?}")),
                }
            } else {
                offset = c as i64; // invariant index
            }
        }
        other => return lx.err(format!("bad index start {other:?}")),
    }
    loop {
        match lx.peek()? {
            Tok::Sym('+') => {
                lx.next()?;
                match lx.next()? {
                    Tok::Int(k) => offset += k as i64,
                    other => return lx.err(format!("expected offset, found {other:?}")),
                }
            }
            Tok::Sym('-') => {
                lx.next()?;
                match lx.next()? {
                    Tok::Int(k) => offset -= k as i64,
                    other => return lx.err(format!("expected offset, found {other:?}")),
                }
            }
            _ => break,
        }
    }
    lx.expect_sym(']')?;
    Ok(Index { stride, offset })
}

fn parse_factor(lx: &mut Lexer<'_>) -> Result<Expr, ParseError> {
    match lx.next()? {
        Tok::Num(v) => Ok(Expr::Const(v)),
        Tok::Int(v) => Ok(Expr::Const(v as f64)),
        Tok::Sym('(') => {
            let e = parse_expr(lx)?;
            lx.expect_sym(')')?;
            Ok(e)
        }
        Tok::Sym('-') => Ok(Expr::Unary(OpKind::Neg, Box::new(parse_factor(lx)?))),
        Tok::Ident(name) => match lx.peek()? {
            Tok::Sym('[') => {
                let idx = parse_index(lx)?;
                Ok(Expr::ArrayRef(name, idx))
            }
            Tok::Sym('(') => {
                lx.next()?; // '('
                let kind = match name.as_str() {
                    "sqrt" => OpKind::Sqrt,
                    "abs" => OpKind::Abs,
                    "min" => OpKind::Min,
                    "max" => OpKind::Max,
                    other => return lx.err(format!("unknown function `{other}`")),
                };
                let a = parse_expr(lx)?;
                let e = if matches!(kind, OpKind::Min | OpKind::Max) {
                    lx.expect_sym(',')?;
                    let b = parse_expr(lx)?;
                    Expr::Binary(kind, Box::new(a), Box::new(b))
                } else {
                    Expr::Unary(kind, Box::new(a))
                };
                lx.expect_sym(')')?;
                Ok(e)
            }
            _ => Ok(Expr::Scalar(name)),
        },
        other => lx.err(format!("expected a factor, found {other:?}")),
    }
}

fn parse_term(lx: &mut Lexer<'_>) -> Result<Expr, ParseError> {
    let mut e = parse_factor(lx)?;
    loop {
        match lx.peek()? {
            Tok::Sym('*') => {
                lx.next()?;
                e = Expr::Binary(OpKind::Mul, Box::new(e), Box::new(parse_factor(lx)?));
            }
            Tok::Sym('/') => {
                lx.next()?;
                e = Expr::Binary(OpKind::Div, Box::new(e), Box::new(parse_factor(lx)?));
            }
            _ => return Ok(e),
        }
    }
}

fn parse_expr(lx: &mut Lexer<'_>) -> Result<Expr, ParseError> {
    let mut e = parse_term(lx)?;
    loop {
        match lx.peek()? {
            Tok::Sym('+') => {
                lx.next()?;
                e = Expr::Binary(OpKind::Add, Box::new(e), Box::new(parse_term(lx)?));
            }
            Tok::Sym('-') => {
                lx.next()?;
                e = Expr::Binary(OpKind::Sub, Box::new(e), Box::new(parse_term(lx)?));
            }
            _ => return Ok(e),
        }
    }
}

/// Emission context: maps names to IR entities.
struct Emit<'a> {
    b: &'a mut LoopBuilder,
    arrays: HashMap<String, crate::mem::ArrayId>,
    live_ins: HashMap<String, crate::program::LiveInId>,
    /// Current defining op of each scalar variable (this iteration).
    scalars: HashMap<String, OpId>,
    /// Scalars assigned anywhere in the body (so earlier reads are carried).
    assigned: std::collections::HashSet<String>,
    array_len: u64,
}

impl<'a> Emit<'a> {
    fn array(&mut self, name: &str) -> crate::mem::ArrayId {
        if let Some(&a) = self.arrays.get(name) {
            return a;
        }
        let id = self.b.array(name, ScalarType::F64, self.array_len);
        self.arrays.insert(name.to_string(), id);
        id
    }

    /// Leaf expressions only; compound nodes and carried scalar reads are
    /// handled by [`emit_with_holes`].
    fn leaf(&mut self, e: &Expr, line: usize) -> Result<Operand, ParseError> {
        Ok(match e {
            Expr::Const(v) => Operand::ConstF(*v),
            Expr::Scalar(name) => {
                if let Some(&def) = self.scalars.get(name) {
                    Operand::def(def)
                } else {
                    debug_assert!(!self.assigned.contains(name));
                    let id = *self.live_ins.entry(name.clone()).or_insert_with(|| {
                        self.b.live_in(name, ScalarType::F64)
                    });
                    Operand::LiveIn(id)
                }
            }
            Expr::ArrayRef(name, idx) => {
                let a = self.array(name);
                Operand::def(self.b.load(a, idx.stride, idx.offset))
            }
            Expr::Unary(..) | Expr::Binary(..) => {
                return Err(ParseError {
                    line,
                    message: "internal: compound node reached leaf emitter".into(),
                })
            }
        })
    }

    fn push_arith(&mut self, kind: OpKind, operands: Vec<Operand>) -> OpId {
        self.b.push(
            crate::op::Opcode::scalar(kind, ScalarType::F64),
            operands,
            None,
            false,
        )
    }
}

/// Build a [`Loop`] from the expression syntax (see the module docs).
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number for syntax problems and
/// semantic mistakes (unknown functions, stores to scalars, …).
pub fn loop_from_source(text: &str) -> Result<Loop, ParseError> {
    let mut lx = Lexer::new(text);
    match lx.next()? {
        Tok::Ident(kw) if kw == "loop" => {}
        other => return lx.err(format!("expected `loop`, found {other:?}")),
    }
    // Optional name, trip, optional "xN" invocations.
    let mut name = "anonymous".to_string();
    let trip = loop {
        match lx.next()? {
            Tok::Ident(id) => name = id,
            Tok::Int(n) => break n,
            other => return lx.err(format!("expected a trip count, found {other:?}")),
        }
    };
    let mut invocations = 1;
    if let Tok::Ident(x) = lx.peek()? {
        if let Some(n) = x.strip_prefix('x') {
            if let Ok(v) = n.parse() {
                invocations = v;
                lx.next()?;
            }
        }
    }
    lx.expect_sym('{')?;

    // Parse all statements first (so forward scalar reads are known).
    let mut stmts = Vec::new();
    loop {
        match lx.peek()? {
            Tok::Sym('}') => {
                lx.next()?;
                break;
            }
            Tok::Eof => return lx.err("unterminated loop body"),
            _ => {}
        }
        let line = lx.line();
        match lx.next()? {
            Tok::Ident(kw) if kw == "out" => {
                let Tok::Ident(v) = lx.next()? else {
                    return lx.err("expected a scalar name after `out`");
                };
                lx.expect_sym(';')?;
                stmts.push((line, Stmt::Out(v)));
            }
            Tok::Ident(name) => match lx.peek()? {
                Tok::Sym('[') => {
                    let idx = parse_index(&mut lx)?;
                    lx.expect_sym('=')?;
                    let e = parse_expr(&mut lx)?;
                    lx.expect_sym(';')?;
                    stmts.push((line, Stmt::StoreArray(name, idx, e)));
                }
                Tok::PlusEq => {
                    lx.next()?;
                    let e = parse_expr(&mut lx)?;
                    lx.expect_sym(';')?;
                    stmts.push((line, Stmt::Reduce(name, OpKind::Add, e)));
                }
                Tok::StarEq => {
                    lx.next()?;
                    let e = parse_expr(&mut lx)?;
                    lx.expect_sym(';')?;
                    stmts.push((line, Stmt::Reduce(name, OpKind::Mul, e)));
                }
                Tok::Sym('=') => {
                    lx.next()?;
                    let e = parse_expr(&mut lx)?;
                    lx.expect_sym(';')?;
                    stmts.push((line, Stmt::AssignScalar(name, e)));
                }
                other => return lx.err(format!("unexpected {other:?} after `{name}`")),
            },
            other => return lx.err(format!("expected a statement, found {other:?}")),
        }
    }

    // Emit, patching carried scalar reads in a second pass.
    let mut builder = LoopBuilder::new(name);
    builder.trip(trip).invocations(invocations);
    let mut emit = Emit {
        b: &mut builder,
        arrays: HashMap::new(),
        live_ins: HashMap::new(),
        scalars: HashMap::new(),
        assigned: stmts
            .iter()
            .filter_map(|(_, s)| match s {
                Stmt::AssignScalar(n, _) => Some(n.clone()),
                _ => None,
            })
            .collect(),
        array_len: trip + 64,
    };
    // Carried reads discovered during emission: (op hole, variable).
    let mut carried_holes: Vec<(OpId, usize, String)> = Vec::new();
    let mut outs: Vec<(usize, String)> = Vec::new();

    for (line, stmt) in &stmts {
        match stmt {
            Stmt::StoreArray(name, idx, e) => {
                let v = emit_with_holes(&mut emit, e, *line, &mut carried_holes)?;
                let a = emit.array(name);
                let id = OpId(emit.b.as_loop().ops().len() as u32);
                emit.b.push(
                    crate::op::Opcode::scalar(OpKind::Store, ScalarType::F64),
                    vec![v],
                    Some(crate::mem::MemRef::scalar(a, idx.stride, idx.offset)),
                    false,
                );
                let _ = id;
            }
            Stmt::AssignScalar(name, e) => {
                let v = emit_with_holes(&mut emit, e, *line, &mut carried_holes)?;
                // The variable's defining op: the expression root when it
                // is a fresh operation, else a copy to give carried
                // references a stable id.
                let id = match v {
                    Operand::Def { op, distance: 0 } => op,
                    other => emit.push_arith(OpKind::Copy, vec![other]),
                };
                emit.scalars.insert(name.clone(), id);
            }
            Stmt::Reduce(name, kind, e) => {
                let v = emit_with_holes(&mut emit, e, *line, &mut carried_holes)?;
                let vv = match v {
                    Operand::Def { op, distance: 0 } => op,
                    other => emit.push_arith(OpKind::Copy, vec![other]),
                };
                let id = emit.b.reduce(*kind, ScalarType::F64, vv);
                // Rename the auto live-out to the variable name.
                let lo = emit.b.as_loop().live_outs.len() - 1;
                outs.push((lo, name.clone()));
                let _ = id;
            }
            Stmt::Out(name) => {
                let Some(&def) = emit.scalars.get(name) else {
                    return Err(ParseError {
                        line: *line,
                        message: format!("`out {name}` before any assignment"),
                    });
                };
                emit.b.live_out(name, def);
            }
        }
    }

    let scalars = emit.scalars.clone();
    let mut l = builder.finish_unchecked();
    // Patch carried reads now that every scalar's defining op is known.
    for (op, slot, var) in carried_holes {
        let Some(&def) = scalars.get(&var) else {
            return Err(ParseError {
                line: 0,
                message: format!("scalar `{var}` read but never assigned"),
            });
        };
        l.ops[op.index()].operands[slot] = Operand::carried(def, 1);
    }
    for (lo, name) in outs {
        l.live_outs[lo].name = name;
    }
    l.verify().map_err(|e| ParseError {
        line: 0,
        message: format!("frontend produced an invalid loop: {e}"),
    })?;
    Ok(l)
}

/// Emit an expression; carried scalar reads become `ConstF(0)` holes whose
/// positions are recorded for the patch pass.
fn emit_with_holes(
    emit: &mut Emit<'_>,
    e: &Expr,
    line: usize,
    holes: &mut Vec<(OpId, usize, String)>,
) -> Result<Operand, ParseError> {
    match e {
        Expr::Unary(kind, a) => {
            let oa = emit_with_holes(emit, a, line, holes)?;
            Ok(Operand::def(emit.push_arith(*kind, vec![oa])))
        }
        Expr::Binary(kind, a, b) => {
            let oa = emit_with_holes(emit, a, line, holes)?;
            let ob = emit_with_holes(emit, b, line, holes)?;
            Ok(Operand::def(emit.push_arith(*kind, vec![oa, ob])))
        }
        Expr::Scalar(name)
            if emit.assigned.contains(name) && !emit.scalars.contains_key(name) =>
        {
            // Carried read: emit a copy with a hole operand.
            let id = emit.push_arith(OpKind::Copy, vec![Operand::ConstF(0.0)]);
            holes.push((id, 0, name.clone()));
            Ok(Operand::def(id))
        }
        other => emit.leaf(other, line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daxpy_lowers_cleanly() {
        let l = loop_from_source("loop daxpy 4096 x10 { y[i] = a * x[i] + y[i]; }")
            .unwrap();
        assert_eq!(l.name, "daxpy");
        assert_eq!(l.trip.count, 4096);
        assert_eq!(l.invocations, 10);
        assert_eq!(l.live_ins.len(), 1);
        assert_eq!(l.arrays.len(), 2);
        let stats = l.stats();
        assert_eq!((stats.loads, stats.stores, stats.fp_arith), (2, 1, 2));
    }

    #[test]
    fn reductions_become_live_outs() {
        let l = loop_from_source("loop dot 100 { s += x[i] * y[i]; }").unwrap();
        assert_eq!(l.live_outs.len(), 1);
        assert_eq!(l.live_outs[0].name, "s");
        assert!(l.ops()[l.live_outs[0].op.index()].is_reduction);
    }

    #[test]
    fn recurrences_read_the_previous_iteration() {
        let l = loop_from_source("loop iir 64 { t = 0.5 * t + x[i]; out t; }").unwrap();
        // Some op reads t's defining copy at distance 1.
        let def = l.live_outs.iter().find(|lo| lo.name == "t").unwrap().op;
        let carried = l
            .ops()
            .iter()
            .any(|o| o.operands.iter().any(|op| op.def_op() == Some((def, 1))));
        assert!(carried, "{l}");
    }

    #[test]
    fn functions_and_indices() {
        let l = loop_from_source(
            "loop f 32 { y[2*i+1] = sqrt(abs(x[i-1])) + min(x[i], c); }",
        )
        .unwrap();
        let store = l.ops().iter().find(|o| o.opcode.kind == OpKind::Store).unwrap();
        assert_eq!(store.mem_ref().stride, 2);
        assert_eq!(store.mem_ref().offset, 1);
        assert!(l.ops().iter().any(|o| o.opcode.kind == OpKind::Sqrt));
        assert!(l.ops().iter().any(|o| o.opcode.kind == OpKind::Min));
        let load = l.ops().iter().find(|o| o.opcode.kind == OpKind::Load).unwrap();
        assert_eq!(load.mem_ref().offset, -1);
    }

    #[test]
    fn errors_report_lines() {
        let e = loop_from_source("loop t 8 {\n  y[i] = frobnicate(x[i]);\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = loop_from_source("loop t 8 { y[i] = q; out q; }").unwrap_err();
        assert!(e.message.contains('q'));
    }

    #[test]
    fn comments_and_whitespace() {
        let l = loop_from_source(
            "# saxpy with comments\nloop s 10 {\n  # the statement\n  y[i] = 2.0 * x[i];\n}",
        )
        .unwrap();
        assert_eq!(l.trip.count, 10);
    }
}
