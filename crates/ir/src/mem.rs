//! Arrays and affine memory references.

use crate::types::ScalarType;
use std::fmt;

/// Initial contents of an array in the functional simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrayFill {
    /// Deterministic pseudo-random data keyed by `(array, element)` — the
    /// default for program arrays, so source and transformed loops see the
    /// same inputs.
    #[default]
    Data,
    /// All zeros (additive-identity pre-history for scalar expansion).
    Zero,
    /// All ones (multiplicative identity).
    One,
    /// All +∞ (min identity).
    PosInf,
    /// All −∞ (max identity).
    NegInf,
}

/// Identifier of an array declared in a [`crate::Loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// An array (or scalar-expansion temporary, or communication buffer)
/// referenced by the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Human-readable name, used only for display.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Number of elements. The functional simulator allocates this many
    /// cells; dependence analysis does not use it.
    pub len: u64,
    /// Base alignment of element 0 in bytes. Vector references are aligned
    /// when `base_align` is a multiple of the vector width **and** the
    /// reference's element offset lands on a vector boundary.
    pub base_align: u64,
    /// Marks scalar↔vector *communication slots*. Stores and loads on such
    /// an array still carry an intra-iteration flow dependence, but
    /// cross-iteration anti/output dependences are ignored by analysis:
    /// the slots are renamed per pipeline stage (rotating spill locations /
    /// modulo variable expansion), as in the paper's Trimaran backend.
    pub iteration_private: bool,
    /// Initial contents in the functional simulator.
    pub fill: ArrayFill,
}

impl ArrayDecl {
    /// A plain data array of `len` elements with 16-byte base alignment.
    pub fn plain(name: impl Into<String>, ty: ScalarType, len: u64) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            ty,
            len,
            base_align: 16,
            iteration_private: false,
            fill: ArrayFill::Data,
        }
    }
}

/// An affine memory reference `array[stride * i + offset]`, where `i` is the
/// canonical induction variable counting iterations of the loop the
/// reference appears in, and `width` consecutive elements are accessed.
///
/// Scalar loads/stores have `width == 1`; a vector memory operation over
/// vector length *k* has `width == k`. Dependence analysis treats a
/// reference as touching elements `stride*i + offset .. stride*i + offset + width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The array being accessed.
    pub array: ArrayId,
    /// Elements advanced per loop iteration.
    pub stride: i64,
    /// Constant element offset.
    pub offset: i64,
    /// Number of consecutive elements accessed (1 for scalar refs).
    pub width: u32,
}

impl MemRef {
    /// A scalar reference `array[stride*i + offset]`.
    pub fn scalar(array: ArrayId, stride: i64, offset: i64) -> MemRef {
        MemRef { array, stride, offset, width: 1 }
    }

    /// The element index touched at iteration `i`, lowest element of the
    /// accessed window.
    #[inline]
    pub fn first_element(&self, i: i64) -> i64 {
        self.stride * i + self.offset
    }

    /// True when the reference advances one element per iteration, the
    /// pattern required for vector memory operations on machines without
    /// scatter/gather support (such as the paper's).
    #[inline]
    pub fn unit_stride(&self) -> bool {
        self.stride == 1
    }

    /// True when the reference does not move with the loop (loop-invariant
    /// address).
    #[inline]
    pub fn invariant(&self) -> bool {
        self.stride == 0
    }

    /// Widened copy of this reference covering `k` elements starting at the
    /// same first element (used when vectorizing a unit-stride reference:
    /// the transformed loop advances `k` elements per iteration).
    pub fn widened(&self, k: u32) -> MemRef {
        MemRef { width: k, ..*self }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}*i{:+}", self.array, self.stride, self.offset)?;
        if self.width > 1 {
            write!(f, " ;w{}", self.width)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ref_basics() {
        let r = MemRef::scalar(ArrayId(3), 2, -1);
        assert_eq!(r.width, 1);
        assert_eq!(r.first_element(5), 9);
        assert!(!r.unit_stride());
        assert!(!r.invariant());
    }

    #[test]
    fn invariant_and_unit_stride() {
        assert!(MemRef::scalar(ArrayId(0), 0, 7).invariant());
        assert!(MemRef::scalar(ArrayId(0), 1, 0).unit_stride());
    }

    #[test]
    fn widened_keeps_placement() {
        let r = MemRef::scalar(ArrayId(1), 1, 4).widened(2);
        assert_eq!(r.width, 2);
        assert_eq!(r.first_element(0), 4);
    }

    #[test]
    fn display_forms() {
        let r = MemRef::scalar(ArrayId(1), 1, 4);
        assert_eq!(r.to_string(), "@1[1*i+4]");
        assert_eq!(r.widened(2).to_string(), "@1[1*i+4 ;w2]");
    }
}
