//! `svd` — the selective-vectorization compilation daemon.
//!
//! Serves the newline-delimited JSON protocol (see `sv_serve::proto`)
//! over stdin/stdout by default, or over TCP with `--tcp ADDR`. Every
//! request flows through the bounded batching queue onto the
//! deterministic worker pool, fronted by the two-tier compilation cache.
//!
//! ```text
//! svd [--tcp ADDR] [--jobs N] [--batch-max N] [--flush-ms N]
//!     [--queue-cap N] [--mem-entries N] [--mem-bytes N] [--disk DIR]
//!     [--machines DIR] [--faults SPEC] [--fault-seed N]
//! ```
//!
//! `--machines DIR` loads every `*.spec`/`*.mspec` file in `DIR` into
//! the machine registry next to the builtin `paper`/`figure1` entries;
//! each registers under the `name` its spec declares, and name
//! collisions abort startup. The `machines` verb lists the live
//! registry with canonical hashes.
//!
//! `--faults SPEC` arms seeded chaos fault injection (for soak testing a
//! deployment-shaped daemon, never production): `SPEC` is the
//! `key=value,...` grammar of `sv_serve::faults::FaultConfig::parse`,
//! e.g. `--faults soak` or `--faults disk_read=0.1,drainer_panic=0.05`.
//! One [`sv_serve::FaultPlan`] seeded by `--fault-seed` (default 0)
//! drives the cache, the compile path and the drainer, so a failing run
//! replays from its seed.
//!
//! Examples:
//!
//! ```text
//! $ echo '{"verb":"compile","id":1,"loop":"..."}' | svd --disk /tmp/svc
//! $ svd --tcp 127.0.0.1:7199 --jobs 8 --machines examples/machines &
//! ```
//!
//! Exit is triggered by the `shutdown` verb or stdin EOF; either way the
//! queue drains fully before the process ends.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use sv_core::CacheConfig;
use sv_machine::MachineRegistry;
use sv_serve::{parse_request, BatchConfig, Batcher, FaultConfig, FaultPlan, ServeService, Sink};

struct Options {
    tcp: Option<String>,
    batch: BatchConfig,
    cache: CacheConfig,
    machines_dir: Option<PathBuf>,
    faults: Option<FaultConfig>,
    fault_seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: svd [--tcp ADDR] [--jobs N] [--batch-max N] [--flush-ms N] \
         [--queue-cap N] [--mem-entries N] [--mem-bytes N] [--disk DIR] \
         [--machines DIR] [--faults SPEC] [--fault-seed N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        tcp: None,
        batch: BatchConfig { jobs: sv_core::parallel::default_jobs(), ..BatchConfig::default() },
        cache: CacheConfig::default(),
        machines_dir: None,
        faults: None,
        fault_seed: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("svd: {name} needs a value");
                usage()
            })
        };
        let num = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("svd: {name} wants an unsigned integer, got `{v}`");
                usage()
            })
        };
        match a.as_str() {
            "--tcp" => opts.tcp = Some(val("--tcp")),
            "--jobs" => opts.batch.jobs = num("--jobs", val("--jobs")).max(1),
            "--batch-max" => opts.batch.batch_max = num("--batch-max", val("--batch-max")).max(1),
            "--flush-ms" => opts.batch.flush_ms = num("--flush-ms", val("--flush-ms")) as u64,
            "--queue-cap" => opts.batch.queue_cap = num("--queue-cap", val("--queue-cap")).max(1),
            "--mem-entries" => opts.cache.mem_entries = num("--mem-entries", val("--mem-entries")),
            "--mem-bytes" => opts.cache.mem_bytes = num("--mem-bytes", val("--mem-bytes")),
            "--disk" => opts.cache.disk_dir = Some(PathBuf::from(val("--disk"))),
            "--machines" => opts.machines_dir = Some(PathBuf::from(val("--machines"))),
            "--faults" => {
                let spec = val("--faults");
                opts.faults = Some(FaultConfig::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("svd: bad --faults spec: {e}");
                    usage()
                }));
            }
            "--fault-seed" => {
                opts.fault_seed = num("--fault-seed", val("--fault-seed")) as u64
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("svd: unknown flag `{other}`");
                usage()
            }
        }
    }
    opts
}

/// Read request lines from `input`, submitting each to the batcher;
/// admission failures (parse, overload, shutdown) are answered
/// immediately on `sink` without occupying the queue.
fn serve_lines(input: impl BufRead, batcher: &Batcher, sink: &Sink) {
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match parse_request(&line) {
            Ok(req) => {
                let id = req.id();
                batcher.submit(req, Arc::clone(sink)).err().map(|e| (id, e))
            }
            Err((id, e)) => Some((id, e)),
        };
        if let Some((id, e)) = outcome {
            let mut w = sink.lock().expect("sink poisoned");
            let _ = writeln!(w, "{}", sv_serve::proto::error_response(id, &e));
            let _ = w.flush();
        }
    }
}

fn serve_stdio(batcher: Batcher) -> Result<(), sv_serve::ServeError> {
    let sink: Sink = Arc::new(Mutex::new(std::io::stdout()));
    serve_lines(std::io::stdin().lock(), &batcher, &sink);
    batcher.close();
    batcher.join()
}

fn serve_tcp(addr: &str, batcher: Batcher) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    eprintln!("svd: listening on {}", listener.local_addr()?);
    let batcher = Arc::new(batcher);
    let mut conns = Vec::new();
    // Poll so the accept loop can notice a protocol-initiated shutdown.
    while !batcher.is_closed() {
        match listener.accept() {
            Ok((stream, peer)) => {
                let reader = stream.try_clone()?;
                let sink: Sink = Arc::new(Mutex::new(stream));
                let b = Arc::clone(&batcher);
                conns.push(
                    std::thread::Builder::new()
                        .name(format!("sv-serve-conn-{peer}"))
                        .spawn(move || serve_lines(BufReader::new(reader), &b, &sink))?,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    drop(listener);
    // Finish answering already-connected clients, then drain the queue.
    for c in conns {
        let _ = c.join();
    }
    match Arc::try_unwrap(batcher) {
        Ok(b) => b.join().map_err(|e| std::io::Error::other(e.to_string())),
        Err(_) => unreachable!("all connection threads joined"),
    }
}

fn main() -> ExitCode {
    let mut opts = parse_args();
    let mut registry = MachineRegistry::builtin();
    if let Some(dir) = &opts.machines_dir {
        match registry.load_dir(dir) {
            Ok(n) => eprintln!("svd: loaded {n} machine(s) from {}", dir.display()),
            Err(e) => {
                eprintln!("svd: cannot load machines: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // One seeded plan drives every layer, so a chaos run replays exactly.
    let plan = opts.faults.take().map(|cfg| {
        eprintln!("svd: chaos fault injection armed (seed {})", opts.fault_seed);
        Arc::new(FaultPlan::new(opts.fault_seed, cfg))
    });
    if let Some(p) = &plan {
        opts.cache.faults = Some(Arc::clone(p) as _);
    }
    let svc = match ServeService::with_registry(opts.cache, registry) {
        Ok(mut s) => {
            if let Some(p) = &plan {
                s.set_faults(Arc::clone(p));
            }
            Arc::new(s)
        }
        Err(e) => {
            eprintln!("svd: cannot open cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    let batcher = Batcher::with_faults(svc, opts.batch, plan);
    let outcome = match opts.tcp {
        None => serve_stdio(batcher).map_err(|e| std::io::Error::other(e.to_string())),
        Some(addr) => serve_tcp(&addr, batcher),
    };
    if let Err(e) = outcome {
        eprintln!("svd: server failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
