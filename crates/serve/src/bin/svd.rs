//! `svd` — the selective-vectorization compilation daemon.
//!
//! Serves the newline-delimited JSON protocol (see `sv_serve::proto`)
//! over stdin/stdout by default, or over TCP with `--tcp ADDR` (a
//! multi-client accept loop: every connection gets its own weighted-fair
//! client identity, bounded by `--max-clients`). Every request flows
//! through the bounded batching queue onto the deterministic worker
//! pool, fronted by the two-tier compilation cache.
//!
//! ```text
//! svd [--tcp ADDR] [--max-clients N] [--port-file PATH]
//!     [--route ADDR,ADDR,...] [--jobs N] [--batch-max N] [--flush-ms N]
//!     [--queue-cap N] [--mem-entries N] [--mem-bytes N] [--disk DIR]
//!     [--machines DIR] [--faults SPEC] [--fault-seed N]
//! ```
//!
//! `--route A,B,...` turns this process into a **router** over N running
//! `svd --tcp` shards instead of a compile server: each request is
//! forwarded to the shard keyed by its v2 canonical request key, with
//! per-shard health checks and typed failover (`--tcp` required; the
//! cache/queue flags are ignored in router mode).
//!
//! `--port-file PATH` writes the bound address (e.g. `127.0.0.1:40213`)
//! to `PATH` after listening starts — ephemeral-port scripting for ci.
//!
//! `--machines DIR` loads every `*.spec`/`*.mspec` file in `DIR` into
//! the machine registry next to the builtin `paper`/`figure1` entries;
//! each registers under the `name` its spec declares, and name
//! collisions abort startup. The `machines` verb lists the live
//! registry with canonical hashes.
//!
//! `--faults SPEC` arms seeded chaos fault injection (for soak testing a
//! deployment-shaped daemon, never production): `SPEC` is the
//! `key=value,...` grammar of `sv_serve::faults::FaultConfig::parse`,
//! e.g. `--faults soak` or `--faults disk_read=0.1,drainer_panic=0.05`.
//! One [`sv_serve::FaultPlan`] seeded by `--fault-seed` (default 0)
//! drives the cache, the compile path and the drainer, so a failing run
//! replays from its seed.
//!
//! Examples:
//!
//! ```text
//! $ echo '{"verb":"compile","id":1,"loop":"..."}' | svd --disk /tmp/svc
//! $ svd --tcp 127.0.0.1:7199 --jobs 8 --machines examples/machines &
//! $ svd --tcp 127.0.0.1:7200 --route 127.0.0.1:7199,127.0.0.1:7198 &
//! ```
//!
//! Exit is triggered by the `shutdown` verb or stdin EOF; either way the
//! queue drains fully before the process ends.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use sv_core::CacheConfig;
use sv_machine::MachineRegistry;
use sv_serve::{
    serve_lines, BatchConfig, Batcher, FaultConfig, FaultPlan, Router, RouterConfig, Server,
    ServeService, ServerConfig, Sink,
};

struct Options {
    tcp: Option<String>,
    route: Option<Vec<String>>,
    port_file: Option<PathBuf>,
    server: ServerConfig,
    batch: BatchConfig,
    cache: CacheConfig,
    machines_dir: Option<PathBuf>,
    faults: Option<FaultConfig>,
    fault_seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: svd [--tcp ADDR] [--max-clients N] [--port-file PATH] \
         [--route ADDR,ADDR,...] [--jobs N] [--batch-max N] [--flush-ms N] \
         [--queue-cap N] [--mem-entries N] [--mem-bytes N] [--disk DIR] \
         [--machines DIR] [--faults SPEC] [--fault-seed N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        tcp: None,
        route: None,
        port_file: None,
        server: ServerConfig::default(),
        batch: BatchConfig { jobs: sv_core::parallel::default_jobs(), ..BatchConfig::default() },
        cache: CacheConfig::default(),
        machines_dir: None,
        faults: None,
        fault_seed: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("svd: {name} needs a value");
                usage()
            })
        };
        let num = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("svd: {name} wants an unsigned integer, got `{v}`");
                usage()
            })
        };
        match a.as_str() {
            "--tcp" => opts.tcp = Some(val("--tcp")),
            "--route" => {
                opts.route = Some(
                    val("--route").split(',').map(|s| s.trim().to_string()).collect(),
                )
            }
            "--port-file" => opts.port_file = Some(PathBuf::from(val("--port-file"))),
            "--max-clients" => {
                opts.server.max_clients = num("--max-clients", val("--max-clients")).max(1)
            }
            "--jobs" => opts.batch.jobs = num("--jobs", val("--jobs")).max(1),
            "--batch-max" => opts.batch.batch_max = num("--batch-max", val("--batch-max")).max(1),
            "--flush-ms" => opts.batch.flush_ms = num("--flush-ms", val("--flush-ms")) as u64,
            "--queue-cap" => opts.batch.queue_cap = num("--queue-cap", val("--queue-cap")).max(1),
            "--mem-entries" => opts.cache.mem_entries = num("--mem-entries", val("--mem-entries")),
            "--mem-bytes" => opts.cache.mem_bytes = num("--mem-bytes", val("--mem-bytes")),
            "--disk" => opts.cache.disk_dir = Some(PathBuf::from(val("--disk"))),
            "--machines" => opts.machines_dir = Some(PathBuf::from(val("--machines"))),
            "--faults" => {
                let spec = val("--faults");
                opts.faults = Some(FaultConfig::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("svd: bad --faults spec: {e}");
                    usage()
                }));
            }
            "--fault-seed" => {
                opts.fault_seed = num("--fault-seed", val("--fault-seed")) as u64
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("svd: unknown flag `{other}`");
                usage()
            }
        }
    }
    opts
}

/// Bind, announce, and record the listening address for scripts.
fn bind_and_announce(addr: &str, port_file: Option<&PathBuf>) -> std::io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    eprintln!("svd: listening on {local}");
    if let Some(path) = port_file {
        std::fs::write(path, format!("{local}\n"))?;
    }
    Ok(listener)
}

fn serve_stdio(batcher: Batcher) -> Result<(), sv_serve::ServeError> {
    let sink: Sink = Arc::new(Mutex::new(std::io::stdout()));
    serve_lines(std::io::stdin().lock(), &batcher, &sink);
    batcher.close();
    batcher.join()
}

fn serve_tcp(
    addr: &str,
    port_file: Option<&PathBuf>,
    cfg: ServerConfig,
    batcher: Batcher,
) -> std::io::Result<()> {
    let listener = bind_and_announce(addr, port_file)?;
    let batcher = Arc::new(batcher);
    Server::new(Arc::clone(&batcher), cfg).serve(listener)?;
    match Arc::try_unwrap(batcher) {
        Ok(b) => b.join().map_err(|e| std::io::Error::other(e.to_string())),
        Err(_) => unreachable!("all connection threads joined"),
    }
}

fn serve_router(
    addr: &str,
    port_file: Option<&PathBuf>,
    shards: Vec<String>,
    registry: MachineRegistry,
) -> std::io::Result<()> {
    let listener = bind_and_announce(addr, port_file)?;
    let router = Router::new(shards, registry, RouterConfig::default());
    let up = router.health_check();
    eprintln!(
        "svd: routing to {} shard(s), {} healthy: {}",
        up.len(),
        up.iter().filter(|&&h| h).count(),
        router.health_object()
    );
    router.serve(listener)
}

fn main() -> ExitCode {
    let mut opts = parse_args();
    let mut registry = MachineRegistry::builtin();
    if let Some(dir) = &opts.machines_dir {
        match registry.load_dir(dir) {
            Ok(n) => eprintln!("svd: loaded {n} machine(s) from {}", dir.display()),
            Err(e) => {
                eprintln!("svd: cannot load machines: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(shards) = opts.route.take() {
        let Some(addr) = opts.tcp.as_deref() else {
            eprintln!("svd: --route needs --tcp ADDR to listen on");
            return ExitCode::FAILURE;
        };
        return match serve_router(addr, opts.port_file.as_ref(), shards, registry) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("svd: router failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // One seeded plan drives every layer, so a chaos run replays exactly.
    let plan = opts.faults.take().map(|cfg| {
        eprintln!("svd: chaos fault injection armed (seed {})", opts.fault_seed);
        Arc::new(FaultPlan::new(opts.fault_seed, cfg))
    });
    if let Some(p) = &plan {
        opts.cache.faults = Some(Arc::clone(p) as _);
    }
    let svc = match ServeService::with_registry(opts.cache, registry) {
        Ok(mut s) => {
            if let Some(p) = &plan {
                s.set_faults(Arc::clone(p));
            }
            Arc::new(s)
        }
        Err(e) => {
            eprintln!("svd: cannot open cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    let batcher = Batcher::with_faults(svc, opts.batch, plan);
    let outcome = match opts.tcp {
        None => serve_stdio(batcher).map_err(|e| std::io::Error::other(e.to_string())),
        Some(addr) => serve_tcp(&addr, opts.port_file.as_ref(), opts.server, batcher),
    };
    if let Err(e) = outcome {
        eprintln!("svd: server failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
