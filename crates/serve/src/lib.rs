//! # sv-serve — a cache-fronted batched compilation service
//!
//! Autotuners and design-space explorers call the selective-vectorization
//! pipeline as a *service*: thousands of `(loop, machine, config)`
//! requests, heavily repeated, latency-sensitive. This crate wraps
//! [`sv_core`]'s cache-fronted driver in a newline-delimited JSON
//! protocol served by the `svd` binary over stdin/stdout or TCP:
//!
//! * [`json`] — a dependency-free JSON reader/writer for the wire;
//! * [`proto`] — request/response types, the typed [`proto::ServeError`]
//!   taxonomy, and the wire renderings;
//! * [`service`] — decode → [`sv_core::compile_cached`] → canonical body;
//! * [`batch`] — the bounded queue and batching drainer that fans
//!   requests onto the deterministic worker pool.
//!
//! The load-generator client (`loadgen`) lives in `sv-bench`, next to the
//! other measurement binaries.
//!
//! ## Guarantees
//!
//! * **Byte-determinism** — identical requests produce byte-identical
//!   result objects: cold, from memory, from disk, at any `--jobs`.
//! * **Bounded memory** — the queue rejects (`overloaded`) instead of
//!   buffering without limit; the cache's memory tier is LRU-bounded by
//!   entries and bytes.
//! * **Graceful degradation** — a corrupt disk-cache entry quarantines
//!   and recompiles; a compile failure answers one request, not the
//!   process.

pub mod batch;
pub mod json;
pub mod proto;
pub mod service;

pub use batch::{BatchConfig, Batcher, QueueStats, Sink};
pub use proto::{parse_request, CompileRequest, Request, ServeError};
pub use service::ServeService;
