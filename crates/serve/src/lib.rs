//! # sv-serve — a cache-fronted batched compilation service
//!
//! Autotuners and design-space explorers call the selective-vectorization
//! pipeline as a *service*: thousands of `(loop, machine, config)`
//! requests, heavily repeated, latency-sensitive. This crate wraps
//! [`sv_core`]'s cache-fronted driver in a newline-delimited JSON
//! protocol served by the `svd` binary over stdin/stdout or TCP:
//!
//! * [`json`] — a dependency-free JSON reader/writer for the wire;
//! * [`proto`] — request/response types, the typed [`proto::ServeError`]
//!   taxonomy, and the wire renderings;
//! * [`service`] — decode → [`sv_core::compile_cached`] → canonical body;
//! * [`batch`] — the bounded multi-tenant queue and its *supervised*
//!   batching drainer: per-client weighted-fair admission, round-robin
//!   drain, per-entry panic isolation, exactly-once response accounting
//!   across drainer deaths;
//! * [`server`] — the multi-client TCP accept loop: per-connection
//!   client identities, `--max-clients` bounding, EOF-survival;
//! * [`router`] — the shard-by-canonical-hash front process for
//!   multi-instance mode: pure-hash routing on the v2 request key,
//!   per-shard health checks, typed failover;
//! * [`metrics`] — lock-free latency histograms and the `metrics` verb's
//!   canonical rendering;
//! * [`faults`] — seeded, deterministic fault injection (disk I/O errors,
//!   torn writes, compile panics, drainer deaths, stalls, connection
//!   drops, greedy-client bursts) driving the `chaos` soak in `sv-bench`;
//! * [`client`] — a retrying client (server-hinted `retry_after_ms`
//!   backoff when offered, capped exponential backoff with jitter
//!   otherwise, deadline-budget aware) used by `svc --server` and
//!   `loadgen`.
//!
//! The load-generator client (`loadgen`) and the `chaos` soak live in
//! `sv-bench`, next to the other measurement binaries.
//!
//! ## Guarantees
//!
//! * **Byte-determinism** — identical requests produce byte-identical
//!   result objects: cold, from memory, from disk, at any `--jobs`.
//! * **Bounded memory** — the queue rejects (`overloaded`) instead of
//!   buffering without limit; the cache's memory tier is LRU-bounded by
//!   entries and bytes.
//! * **Graceful degradation** — a corrupt disk-cache entry quarantines
//!   and recompiles; a compile failure answers one request, not the
//!   process.

pub mod batch;
pub mod client;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod router;
pub mod server;
pub mod service;

pub use batch::{BatchConfig, Batcher, QueueStats, Sink, DEFAULT_CLIENT};
pub use client::{ClientError, InProcess, RetryClient, RetryPolicy, RetryStats, TcpTransport};
pub use faults::{CompileFault, FaultConfig, FaultCounters, FaultPlan};
pub use metrics::{LatencyHistogram, PhaseLatencies};
pub use proto::{parse_request, CompileRequest, Request, ServeError};
pub use router::{Router, RouterConfig};
pub use server::{serve_lines, Server, ServerConfig};
pub use service::ServeService;
