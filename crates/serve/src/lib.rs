//! # sv-serve — a cache-fronted batched compilation service
//!
//! Autotuners and design-space explorers call the selective-vectorization
//! pipeline as a *service*: thousands of `(loop, machine, config)`
//! requests, heavily repeated, latency-sensitive. This crate wraps
//! [`sv_core`]'s cache-fronted driver in a newline-delimited JSON
//! protocol served by the `svd` binary over stdin/stdout or TCP:
//!
//! * [`json`] — a dependency-free JSON reader/writer for the wire;
//! * [`proto`] — request/response types, the typed [`proto::ServeError`]
//!   taxonomy, and the wire renderings;
//! * [`service`] — decode → [`sv_core::compile_cached`] → canonical body;
//! * [`batch`] — the bounded queue and its *supervised* batching drainer:
//!   per-entry panic isolation, exactly-once response accounting across
//!   drainer deaths;
//! * [`faults`] — seeded, deterministic fault injection (disk I/O errors,
//!   torn writes, compile panics, drainer deaths, stalls, connection
//!   drops) driving the `chaos` soak in `sv-bench`;
//! * [`client`] — a retrying client (capped exponential backoff with
//!   jitter on `overloaded`/connection drops, deadline-budget aware)
//!   used by `svc --server` and `loadgen`.
//!
//! The load-generator client (`loadgen`) and the `chaos` soak live in
//! `sv-bench`, next to the other measurement binaries.
//!
//! ## Guarantees
//!
//! * **Byte-determinism** — identical requests produce byte-identical
//!   result objects: cold, from memory, from disk, at any `--jobs`.
//! * **Bounded memory** — the queue rejects (`overloaded`) instead of
//!   buffering without limit; the cache's memory tier is LRU-bounded by
//!   entries and bytes.
//! * **Graceful degradation** — a corrupt disk-cache entry quarantines
//!   and recompiles; a compile failure answers one request, not the
//!   process.

pub mod batch;
pub mod client;
pub mod faults;
pub mod json;
pub mod proto;
pub mod service;

pub use batch::{BatchConfig, Batcher, QueueStats, Sink};
pub use client::{ClientError, InProcess, RetryClient, RetryPolicy, RetryStats, TcpTransport};
pub use faults::{CompileFault, FaultConfig, FaultCounters, FaultPlan};
pub use proto::{parse_request, CompileRequest, Request, ServeError};
pub use service::ServeService;
