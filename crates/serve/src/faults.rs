//! Seeded, deterministic fault injection for the serving layer.
//!
//! A [`FaultPlan`] is a probability table plus one in-repo SplitMix64
//! stream ([`sv_workloads::SmallRng`]) per injection *site*, so the same
//! `(seed, probabilities)` pair replays the same fault sequence at each
//! site regardless of what the other sites drew — the property the
//! `chaos` soak and the ci.sh chaos gate rely on to make failures
//! reproducible by seed. Sites:
//!
//! | site | injected fault | absorbed by |
//! |---|---|---|
//! | disk read | I/O error on a cache read | quarantine + recompile |
//! | disk write | write error / torn write / orphaned tmp | read validation, [`sv_core::CompileCache::recover`] |
//! | compile | panic or artificial slowness per batch entry | per-entry `catch_unwind` → typed `internal` |
//! | drainer | panic before/mid-batch | supervisor respawn + exactly-once re-queue |
//! | stall | drainer sleeps before an action | deadline verdicts, `overloaded` backpressure |
//! | connection | response dropped on the client path | retrying client ([`crate::client`]) |
//! | burst | one client floods a burst of extra submissions | weighted-fair admission, typed `overloaded` + `retry_after_ms` |
//!
//! Probabilities default to zero: a default plan injects nothing, and a
//! plan-free server pays only an `Option` check per site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use sv_core::{DiskFaults, WriteFault};
use sv_ir::CanonicalHash;
use sv_workloads::SmallRng;

/// Per-site fault probabilities and shaping knobs. All probabilities are
/// per *event* at their site (one disk read, one batch entry, one
/// flushed run, ...) and clamp to `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Injected I/O error per disk-cache read.
    pub disk_read: f64,
    /// Injected I/O error per disk-cache write.
    pub disk_write: f64,
    /// Torn (partial, non-atomic) write per disk-cache write; the cut
    /// point is drawn uniformly over the serialized entry.
    pub torn_write: f64,
    /// Orphaned temporary (crash between write and rename) per write.
    pub orphan_tmp: f64,
    /// Panic per batch-entry compile.
    pub compile_panic: f64,
    /// Artificial slowness per batch-entry compile.
    pub slow_compile: f64,
    /// How slow a slow compile is.
    pub slow_compile_ms: u64,
    /// Drainer panic per flushed run (the panic point — before execute
    /// or after k responses — is drawn uniformly).
    pub drainer_panic: f64,
    /// Queue stall per drainer action.
    pub queue_stall: f64,
    /// How long a queue stall lasts.
    pub stall_ms: u64,
    /// Dropped response per client call (simulated connection drop).
    pub conn_drop: f64,
    /// Burst of extra submissions from a greedy client, per chaos wave
    /// (multi-connection site: floods one client's fair share so
    /// admission must reject with typed `overloaded` while other
    /// clients keep completing).
    pub client_burst: f64,
    /// How many extra submissions one burst injects.
    pub burst_len: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            disk_read: 0.0,
            disk_write: 0.0,
            torn_write: 0.0,
            orphan_tmp: 0.0,
            compile_panic: 0.0,
            slow_compile: 0.0,
            slow_compile_ms: 2,
            drainer_panic: 0.0,
            queue_stall: 0.0,
            stall_ms: 2,
            conn_drop: 0.0,
            client_burst: 0.0,
            burst_len: 8,
        }
    }
}

impl FaultConfig {
    /// The standard chaos-soak mix: every fault class enabled at rates
    /// that exercise all recovery paths in a few dozen requests while
    /// leaving most requests to succeed (so warm-byte comparisons have
    /// material).
    pub fn soak() -> FaultConfig {
        FaultConfig {
            disk_read: 0.10,
            disk_write: 0.05,
            torn_write: 0.15,
            orphan_tmp: 0.10,
            compile_panic: 0.08,
            slow_compile: 0.05,
            slow_compile_ms: 1,
            drainer_panic: 0.12,
            queue_stall: 0.05,
            stall_ms: 1,
            conn_drop: 0.10,
            client_burst: 0.25,
            burst_len: 8,
        }
    }

    /// Parse a `key=value,key=value` spec (the `--faults` flag syntax),
    /// starting from the all-zero default. Keys are the field names
    /// (`disk_read`, `torn_write`, `drainer_panic`, ...); `soak` as the
    /// first element starts from [`FaultConfig::soak`] instead.
    ///
    /// # Errors
    ///
    /// A message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for (i, part) in spec.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part == "soak" {
                if i != 0 {
                    return Err("`soak` must be the first element of a fault spec".into());
                }
                cfg = FaultConfig::soak();
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec element `{part}` is not key=value"))?;
            let p = || -> Result<f64, String> {
                let v: f64 =
                    value.parse().map_err(|e| format!("bad value for `{key}`: {e}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("`{key}` wants a probability in [0,1], got {v}"));
                }
                Ok(v)
            };
            let ms = || -> Result<u64, String> {
                value.parse().map_err(|e| format!("bad value for `{key}`: {e}"))
            };
            match key.trim() {
                "disk_read" => cfg.disk_read = p()?,
                "disk_write" => cfg.disk_write = p()?,
                "torn_write" => cfg.torn_write = p()?,
                "orphan_tmp" => cfg.orphan_tmp = p()?,
                "compile_panic" => cfg.compile_panic = p()?,
                "slow_compile" => cfg.slow_compile = p()?,
                "slow_compile_ms" => cfg.slow_compile_ms = ms()?,
                "drainer_panic" => cfg.drainer_panic = p()?,
                "queue_stall" => cfg.queue_stall = p()?,
                "stall_ms" => cfg.stall_ms = ms()?,
                "conn_drop" => cfg.conn_drop = p()?,
                "client_burst" => cfg.client_burst = p()?,
                "burst_len" => cfg.burst_len = ms()?,
                other => return Err(format!("unknown fault knob `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Injection sites, each with its own independent RNG stream.
#[derive(Debug, Clone, Copy)]
enum Site {
    DiskRead = 0,
    DiskWrite = 1,
    Compile = 2,
    Drainer = 3,
    Stall = 4,
    Conn = 5,
    Burst = 6,
}

const SITES: usize = 7;

/// What the plan dictates for one batch-entry compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileFault {
    /// Compile normally.
    None,
    /// Panic (to be caught by the per-entry isolation).
    Panic,
    /// Sleep this long first (trips deadlines / backs the queue up).
    Slow(Duration),
}

/// Counters of faults actually injected, for reports and gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Disk reads failed.
    pub disk_reads: u64,
    /// Disk writes failed outright.
    pub disk_writes: u64,
    /// Torn writes placed.
    pub torn_writes: u64,
    /// Orphaned temporaries placed.
    pub orphan_tmps: u64,
    /// Compile panics injected.
    pub compile_panics: u64,
    /// Compiles slowed.
    pub slow_compiles: u64,
    /// Drainer panics injected.
    pub drainer_panics: u64,
    /// Queue stalls injected.
    pub queue_stalls: u64,
    /// Responses dropped on the client path.
    pub conn_drops: u64,
    /// Greedy-client bursts injected.
    pub client_bursts: u64,
}

impl FaultCounters {
    /// Total faults injected across every class.
    pub fn total(&self) -> u64 {
        self.disk_reads
            + self.disk_writes
            + self.torn_writes
            + self.orphan_tmps
            + self.compile_panics
            + self.slow_compiles
            + self.drainer_panics
            + self.queue_stalls
            + self.conn_drops
            + self.client_bursts
    }
}

/// A seeded fault plan: deterministic per-site decision streams plus
/// injection counters. Shared (`Arc`) between the cache, the service,
/// the batcher and the client transports of one chaos run.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    sites: Vec<Mutex<SmallRng>>,
    injected: [AtomicU64; 10],
}

impl FaultPlan {
    /// Build a plan. Each site's stream is seeded from `seed` and the
    /// site's index, so sites never share draws.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            sites: (0..SITES as u64)
                // Offset the per-site seed by a large odd constant so
                // site streams are uncorrelated with each other and with
                // workload generators using nearby seeds.
                .map(|i| Mutex::new(SmallRng::seed_from_u64(seed ^ (0x5eed_fa17 + i * 0x9e37))))
                .collect(),
            injected: Default::default(),
        }
    }

    /// The plan's probability table.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn draw(&self, site: Site, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.sites[site as usize].lock().expect("fault site poisoned").chance(p)
    }

    fn draw_index(&self, site: Site, n: usize) -> usize {
        self.sites[site as usize].lock().expect("fault site poisoned").index(n)
    }

    fn count(&self, idx: usize) {
        self.injected[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// What should happen to one batch-entry compile.
    pub fn compile_fault(&self) -> CompileFault {
        if self.draw(Site::Compile, self.cfg.compile_panic) {
            self.count(4);
            return CompileFault::Panic;
        }
        if self.draw(Site::Compile, self.cfg.slow_compile) {
            self.count(5);
            return CompileFault::Slow(Duration::from_millis(self.cfg.slow_compile_ms));
        }
        CompileFault::None
    }

    /// Whether (and where) the drainer should panic while handling a run
    /// of `batch_len` entries: `Some(0)` panics before execution,
    /// `Some(k)` after the `k`-th response has been written.
    pub fn drainer_panic_point(&self, batch_len: usize) -> Option<usize> {
        if !self.draw(Site::Drainer, self.cfg.drainer_panic) {
            return None;
        }
        self.count(6);
        Some(self.draw_index(Site::Drainer, batch_len + 1))
    }

    /// How long the drainer should stall before its next action.
    pub fn stall(&self) -> Option<Duration> {
        if self.draw(Site::Stall, self.cfg.queue_stall) {
            self.count(7);
            Some(Duration::from_millis(self.cfg.stall_ms))
        } else {
            None
        }
    }

    /// Whether the response to one client call should be dropped
    /// (simulated connection drop; the client retries).
    pub fn drop_response(&self) -> bool {
        if self.draw(Site::Conn, self.cfg.conn_drop) {
            self.count(8);
            true
        } else {
            false
        }
    }

    /// How many extra submissions a greedy client should flood into the
    /// queue right now (`0` = no burst this wave). The burst targets one
    /// client's fair share, so the admission path must answer the excess
    /// with typed `overloaded` while other clients keep completing.
    pub fn client_burst(&self) -> u64 {
        if self.draw(Site::Burst, self.cfg.client_burst) {
            self.count(9);
            self.cfg.burst_len
        } else {
            0
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> FaultCounters {
        let c = |i: usize| self.injected[i].load(Ordering::Relaxed);
        FaultCounters {
            disk_reads: c(0),
            disk_writes: c(1),
            torn_writes: c(2),
            orphan_tmps: c(3),
            compile_panics: c(4),
            slow_compiles: c(5),
            drainer_panics: c(6),
            queue_stalls: c(7),
            conn_drops: c(8),
            client_bursts: c(9),
        }
    }
}

impl DiskFaults for FaultPlan {
    fn read_fault(&self, _key: CanonicalHash) -> bool {
        if self.draw(Site::DiskRead, self.cfg.disk_read) {
            self.count(0);
            true
        } else {
            false
        }
    }

    fn write_fault(&self, _key: CanonicalHash, len: usize) -> WriteFault {
        if self.draw(Site::DiskWrite, self.cfg.disk_write) {
            self.count(1);
            return WriteFault::Error;
        }
        if self.draw(Site::DiskWrite, self.cfg.torn_write) {
            self.count(2);
            // Uniform kill point over the serialized entry, including a
            // cut before the first byte (empty file) — `len` itself
            // would be a complete write, which the `None` arm covers.
            return WriteFault::Torn { keep: self.draw_index(Site::DiskWrite, len.max(1)) };
        }
        if self.draw(Site::DiskWrite, self.cfg.orphan_tmp) {
            self.count(3);
            return WriteFault::OrphanTmp;
        }
        WriteFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::new(1, FaultConfig::default());
        for _ in 0..200 {
            assert!(!plan.read_fault(CanonicalHash(1)));
            assert_eq!(plan.write_fault(CanonicalHash(1), 100), WriteFault::None);
            assert_eq!(plan.compile_fault(), CompileFault::None);
            assert_eq!(plan.drainer_panic_point(8), None);
            assert_eq!(plan.stall(), None);
            assert!(!plan.drop_response());
            assert_eq!(plan.client_burst(), 0);
        }
        assert_eq!(plan.injected().total(), 0);
    }

    #[test]
    fn same_seed_same_stream_per_site() {
        let mk = || FaultPlan::new(42, FaultConfig::soak());
        let (a, b) = (mk(), mk());
        // Interleave sites differently on `b`: per-site streams must not
        // be perturbed by draws at other sites.
        let reads_a: Vec<bool> = (0..100).map(|_| a.read_fault(CanonicalHash(9))).collect();
        for _ in 0..100 {
            let _ = b.compile_fault();
            let _ = b.drainer_panic_point(4);
        }
        let reads_b: Vec<bool> = (0..100).map(|_| b.read_fault(CanonicalHash(9))).collect();
        assert_eq!(reads_a, reads_b);
        assert!(reads_a.iter().any(|&x| x), "10% over 100 draws should fire");
    }

    #[test]
    fn soak_rates_fire_every_class() {
        let plan = FaultPlan::new(7, FaultConfig::soak());
        for _ in 0..500 {
            let _ = plan.read_fault(CanonicalHash(3));
            let _ = plan.write_fault(CanonicalHash(3), 256);
            let _ = plan.compile_fault();
            let _ = plan.drainer_panic_point(6);
            let _ = plan.stall();
            let _ = plan.drop_response();
            let _ = plan.client_burst();
        }
        let c = plan.injected();
        assert!(c.disk_reads > 0, "{c:?}");
        assert!(c.disk_writes > 0, "{c:?}");
        assert!(c.torn_writes > 0, "{c:?}");
        assert!(c.orphan_tmps > 0, "{c:?}");
        assert!(c.compile_panics > 0, "{c:?}");
        assert!(c.slow_compiles > 0, "{c:?}");
        assert!(c.drainer_panics > 0, "{c:?}");
        assert!(c.queue_stalls > 0, "{c:?}");
        assert!(c.conn_drops > 0, "{c:?}");
        assert!(c.client_bursts > 0, "{c:?}");
    }

    #[test]
    fn torn_cut_points_cover_the_entry() {
        let plan = FaultPlan::new(3, FaultConfig { torn_write: 1.0, ..FaultConfig::default() });
        let mut cuts = Vec::new();
        for _ in 0..200 {
            match plan.write_fault(CanonicalHash(5), 64) {
                WriteFault::Torn { keep } => cuts.push(keep),
                other => panic!("expected torn write, got {other:?}"),
            }
        }
        assert!(cuts.iter().all(|&k| k < 64));
        assert!(cuts.iter().any(|&k| k < 16), "cuts must land in the header region");
        assert!(cuts.iter().any(|&k| k > 48), "cuts must land in the body region");
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let cfg =
            FaultConfig::parse("disk_read=0.5,torn_write=0.25,stall_ms=7,client_burst=0.4,burst_len=3")
                .unwrap();
        assert_eq!(cfg.disk_read, 0.5);
        assert_eq!(cfg.torn_write, 0.25);
        assert_eq!(cfg.stall_ms, 7);
        assert_eq!(cfg.client_burst, 0.4);
        assert_eq!(cfg.burst_len, 3);
        assert_eq!(cfg.drainer_panic, 0.0);
        let soak = FaultConfig::parse("soak,conn_drop=0").unwrap();
        assert_eq!(soak.disk_read, FaultConfig::soak().disk_read);
        assert_eq!(soak.conn_drop, 0.0);
        assert!(FaultConfig::parse("nope=1").is_err());
        assert!(FaultConfig::parse("disk_read=2.0").is_err());
        assert!(FaultConfig::parse("disk_read").is_err());
        assert!(FaultConfig::parse("disk_read=0.1,soak").is_err());
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
    }
}
