//! A minimal JSON reader for the wire protocol.
//!
//! The workspace is dependency-free by policy, so `svd` parses its
//! newline-delimited JSON requests with this ~200-line recursive-descent
//! reader instead of serde. It accepts standard JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) and rejects trailing
//! garbage; numbers are held as `f64`, which covers every id and knob the
//! protocol uses (integers up to 2^53 round-trip exactly).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is irrelevant to the protocol, so a sorted
    /// map keeps lookups simple.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Deepest container nesting the reader accepts. The parser is
/// recursive-descent, so without a bound an adversarial line of a few
/// kilobytes of `[` would overflow the stack and abort the process;
/// with it, deep nesting is a typed parse error like any other. 128
/// levels is far beyond anything the protocol produces (requests nest
/// three deep).
pub const MAX_DEPTH: usize = 128;

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { b: text.as_bytes(), at: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.b.len() && matches!(self.b[self.at], b' ' | b'\t' | b'\n' | b'\r') {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' | b'[' => {
                if self.depth >= MAX_DEPTH {
                    return Err(format!(
                        "nesting deeper than {MAX_DEPTH} levels at byte {}",
                        self.at
                    ));
                }
                self.depth += 1;
                let v = if self.b[self.at] == b'{' { self.object() } else { self.array() };
                self.depth -= 1;
                v
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected `{}` at byte {}", c as char, self.at)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            m.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Value::Obj(m));
                }
                c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Value::Arr(v));
                }
                c => return Err(format!("expected `,` or `]`, got `{}`", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.at)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.at)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.at += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.at..self.at + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.at += 4;
                            // Surrogate pairs are not needed by this
                            // protocol (loop text is ASCII); reject them
                            // rather than mis-decode.
                            let ch = char::from_u32(cp)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.push(ch);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence through.
                    let start = self.at - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let chunk = self
                        .b
                        .get(start..end)
                        .ok_or_else(|| "truncated utf-8 sequence".to_string())?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(s);
                    self.at = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.b[self.at] == b'-' {
            self.at += 1;
        }
        while self.at < self.b.len()
            && matches!(self.b[self.at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Minimal JSON string escape (quotes, backslashes, control characters) —
/// the writer-side twin of [`parse`].
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"verb":"compile","id":3,"opts":{"degrade":true,"slack":-2.5},"tags":["a","b"],"none":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("verb").unwrap().as_str(), Some("compile"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("opts").unwrap().get("degrade").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("opts").unwrap().get("slack"), Some(&Value::Num(-2.5)));
        assert_eq!(v.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "a\"b\\c", "line\nbreak\ttab", "unicode: é π", "ctrl\u{1}"] {
            let doc = format!("{{\"k\":\"{}\"}}", escape(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s), "doc: {doc}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated", "{'a':1}"] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // Within the bound: parses fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // One past the bound — and far past it — must return an error,
        // never recurse to an abort.
        for depth in [MAX_DEPTH + 1, 100_000] {
            let bad = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
            let e = parse(&bad).unwrap_err();
            assert!(e.contains("nesting deeper"), "{e}");
        }
    }

    #[test]
    fn numbers_and_ids() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
    }
}
