//! A retrying client for the wire protocol.
//!
//! `svc --server` and `loadgen` talk to a server through a
//! [`RetryClient`]: one request line in, one response line out, with
//! retries on the *transient* failures — an `overloaded` or
//! `unavailable` rejection and a dropped connection. Every other
//! outcome, including typed errors like `deadline` or `compile`, is
//! final and returned to the caller as-is: retrying a request the server
//! has already judged would only waste its deadline budget.
//!
//! Backoff is **server-hinted first**: an `overloaded` rejection carries
//! `retry_after_ms` — the server's own estimate of when queue space
//! reappears, computed from live queue depth (see
//! `crate::batch`) — and the client sleeps exactly that hint scaled by
//! jitter in `[1.0, 1.5)`. Blind exponential backoff (jitter
//! `[0.5, 1.5)`) remains the fallback for failures that carry no hint,
//! such as dropped connections. Hinted waits are counted separately in
//! [`RetryStats::hinted`].
//!
//! The client is deadline-aware: it never sleeps past the caller's
//! deadline — when the next backoff would land beyond it, the client
//! gives up immediately with [`ClientError::GiveUp`] so the caller
//! learns the outcome while it still matters. Give-ups and retries are
//! counted in [`RetryStats`]; `loadgen` reports them per phase and
//! `--check` bounds the give-up rate.
//!
//! Two transports are provided: [`TcpTransport`] (reconnects on retry)
//! for real servers, and [`InProcess`] (a [`Batcher`] behind a one-shot
//! sink, with optional injected connection drops) for benchmarks and the
//! chaos soak.

use crate::batch::{Batcher, Sink};
use crate::faults::FaultPlan;
use crate::json;
use crate::proto::{error_response, parse_request};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use sv_workloads::SmallRng;

/// How a [`RetryClient`] paces its retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total).
    pub max_retries: u32,
    /// First backoff; each retry doubles it.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            seed: 0,
        }
    }
}

/// Counters a client accumulates across calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transport round trips attempted (first tries and retries).
    pub attempts: u64,
    /// Retries performed (after a transient failure, before success).
    pub retries: u64,
    /// Retries whose wait was paced by a server `retry_after_ms` hint
    /// rather than blind exponential backoff.
    pub hinted: u64,
    /// Calls abandoned: retries exhausted or deadline budget spent.
    pub give_ups: u64,
}

/// Why a transport round trip failed.
#[derive(Debug)]
pub enum TransportError {
    /// The connection died (or the response was dropped); a fresh
    /// attempt may succeed — retryable.
    Drop(String),
    /// The transport cannot make progress at all (bad address, protocol
    /// violation); retrying is pointless.
    Fatal(String),
}

/// Why a [`RetryClient::call`] gave no response line.
#[derive(Debug)]
pub enum ClientError {
    /// Transient failures persisted past the retry budget or the
    /// caller's deadline.
    GiveUp {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last transient failure, for the log.
        last: String,
    },
    /// The transport failed fatally.
    Fatal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::GiveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
            ClientError::Fatal(m) => write!(f, "transport failed: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One request/response round trip over some medium.
pub trait Transport {
    /// Send one request line, receive one response line (no trailing
    /// newline).
    ///
    /// # Errors
    ///
    /// [`TransportError::Drop`] for retryable connection-level failures,
    /// [`TransportError::Fatal`] otherwise.
    fn call(&mut self, line: &str) -> Result<String, TransportError>;
}

/// Whether a response line is a server-side *transient* rejection the
/// client should retry (the `overloaded` and `unavailable` kinds,
/// matching [`crate::proto::ServeError::retryable`]).
pub fn retryable_response(line: &str) -> bool {
    let Ok(v) = json::parse(line) else { return false };
    if v.get("ok").and_then(json::Value::as_bool) != Some(false) {
        return false;
    }
    matches!(
        v.get("error").and_then(|e| e.get("kind")).and_then(json::Value::as_str),
        Some("overloaded" | "unavailable")
    )
}

/// The server's `retry_after_ms` backpressure hint from an error
/// response line, when present.
pub fn retry_after_ms(line: &str) -> Option<u64> {
    let v = json::parse(line).ok()?;
    v.get("error")?.get("retry_after_ms")?.as_u64()
}

/// A transport wrapped in retry/backoff/deadline logic.
pub struct RetryClient<T> {
    transport: T,
    policy: RetryPolicy,
    rng: SmallRng,
    stats: RetryStats,
}

impl<T: Transport> RetryClient<T> {
    /// Wrap a transport.
    pub fn new(transport: T, policy: RetryPolicy) -> RetryClient<T> {
        let rng = SmallRng::seed_from_u64(policy.seed ^ 0xc11e_4a77);
        RetryClient { transport, policy, rng, stats: RetryStats::default() }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The wrapped transport (to submit non-retried traffic directly).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Send one request line, retrying transient failures — paced by the
    /// server's `retry_after_ms` hint when the rejection carries one,
    /// by capped exponential backoff with jitter otherwise — never
    /// sleeping past `deadline`. A response line — even one carrying a
    /// non-retryable typed error — is a success at this layer and is
    /// returned to the caller.
    ///
    /// # Errors
    ///
    /// [`ClientError::GiveUp`] when transient failures outlast the retry
    /// budget or the deadline; [`ClientError::Fatal`] for unretryable
    /// transport failures.
    pub fn call(
        &mut self,
        line: &str,
        deadline: Option<Instant>,
    ) -> Result<String, ClientError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.stats.attempts += 1;
            let (transient, hint) = match self.transport.call(line) {
                Ok(response) if retryable_response(&response) => {
                    let hint = retry_after_ms(&response);
                    (format!("server overloaded: {response}"), hint)
                }
                Ok(response) => return Ok(response),
                Err(TransportError::Drop(m)) => (format!("connection dropped: {m}"), None),
                Err(TransportError::Fatal(m)) => {
                    self.stats.give_ups += 1;
                    return Err(ClientError::Fatal(m));
                }
            };
            if attempts > self.policy.max_retries {
                self.stats.give_ups += 1;
                return Err(ClientError::GiveUp { attempts, last: transient });
            }
            let delay = match hint {
                // The server said when queue space should reappear:
                // sleep exactly that, scaled by jitter in [1.0, 1.5) so
                // hinted clients still fan out instead of stampeding
                // back in lockstep.
                Some(ms) => {
                    let jitter =
                        1.0 + (self.rng.next_u64() >> 11) as f64 / (1u64 << 54) as f64;
                    Duration::from_millis(ms.max(1)).mul_f64(jitter)
                }
                // No hint (dropped connection): capped exponential
                // backoff, jitter in [0.5, 1.5) to desynchronize
                // clients that all failed at the same instant.
                None => {
                    let exp = self
                        .policy
                        .base_backoff
                        .saturating_mul(1u32 << (attempts - 1).min(16))
                        .min(self.policy.max_backoff);
                    let jitter =
                        0.5 + (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    exp.mul_f64(jitter)
                }
            };
            if let Some(d) = deadline {
                // Sleeping past the deadline guarantees a useless
                // attempt; give up now so the caller learns in time.
                if Instant::now() + delay >= d {
                    self.stats.give_ups += 1;
                    return Err(ClientError::GiveUp {
                        attempts,
                        last: format!("{transient} (deadline budget exhausted)"),
                    });
                }
            }
            std::thread::sleep(delay);
            self.stats.retries += 1;
            if hint.is_some() {
                self.stats.hinted += 1;
            }
        }
    }
}

/// A line-oriented TCP transport. The connection is opened lazily and
/// dropped on any I/O error, so the next attempt reconnects — which is
/// exactly the retry client's `Drop` path.
pub struct TcpTransport {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

impl TcpTransport {
    /// A transport for `host:port` (connects on first call).
    pub fn new(addr: impl Into<String>) -> TcpTransport {
        TcpTransport { addr: addr.into(), conn: None }
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, line: &str) -> Result<String, TransportError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| TransportError::Drop(format!("connect {}: {e}", self.addr)))?;
            self.conn = Some(BufReader::new(stream));
        }
        let conn = self.conn.as_mut().expect("just connected");
        let io = (|| -> std::io::Result<String> {
            conn.get_ref().write_all(line.as_bytes())?;
            conn.get_ref().write_all(b"\n")?;
            let mut response = String::new();
            if conn.read_line(&mut response)? == 0 {
                return Err(std::io::Error::other("server closed the connection"));
            }
            Ok(response.trim_end_matches(['\n', '\r']).to_string())
        })();
        match io {
            Ok(response) => Ok(response),
            Err(e) => {
                self.conn = None; // reconnect on the next attempt
                Err(TransportError::Drop(e.to_string()))
            }
        }
    }
}

/// The state behind a [`OneShotSink`]: response bytes plus a condvar to
/// wake the waiting client the moment a full line has been written.
#[derive(Debug, Default)]
struct OneShotBuf {
    buf: Vec<u8>,
    cv: Arc<Condvar>,
}

impl Write for OneShotBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.contains(&b'\n') {
            self.cv.notify_all();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A single-response sink: hand [`OneShotSink::sink`] to the batcher,
/// then [`OneShotSink::wait`] for the drainer to write the line.
struct OneShotSink {
    state: Arc<Mutex<OneShotBuf>>,
    cv: Arc<Condvar>,
}

impl OneShotSink {
    fn new() -> OneShotSink {
        let cv = Arc::new(Condvar::new());
        let state =
            Arc::new(Mutex::new(OneShotBuf { buf: Vec::new(), cv: Arc::clone(&cv) }));
        OneShotSink { state, cv }
    }

    /// The handle to submit with (same mutex, unsized to the sink type).
    fn sink(&self) -> Sink {
        Arc::clone(&self.state) as Sink
    }

    /// Block until one full response line has been written, then take it.
    fn wait(&self) -> String {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !state.buf.contains(&b'\n') {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        let text = String::from_utf8_lossy(&state.buf);
        text.lines().next().unwrap_or_default().to_string()
    }
}

/// An in-process transport: requests go straight into a [`Batcher`],
/// responses come back through a one-shot sink. Admission rejections
/// (`overloaded`, `deadline`, `shutting_down`) surface as error-response
/// lines — exactly what a remote server would send — so the retry logic
/// treats local and remote servers identically. An optional
/// [`FaultPlan`] injects connection drops: the response is discarded
/// after the server has done the work, as a real broken pipe would.
pub struct InProcess {
    batcher: Arc<Batcher>,
    faults: Option<Arc<FaultPlan>>,
}

impl InProcess {
    /// A transport over an in-process batcher.
    pub fn new(batcher: Arc<Batcher>) -> InProcess {
        InProcess { batcher, faults: None }
    }

    /// [`InProcess::new`] plus injected connection drops from a chaos
    /// fault plan.
    pub fn with_faults(batcher: Arc<Batcher>, faults: Arc<FaultPlan>) -> InProcess {
        InProcess { batcher, faults: Some(faults) }
    }
}

impl Transport for InProcess {
    fn call(&mut self, line: &str) -> Result<String, TransportError> {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err((id, e)) => return Ok(error_response(id, &e)),
        };
        let id = request.id();
        let sink = OneShotSink::new();
        if let Err(e) = self.batcher.submit(request, sink.sink()) {
            return Ok(error_response(id, &e));
        }
        let response = sink.wait();
        if self.faults.as_ref().is_some_and(|p| p.drop_response()) {
            return Err(TransportError::Drop("injected connection drop".into()));
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;
    use crate::faults::FaultConfig;
    use crate::proto::CompileRequest;
    use crate::service::ServeService;
    use sv_workloads::benchmark;

    struct Scripted {
        responses: Vec<Result<String, TransportError>>,
        calls: u32,
    }

    impl Transport for Scripted {
        fn call(&mut self, _line: &str) -> Result<String, TransportError> {
            self.calls += 1;
            self.responses.remove(0)
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
            seed: 1,
        }
    }

    #[test]
    fn retries_overloaded_then_returns_success() {
        let overloaded = r#"{"id":1,"ok":false,"error":{"kind":"overloaded","message":"q"}}"#;
        let mut c = RetryClient::new(
            Scripted {
                responses: vec![
                    Ok(overloaded.into()),
                    Err(TransportError::Drop("reset".into())),
                    Ok(r#"{"id":1,"ok":true,"result":{}}"#.into()),
                ],
                calls: 0,
            },
            fast_policy(),
        );
        let out = c.call("{}", None).unwrap();
        assert!(out.contains("\"ok\":true"));
        let s = c.stats();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.give_ups, 0);
        assert_eq!(c.transport_mut().calls, 3);
    }

    #[test]
    fn typed_errors_are_final_not_retried() {
        let deadline = r#"{"id":1,"ok":false,"error":{"kind":"deadline","message":"late"}}"#;
        let mut c = RetryClient::new(
            Scripted { responses: vec![Ok(deadline.into())], calls: 0 },
            fast_policy(),
        );
        let out = c.call("{}", None).unwrap();
        assert!(out.contains("\"kind\":\"deadline\""));
        assert_eq!(c.stats().retries, 0);
    }

    #[test]
    fn gives_up_after_retry_budget() {
        let overloaded = r#"{"id":1,"ok":false,"error":{"kind":"overloaded","message":"q"}}"#;
        let mut c = RetryClient::new(
            Scripted {
                responses: (0..4).map(|_| Ok(overloaded.into())).collect(),
                calls: 0,
            },
            fast_policy(),
        );
        let e = c.call("{}", None).unwrap_err();
        assert!(matches!(e, ClientError::GiveUp { attempts: 4, .. }), "{e}");
        assert_eq!(c.stats().give_ups, 1);
    }

    #[test]
    fn never_sleeps_past_the_deadline() {
        let overloaded = r#"{"id":1,"ok":false,"error":{"kind":"overloaded","message":"q"}}"#;
        let mut c = RetryClient::new(
            Scripted {
                responses: (0..100).map(|_| Ok(overloaded.into())).collect(),
                calls: 0,
            },
            RetryPolicy {
                max_retries: 100,
                base_backoff: Duration::from_secs(1),
                max_backoff: Duration::from_secs(1),
                seed: 2,
            },
        );
        let start = Instant::now();
        let e = c.call("{}", Some(start + Duration::from_millis(5))).unwrap_err();
        assert!(start.elapsed() < Duration::from_millis(500), "must not sleep 1s");
        let ClientError::GiveUp { last, .. } = e else { panic!("{e}") };
        assert!(last.contains("deadline budget"), "{last}");
    }

    #[test]
    fn server_hint_paces_the_retry_and_is_counted() {
        let hinted = r#"{"id":1,"ok":false,"error":{"kind":"overloaded","cap":4,"retry_after_ms":1,"message":"q"}}"#;
        let mut c = RetryClient::new(
            Scripted {
                responses: vec![
                    Ok(hinted.into()),
                    Ok(r#"{"id":1,"ok":true,"result":{}}"#.into()),
                ],
                calls: 0,
            },
            // A blind exponential retry here would sleep ~1s; the 1 ms
            // hint must be used instead.
            RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_secs(1),
                max_backoff: Duration::from_secs(1),
                seed: 3,
            },
        );
        let start = Instant::now();
        let out = c.call("{}", None).unwrap();
        assert!(out.contains("\"ok\":true"));
        assert!(start.elapsed() < Duration::from_millis(500), "hint must override backoff");
        let s = c.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(s.hinted, 1);
    }

    #[test]
    fn oversized_hint_still_respects_the_deadline() {
        let hinted = r#"{"id":1,"ok":false,"error":{"kind":"overloaded","cap":4,"retry_after_ms":60000,"message":"q"}}"#;
        let mut c = RetryClient::new(
            Scripted { responses: vec![Ok(hinted.into())], calls: 0 },
            fast_policy(),
        );
        let start = Instant::now();
        let e = c.call("{}", Some(start + Duration::from_millis(5))).unwrap_err();
        assert!(start.elapsed() < Duration::from_millis(500), "must not sleep 60s");
        let ClientError::GiveUp { last, .. } = e else { panic!("{e}") };
        assert!(last.contains("deadline budget"), "{last}");
        assert_eq!(c.stats().hinted, 0, "the hinted sleep never happened");
    }

    #[test]
    fn unavailable_is_transient_and_retried() {
        let unavailable =
            r#"{"id":1,"ok":false,"error":{"kind":"unavailable","message":"no backend"}}"#;
        let mut c = RetryClient::new(
            Scripted {
                responses: vec![
                    Ok(unavailable.into()),
                    Ok(r#"{"id":1,"ok":true,"result":{}}"#.into()),
                ],
                calls: 0,
            },
            fast_policy(),
        );
        let out = c.call("{}", None).unwrap();
        assert!(out.contains("\"ok\":true"));
        assert_eq!(c.stats().retries, 1);
    }

    #[test]
    fn in_process_round_trip_with_injected_drops() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Arc::new(Batcher::new(svc, BatchConfig::default()));
        let plan = Arc::new(FaultPlan::new(
            9,
            FaultConfig { conn_drop: 0.4, ..FaultConfig::default() },
        ));
        let mut c = RetryClient::new(
            InProcess::with_faults(Arc::clone(&b), plan),
            RetryPolicy { max_retries: 40, ..fast_policy() },
        );
        let suite = benchmark("swim").unwrap();
        for i in 0..10u64 {
            let req = CompileRequest {
                loop_text: suite.loops[i as usize % suite.loops.len()].to_string(),
                ..CompileRequest::default()
            };
            let out = c.call(&req.to_wire(i), None).unwrap();
            assert!(out.contains(&format!("\"id\":{i},")), "{out}");
            assert!(out.contains("\"ok\":true"), "{out}");
        }
        assert!(c.stats().retries > 0, "40% drops over 10 calls must retry");
        assert_eq!(c.stats().give_ups, 0);
        drop(c); // release the transport's Arc<Batcher> clone
        Arc::try_unwrap(b).ok().expect("sole owner").join().unwrap();
    }
}
