//! Request execution: decode → cache-fronted compile → canonical body.

use crate::proto::{CompileRequest, ServeError};
use std::sync::Arc;
use sv_core::{compile_cached, CacheConfig, CacheOutcome, CompileCache};

/// The stateless-per-request core of the server: a [`CompileCache`] plus
/// the decode/compile/render path. Shared across connections and worker
/// threads behind an `Arc`.
#[derive(Debug)]
pub struct ServeService {
    cache: CompileCache,
}

impl ServeService {
    /// Build a service around a cache with the given sizing/placement.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the disk tier's directory cannot be
    /// created.
    pub fn new(cache_cfg: CacheConfig) -> std::io::Result<ServeService> {
        Ok(ServeService { cache: CompileCache::new(cache_cfg)? })
    }

    /// A service with a default in-memory-only cache.
    pub fn in_memory() -> ServeService {
        ServeService { cache: CompileCache::in_memory() }
    }

    /// Execute one compile request: parse the loop text, resolve machine
    /// and driver configuration, and run the cache-fronted compile. The
    /// returned body is the canonical result rendering — byte-identical
    /// for identical requests regardless of which tier served it.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for unparseable loop text or an unknown
    /// machine, [`ServeError::Compile`] when the driver rejects the loop.
    pub fn compile_body(
        &self,
        req: &CompileRequest,
    ) -> Result<(Arc<str>, CacheOutcome), ServeError> {
        let looop = sv_ir::parse_loop(&req.loop_text).map_err(|e| ServeError::BadRequest {
            message: format!("unparseable loop text: {e}"),
        })?;
        let machine = req.machine_config()?;
        let cfg = req.driver_config();
        compile_cached(&looop, &machine, &cfg, &self.cache)
            .map_err(|e| ServeError::Compile(Box::new(e)))
    }

    /// The underlying cache (stats, direct seeding in tests).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Render the `stats` verb's `cache` sub-object.
    pub fn stats_object(&self) -> String {
        let s = self.cache.stats();
        format!(
            "{{\"mem_hits\":{},\"disk_hits\":{},\"misses\":{},\"evictions\":{},\
             \"disk_errors\":{},\"entries\":{},\"bytes\":{},\"hit_rate\":{:.4}}}",
            s.mem_hits,
            s.disk_hits,
            s.misses,
            s.evictions,
            s.disk_errors,
            s.entries,
            s.bytes,
            s.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workloads::benchmark;

    fn req_for(loop_text: String) -> CompileRequest {
        CompileRequest { loop_text, ..CompileRequest::default() }
    }

    #[test]
    fn compiles_suite_loop_and_caches() {
        let svc = ServeService::in_memory();
        let suite = benchmark("swim").expect("suite benchmark exists");
        let req = req_for(suite.loops[0].to_string());
        let (cold, o1) = svc.compile_body(&req).unwrap();
        assert_eq!(o1, CacheOutcome::Compiled);
        let (warm, o2) = svc.compile_body(&req).unwrap();
        assert_eq!(o2, CacheOutcome::Memory);
        assert_eq!(cold, warm);
        assert!(svc.stats_object().contains("\"mem_hits\":1"));
    }

    #[test]
    fn rejects_bad_loop_text_and_machine() {
        let svc = ServeService::in_memory();
        let e = svc.compile_body(&req_for("not a loop".into())).unwrap_err();
        assert_eq!(e.kind(), "bad_request");
        let suite = benchmark("swim").unwrap();
        let mut req = req_for(suite.loops[0].to_string());
        req.machine = "toaster".into();
        assert_eq!(svc.compile_body(&req).unwrap_err().kind(), "bad_request");
    }
}
