//! Request execution: decode → cache-fronted compile → canonical body.

use crate::faults::{CompileFault, FaultPlan};
use crate::proto::{CompileRequest, ServeError};
use std::sync::Arc;
use sv_core::{compile_cached, CacheConfig, CacheOutcome, CompileCache};
use sv_machine::MachineRegistry;

/// The stateless-per-request core of the server: a [`CompileCache`] plus
/// the machine registry and the decode/compile/render path. Shared
/// across connections and worker threads behind an `Arc`.
#[derive(Debug)]
pub struct ServeService {
    cache: CompileCache,
    registry: MachineRegistry,
    faults: Option<Arc<FaultPlan>>,
}

impl ServeService {
    /// Build a service around a cache with the given sizing/placement,
    /// resolving machine names against the builtin registry.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the disk tier's directory cannot be
    /// created.
    pub fn new(cache_cfg: CacheConfig) -> std::io::Result<ServeService> {
        ServeService::with_registry(cache_cfg, MachineRegistry::builtin())
    }

    /// [`ServeService::new`] with an explicit registry (builtins plus
    /// `--machines`-dir entries, or a fully custom set in tests).
    ///
    /// # Errors
    ///
    /// As [`ServeService::new`].
    pub fn with_registry(
        cache_cfg: CacheConfig,
        registry: MachineRegistry,
    ) -> std::io::Result<ServeService> {
        Ok(ServeService { cache: CompileCache::new(cache_cfg)?, registry, faults: None })
    }

    /// A service with a default in-memory-only cache and the builtin
    /// registry.
    pub fn in_memory() -> ServeService {
        ServeService {
            cache: CompileCache::in_memory(),
            registry: MachineRegistry::builtin(),
            faults: None,
        }
    }

    /// Attach a chaos fault plan: each [`ServeService::compile_body`]
    /// call consults it and may panic (to be caught by the batcher's
    /// per-entry isolation) or stall. The same plan should be installed
    /// as the cache's [`sv_core::DiskFaults`] injector via
    /// [`CacheConfig::faults`] so one seed drives the whole run.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Execute one compile request: parse the loop text, resolve machine
    /// (registry name or inline spec) and driver configuration, and run
    /// the cache-fronted compile. The returned body is the canonical
    /// result rendering — byte-identical for identical requests
    /// regardless of which tier served it, and byte-identical between a
    /// registered name and an inline spec describing the same machine
    /// (the cache key is built from the machine's canonical encoding).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for unparseable loop text, an unknown
    /// machine or a malformed inline spec, [`ServeError::Compile`] when
    /// the driver rejects the loop.
    pub fn compile_body(
        &self,
        req: &CompileRequest,
    ) -> Result<(Arc<str>, CacheOutcome), ServeError> {
        if let Some(plan) = &self.faults {
            match plan.compile_fault() {
                CompileFault::None => {}
                CompileFault::Panic => {
                    // Injected poison: must be contained by the batcher's
                    // per-entry catch_unwind, answering only this request.
                    panic!("injected compile panic (chaos fault plan)");
                }
                CompileFault::Slow(d) => std::thread::sleep(d),
            }
        }
        let looop = sv_ir::parse_loop(&req.loop_text).map_err(|e| ServeError::BadRequest {
            message: format!("unparseable loop text: {e}"),
        })?;
        let machine = req.machine_config(&self.registry)?;
        let cfg = req.driver_config();
        compile_cached(&looop, &machine, &cfg, &self.cache)
            .map_err(|e| ServeError::Compile(Box::new(e)))
    }

    /// The underlying cache (stats, direct seeding in tests).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Per-shard memory-tier lookup/hit counters, in shard-index order
    /// (the `metrics` verb's `shards` section).
    pub fn shard_stats(&self) -> Vec<sv_core::ShardStats> {
        self.cache.shard_stats()
    }

    /// The machine registry requests resolve against.
    pub fn registry(&self) -> &MachineRegistry {
        &self.registry
    }

    /// Render the `machines` verb's result object: every registered
    /// machine in sorted name order with its canonical hash and source.
    pub fn machines_object(&self) -> String {
        let entries: Vec<String> = self
            .registry
            .iter()
            .map(|(name, m, source)| {
                format!(
                    "{{\"name\":\"{}\",\"machine\":\"{}\",\"hash\":\"{}\",\"source\":\"{}\"}}",
                    crate::json::escape(name),
                    crate::json::escape(&m.name),
                    m.canonical_hash(),
                    crate::json::escape(&source.to_string()),
                )
            })
            .collect();
        format!("{{\"machines\":[{}]}}", entries.join(","))
    }

    /// Render the `stats` verb's `cache` sub-object.
    pub fn stats_object(&self) -> String {
        let s = self.cache.stats();
        format!(
            "{{\"mem_hits\":{},\"disk_hits\":{},\"misses\":{},\"evictions\":{},\
             \"disk_errors\":{},\"recovered\":{},\"entries\":{},\"bytes\":{},\
             \"hit_rate\":{:.4}}}",
            s.mem_hits,
            s.disk_hits,
            s.misses,
            s.evictions,
            s.disk_errors,
            s.recovered,
            s.entries,
            s.bytes,
            s.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_machine::MachineConfig;
    use sv_workloads::benchmark;

    fn req_for(loop_text: String) -> CompileRequest {
        CompileRequest { loop_text, ..CompileRequest::default() }
    }

    #[test]
    fn compiles_suite_loop_and_caches() {
        let svc = ServeService::in_memory();
        let suite = benchmark("swim").expect("suite benchmark exists");
        let req = req_for(suite.loops[0].to_string());
        let (cold, o1) = svc.compile_body(&req).unwrap();
        assert_eq!(o1, CacheOutcome::Compiled);
        let (warm, o2) = svc.compile_body(&req).unwrap();
        assert_eq!(o2, CacheOutcome::Memory);
        assert_eq!(cold, warm);
        assert!(svc.stats_object().contains("\"mem_hits\":1"));
    }

    #[test]
    fn rejects_bad_loop_text_and_machine() {
        let svc = ServeService::in_memory();
        let e = svc.compile_body(&req_for("not a loop".into())).unwrap_err();
        assert_eq!(e.kind(), "bad_request");
        let suite = benchmark("swim").unwrap();
        let mut req = req_for(suite.loops[0].to_string());
        req.machine = "toaster".into();
        let e = svc.compile_body(&req).unwrap_err();
        assert_eq!(e.kind(), "bad_request");
        assert!(e.to_string().contains("figure1, paper"), "{e}");
    }

    #[test]
    fn inline_spec_equal_to_builtin_hits_the_same_cache_entry() {
        let svc = ServeService::in_memory();
        let suite = benchmark("swim").unwrap();
        let named = req_for(suite.loops[0].to_string());
        let (by_name, o1) = svc.compile_body(&named).unwrap();
        assert_eq!(o1, CacheOutcome::Compiled);
        // A reformatted inline spec of the same machine must be a warm
        // memory hit with byte-identical body: the v2 cache key is built
        // from the canonical machine encoding, not the request's text.
        let spec = MachineConfig::paper_default().to_spec();
        let ugly = format!("# inline copy\n{}", spec.replace(" = ", "   =   "));
        let inline =
            CompileRequest { machine_spec: Some(ugly), ..req_for(suite.loops[0].to_string()) };
        let (by_spec, o2) = svc.compile_body(&inline).unwrap();
        assert_eq!(o2, CacheOutcome::Memory);
        assert_eq!(by_name, by_spec);
    }

    #[test]
    fn machines_object_lists_registry_with_hashes() {
        let svc = ServeService::in_memory();
        let out = svc.machines_object();
        let fig_hash = MachineConfig::figure1().canonical_hash().to_string();
        let paper_hash = MachineConfig::paper_default().canonical_hash().to_string();
        assert!(
            out.starts_with("{\"machines\":[{\"name\":\"figure1\""),
            "sorted name order: {out}"
        );
        assert!(out.contains(&fig_hash), "{out}");
        assert!(out.contains(&paper_hash), "{out}");
        assert!(out.contains("\"source\":\"builtin\""), "{out}");
        assert!(out.contains("\"machine\":\"micro05-table1\""), "{out}");
    }
}
