//! The multi-client TCP front door.
//!
//! Each accepted connection registers its own client identity with the
//! batcher (weighted-fair admission, round-robin service — see
//! [`crate::batch`]) and gets a dedicated reader thread; responses are
//! written back by the drainer through the connection's sink, in that
//! connection's submission order. The accept loop:
//!
//! * is bounded by [`ServerConfig::max_clients`] — a connection past the
//!   bound is answered with one typed `overloaded` line (carrying the
//!   live `retry_after_ms` hint) and closed, never queued invisibly;
//! * survives client misbehavior: a disconnect, EOF mid-line, or failed
//!   accept handshake costs only that connection — the daemon keeps
//!   serving (the pre-multi-tenant loop died on the first accept error);
//! * winds down when the batcher closes (a `shutdown` verb from any
//!   client, or [`crate::Batcher::close`]): connection threads notice
//!   via a finite read timeout and exit even when their client keeps an
//!   idle connection open.

use crate::batch::{Batcher, Sink, DEFAULT_CLIENT};
use crate::proto::{error_response, parse_request, ServeError};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Accept-loop knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most simultaneous connections served; the next one is refused
    /// with a typed `overloaded` line.
    pub max_clients: usize,
    /// Fairness share registered for each connection (see
    /// [`Batcher::register_client`]).
    pub client_share: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { max_clients: 64, client_share: 1 }
    }
}

/// Parse one request line and submit it on behalf of `client`; admission
/// failures (parse, overload, shutdown) are answered immediately on
/// `sink` without occupying the queue.
fn handle_line(batcher: &Batcher, client: u64, line: &str, sink: &Sink) {
    if line.trim().is_empty() {
        return;
    }
    let outcome = match parse_request(line) {
        Ok(req) => {
            let id = req.id();
            batcher.submit_for(client, req, Arc::clone(sink)).err().map(|e| (id, e))
        }
        Err((id, e)) => Some((id, e)),
    };
    if let Some((id, e)) = outcome {
        let mut w = sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(w, "{}", error_response(id, &e));
        let _ = w.flush();
    }
}

/// Read request lines from `input` as the always-registered
/// [`DEFAULT_CLIENT`], submitting each to the batcher — the stdio
/// front-end (`svd` without `--tcp`) and the test harnesses.
pub fn serve_lines(input: impl BufRead, batcher: &Batcher, sink: &Sink) {
    for line in input.lines() {
        let Ok(line) = line else { break };
        handle_line(batcher, DEFAULT_CLIENT, &line, sink);
    }
}

/// Serve one accepted connection as registered client `client` until the
/// client hangs up or the batcher closes.
fn serve_conn(batcher: &Batcher, client: u64, stream: TcpStream) {
    // A finite read timeout lets this thread notice server shutdown even
    // when its client keeps an idle connection open.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return, // connection-local failure: drop this client only
    };
    let sink: Sink = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client EOF
            Ok(_) => {
                handle_line(batcher, client, &line, &sink);
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // Idle (or mid-line) timeout: keep any partial line
                // accumulated so far and poll the shutdown flag.
                if batcher.is_closed() {
                    return;
                }
            }
            Err(_) => return, // connection reset: this client is gone
        }
    }
}

/// The accept loop around a shared [`Batcher`].
pub struct Server {
    batcher: Arc<Batcher>,
    cfg: ServerConfig,
}

impl Server {
    /// Wrap a batcher in an accept loop.
    pub fn new(batcher: Arc<Batcher>, cfg: ServerConfig) -> Server {
        Server { batcher, cfg }
    }

    /// Accept and serve connections until the batcher closes (a
    /// `shutdown` verb or [`Batcher::close`]), then join every
    /// connection thread. The queue itself is *not* joined here — the
    /// caller still owns that (and the final drain).
    ///
    /// # Errors
    ///
    /// Only for listener-level setup failure (`set_nonblocking`);
    /// per-connection errors are contained.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.batcher.is_closed() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    // Reap finished connection threads so the bound
                    // tracks *live* clients, not historical ones.
                    conns.retain(|h| !h.is_finished());
                    if conns.len() >= self.cfg.max_clients {
                        refuse(stream, self.cfg.max_clients, self.batcher.retry_after_hint());
                        continue;
                    }
                    let client = self.batcher.register_client(self.cfg.client_share);
                    let b = Arc::clone(&self.batcher);
                    let spawned = std::thread::Builder::new()
                        .name(format!("sv-serve-conn-{peer}"))
                        .spawn(move || {
                            serve_conn(&b, client, stream);
                            b.deregister_client(client);
                        });
                    match spawned {
                        Ok(h) => conns.push(h),
                        Err(_) => self.batcher.deregister_client(client),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                // A failed accept (client vanished mid-handshake,
                // transient resource pressure) must never kill the
                // daemon: keep listening.
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        drop(listener);
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }
}

/// Answer an over-capacity connection with one typed `overloaded` line
/// and close it.
fn refuse(mut stream: TcpStream, max_clients: usize, retry_after_ms: u64) {
    let e = ServeError::Overloaded { cap: max_clients, retry_after_ms };
    let _ = writeln!(stream, "{}", error_response(0, &e));
    let _ = stream.flush();
}
