//! The bounded request queue, its batching drainer, and the drainer's
//! supervisor.
//!
//! All verbs flow through one FIFO queue drained by a single thread:
//!
//! * adjacent `compile` requests coalesce into a **batch** that flushes
//!   when it reaches [`BatchConfig::batch_max`], when the oldest queued
//!   request has waited [`BatchConfig::flush_ms`], or when nothing else
//!   can join it (a non-compile verb or shutdown is behind it);
//! * a flushed batch fans out onto [`sv_core::parallel::run_ordered`],
//!   which preserves the workspace's determinism guarantee: the worker
//!   count never changes response bytes or order;
//! * the queue is **bounded** — a submission that would push the queued
//!   compile weight past [`BatchConfig::queue_cap`] is rejected with
//!   [`ServeError::Overloaded`] instead of growing without limit, and a
//!   deadline that is already expired at admission is rejected
//!   immediately so it never occupies queue weight;
//! * `machines`, `stats` and `shutdown` ride the same queue, so a
//!   `stats` response reflects every request submitted before it,
//!   deterministically.
//!
//! ## Fault containment
//!
//! Each batch entry compiles under `catch_unwind`: a poisoned request
//! answers *itself* with a typed `internal` error instead of killing the
//! batch. The drainer itself runs under a **supervisor** thread that
//! holds the exactly-once response invariant: work the drainer has taken
//! off the queue sits in an *in-flight* ledger until the moment its
//! response has been written, so when the drainer dies mid-batch the
//! supervisor logs a typed `drainer_restart` event, re-queues precisely
//! the unanswered in-flight items (in order, at the queue front) and
//! respawns the drainer — no response is lost, none is duplicated. A
//! drainer that keeps dying without making progress is declared dead
//! after [`MAX_FRUITLESS_RESTARTS`] consecutive fruitless respawns; the
//! supervisor then fails every pending request with a typed `internal`
//! error and [`Batcher::join`] reports the failure, still typed, still
//! without killing the process.
//!
//! Responses are written to each request's sink in submission order by
//! the drainer thread alone, so per-connection output order always
//! matches input order.

use crate::faults::FaultPlan;
use crate::proto::{
    batch_response, error_object, error_response, ok_response, CompileRequest, Request,
    ServeError,
};
use crate::service::ServeService;
use std::collections::VecDeque;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use sv_core::parallel::run_ordered;

/// Where a response line goes (stdout, a TCP stream, or a test buffer).
pub type Sink = Arc<Mutex<dyn Write + Send>>;

/// Consecutive drainer respawns without a single response written before
/// the supervisor declares the drainer unrecoverable and fails pending
/// work with typed errors (instead of respawning forever).
pub const MAX_FRUITLESS_RESTARTS: u32 = 8;

/// Lock a mutex, recovering from poison: the supervisor design keeps the
/// queue and ledger consistent at every panic site, so a poisoned lock
/// only means "a drainer died somewhere" — exactly the situation the
/// supervisor exists to handle, never a reason to kill the daemon.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a panic payload for typed error messages and event logs.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Queue and batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest compile run flushed at once.
    pub batch_max: usize,
    /// Longest a queued compile waits for companions before flushing.
    pub flush_ms: u64,
    /// Maximum queued compile weight (one per compile, batch counts its
    /// length); submissions past this are rejected, never buffered.
    pub queue_cap: usize,
    /// Worker threads per flushed run (1 = inline serial).
    pub jobs: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { batch_max: 32, flush_ms: 2, queue_cap: 1024, jobs: 1 }
    }
}

/// One queued unit of work.
enum Work {
    Compile { id: u64, req: Box<CompileRequest> },
    Batch { id: u64, reqs: Vec<CompileRequest> },
    Machines { id: u64 },
    Stats { id: u64 },
    Shutdown { id: u64 },
}

impl Work {
    /// Queue weight: how many compiles this admits.
    fn weight(&self) -> usize {
        match self {
            Work::Compile { .. } => 1,
            Work::Batch { reqs, .. } => reqs.len(),
            Work::Machines { .. } | Work::Stats { .. } | Work::Shutdown { .. } => 0,
        }
    }

    /// The client correlation id.
    fn id(&self) -> u64 {
        match self {
            Work::Compile { id, .. }
            | Work::Batch { id, .. }
            | Work::Machines { id }
            | Work::Stats { id }
            | Work::Shutdown { id } => *id,
        }
    }
}

struct Item {
    work: Work,
    out: Sink,
    submitted: Instant,
}

#[derive(Default)]
struct Queue {
    items: VecDeque<Item>,
    /// Sum of queued [`Work::weight`]s.
    weight: usize,
    /// Set by `shutdown` or [`Batcher::close`]; stops admissions and
    /// flushes immediately.
    closed: bool,
}

/// Counters reported by the `stats` verb's `queue` object.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected with `overloaded`.
    pub rejected: u64,
    /// Requests rejected at admission because their deadline had already
    /// expired (they never occupy queue weight).
    pub deadline_rejected: u64,
    /// Individual compiles executed (batch members included).
    pub compiles: u64,
    /// Compile runs flushed to the worker pool.
    pub flushes: u64,
    /// Responses written (every taken request gets exactly one).
    pub responses: u64,
    /// Batch-entry panics contained by `catch_unwind` and answered with
    /// a typed `internal` error.
    pub panics_isolated: u64,
    /// Times the supervisor respawned a dead drainer.
    pub drainer_restarts: u64,
    /// In-flight items the supervisor re-queued after drainer deaths.
    pub requeued: u64,
}

struct Inner {
    svc: Arc<ServeService>,
    cfg: BatchConfig,
    q: Mutex<Queue>,
    cv: Condvar,
    /// The exactly-once ledger: items the drainer has taken off the
    /// queue but not yet answered, in response order. An item leaves the
    /// ledger in the same critical section that writes its response.
    in_flight: Mutex<VecDeque<Item>>,
    /// Set when the supervisor gave up (fruitless restarts); makes
    /// [`Batcher::join`] report a typed failure.
    failed: AtomicBool,
    faults: Option<Arc<FaultPlan>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    deadline_rejected: AtomicU64,
    compiles: AtomicU64,
    flushes: AtomicU64,
    responses: AtomicU64,
    panics_isolated: AtomicU64,
    drainer_restarts: AtomicU64,
    requeued: AtomicU64,
}

impl Inner {
    fn stats(&self) -> QueueStats {
        QueueStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_rejected: self.deadline_rejected.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
            drainer_restarts: self.drainer_restarts.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
        }
    }
}

/// The queue front-end plus its supervised drainer. Shared by every
/// connection; dropped (via [`Batcher::join`]) only after close.
pub struct Batcher {
    inner: Arc<Inner>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Start a batcher (and its supervised drainer) over a service.
    pub fn new(svc: Arc<ServeService>, cfg: BatchConfig) -> Batcher {
        Batcher::with_faults(svc, cfg, None)
    }

    /// [`Batcher::new`] with a chaos fault plan driving drainer panics
    /// and queue stalls (compile-level faults are the service's; disk
    /// faults are the cache's — install the same plan there).
    pub fn with_faults(
        svc: Arc<ServeService>,
        cfg: BatchConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Batcher {
        let inner = Arc::new(Inner {
            svc,
            cfg,
            q: Mutex::new(Queue::default()),
            cv: Condvar::new(),
            in_flight: Mutex::new(VecDeque::new()),
            failed: AtomicBool::new(false),
            faults,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
            drainer_restarts: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
        });
        let for_thread = Arc::clone(&inner);
        let supervisor = std::thread::Builder::new()
            .name("sv-serve-supervisor".into())
            .spawn(move || supervise(&for_thread))
            .expect("spawn supervisor");
        Batcher { inner, supervisor: Some(supervisor) }
    }

    /// Enqueue one decoded request; its response will be written to
    /// `out` by the drainer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::DeadlineExceeded`] when the request's deadline is
    /// already expired at admission, [`ServeError::ShuttingDown`] after
    /// shutdown/close. The caller reports these to the client itself —
    /// nothing was enqueued.
    pub fn submit(&self, request: Request, out: Sink) -> Result<(), ServeError> {
        let work = match request {
            Request::Compile { id, req } => Work::Compile { id, req },
            Request::Batch { id, reqs } => Work::Batch { id, reqs },
            Request::Machines { id } => Work::Machines { id },
            Request::Stats { id } => Work::Stats { id },
            Request::Shutdown { id } => Work::Shutdown { id },
        };
        // A deadline of zero is already expired the instant it is
        // submitted (deadlines are measured from submission): reject at
        // admission so it never occupies queue weight and never displaces
        // a servable request.
        if let Work::Compile { req, .. } = &work {
            if req.timeout == Some(Duration::ZERO) {
                self.inner.deadline_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded { timeout_ms: 0 });
            }
        }
        let w = work.weight();
        let mut q = lock_recover(&self.inner.q);
        if q.closed {
            return Err(ServeError::ShuttingDown);
        }
        if q.weight + w > self.inner.cfg.queue_cap {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { cap: self.inner.cfg.queue_cap });
        }
        q.weight += w;
        q.items.push_back(Item { work, out, submitted: Instant::now() });
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Stop admitting work and flush whatever is queued (used on stdin
    /// EOF / listener teardown; the `shutdown` verb does this itself).
    pub fn close(&self) {
        lock_recover(&self.inner.q).closed = true;
        self.inner.cv.notify_all();
    }

    /// Wait for the supervised drainer to finish every queued request
    /// and exit. Call after [`Batcher::close`] or a submitted
    /// `shutdown`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when the drainer died unrecoverably
    /// (pending requests were still answered, with typed errors) — the
    /// queue was drained either way, and the caller's process lives.
    pub fn join(mut self) -> Result<(), ServeError> {
        // Joining consumes the batcher, so nothing can submit after this:
        // closing here is always sound, and makes join self-sufficient
        // for callers that did not close explicitly.
        self.close();
        let result = match self.supervisor.take() {
            None => Ok(()),
            Some(h) => match h.join() {
                Ok(()) => Ok(()),
                Err(p) => Err(ServeError::Internal {
                    message: format!("supervisor panicked: {}", panic_message(p.as_ref())),
                }),
            },
        };
        if self.inner.failed.load(Ordering::Relaxed) {
            return Err(ServeError::Internal {
                message: format!(
                    "drainer died unrecoverably after {} restarts; pending requests were \
                     answered with typed errors",
                    self.inner.drainer_restarts.load(Ordering::Relaxed)
                ),
            });
        }
        result
    }

    /// Whether the queue has stopped admitting work (shutdown or
    /// [`Batcher::close`]). Lets accept loops wind down.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner.q).closed
    }

    /// Point-in-time queue counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.stats()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.close();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// One compile taken off the queue (the authoritative [`Item`] stays in
/// the in-flight ledger until its response is written).
struct RunEntry {
    id: u64,
    req: CompileRequest,
    out: Sink,
    submitted: Instant,
}

/// What the drainer decided to do with the queue head. Every variant
/// except `Exit` has its item(s) registered in the in-flight ledger.
enum Action {
    Run(Vec<RunEntry>),
    Batch { id: u64, reqs: Vec<CompileRequest>, out: Sink, submitted: Instant },
    Machines { id: u64, out: Sink },
    Stats { id: u64, out: Sink },
    Shutdown { id: u64, out: Sink },
    Exit,
}

/// Pop the next unit of work, blocking until a flush condition holds.
/// The popped item(s) move into the in-flight ledger *before* the queue
/// lock is released, so there is never an instant where taken work is
/// tracked nowhere.
fn next_action(inner: &Inner) -> Action {
    let flush = Duration::from_millis(inner.cfg.flush_ms);
    let mut q = lock_recover(&inner.q);
    loop {
        if q.items.is_empty() {
            if q.closed {
                return Action::Exit;
            }
            q = inner.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        if !matches!(q.items[0].work, Work::Compile { .. }) {
            let item = q.items.pop_front().expect("checked non-empty");
            q.weight -= item.work.weight();
            let action = match &item.work {
                Work::Batch { id, reqs } => Action::Batch {
                    id: *id,
                    reqs: reqs.clone(),
                    out: Arc::clone(&item.out),
                    submitted: item.submitted,
                },
                Work::Machines { id } => {
                    Action::Machines { id: *id, out: Arc::clone(&item.out) }
                }
                Work::Stats { id } => Action::Stats { id: *id, out: Arc::clone(&item.out) },
                Work::Shutdown { id } => {
                    Action::Shutdown { id: *id, out: Arc::clone(&item.out) }
                }
                Work::Compile { .. } => unreachable!("head checked non-compile"),
            };
            lock_recover(&inner.in_flight).push_back(item);
            return action;
        }
        // Head is a compile: measure the contiguous run that could flush.
        let run_len = q
            .items
            .iter()
            .take(inner.cfg.batch_max)
            .take_while(|i| matches!(i.work, Work::Compile { .. }))
            .count();
        let capped = run_len >= inner.cfg.batch_max;
        // Nothing more can ever join: a non-compile verb sits right
        // behind the run, so waiting out the timer buys nothing.
        let sealed = run_len < q.items.len();
        let deadline = q.items[0].submitted + flush;
        let now = Instant::now();
        if capped || sealed || q.closed || now >= deadline {
            q.weight -= run_len;
            let items: Vec<Item> = q.items.drain(..run_len).collect();
            let entries: Vec<RunEntry> = items
                .iter()
                .map(|item| match &item.work {
                    Work::Compile { id, req } => RunEntry {
                        id: *id,
                        req: (**req).clone(),
                        out: Arc::clone(&item.out),
                        submitted: item.submitted,
                    },
                    _ => unreachable!("runs hold only compiles"),
                })
                .collect();
            lock_recover(&inner.in_flight).extend(items);
            return Action::Run(entries);
        }
        let (guard, _) = inner
            .cv
            .wait_timeout(q, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        q = guard;
    }
}

/// Write one response line and retire its in-flight item — atomically
/// with respect to the supervisor, which takes the same ledger lock
/// before re-queueing. This single critical section is what makes the
/// exactly-once invariant hold across drainer deaths: an item is either
/// still in the ledger (unanswered, will be re-queued) or gone
/// (answered, will not be).
fn respond_and_retire(inner: &Inner, out: &Sink, expect_id: u64, line: &str) {
    let mut ledger = lock_recover(&inner.in_flight);
    {
        let mut w = lock_recover(out);
        // A dead sink (client hung up) only loses that client's response.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
    let retired = ledger.pop_front().expect("responding to an item not in the ledger");
    debug_assert_eq!(retired.work.id(), expect_id, "ledger order must match response order");
    inner.responses.fetch_add(1, Ordering::Relaxed);
}

/// Execute `reqs` (all submitted at `submitted`) on the worker pool,
/// returning per-request result bodies or errors in request order. Each
/// entry compiles under `catch_unwind`: one poisoned request yields one
/// typed `internal` error, never a dead batch or daemon.
fn execute(
    inner: &Inner,
    reqs: &[&CompileRequest],
    submitted: Instant,
) -> Vec<Result<Arc<str>, ServeError>> {
    // Deadlines are decided once, here, on the drainer thread — not
    // inside the workers — so the verdict is independent of worker
    // scheduling.
    let now = Instant::now();
    let expired: Vec<Option<u64>> = reqs
        .iter()
        .map(|r| match r.timeout {
            Some(t) if now.saturating_duration_since(submitted) > t => {
                Some(t.as_millis() as u64)
            }
            _ => None,
        })
        .collect();
    inner.flushes.fetch_add(1, Ordering::Relaxed);
    inner.compiles.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    run_ordered(reqs, inner.cfg.jobs, |i, req| match expired[i] {
        Some(timeout_ms) => Err(ServeError::DeadlineExceeded { timeout_ms }),
        None => match catch_unwind(AssertUnwindSafe(|| inner.svc.compile_body(req))) {
            Ok(result) => result.map(|(body, _)| body),
            Err(payload) => {
                inner.panics_isolated.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Internal {
                    message: format!(
                        "compile panicked (isolated to this request): {}",
                        panic_message(payload.as_ref())
                    ),
                })
            }
        },
    })
}

/// The drainer thread: pop, execute, respond, until closed and empty.
fn drain(inner: &Inner) {
    loop {
        if let Some(d) = inner.faults.as_ref().and_then(|p| p.stall()) {
            std::thread::sleep(d);
        }
        match next_action(inner) {
            Action::Exit => return,
            Action::Run(entries) => {
                let panic_at =
                    inner.faults.as_ref().and_then(|p| p.drainer_panic_point(entries.len()));
                if panic_at == Some(0) {
                    panic!("injected drainer panic (before batch execute)");
                }
                // One shared submission time keeps a run's deadline
                // verdicts as conservative as its oldest member.
                let oldest =
                    entries.iter().map(|e| e.submitted).min().expect("non-empty run");
                let reqs: Vec<&CompileRequest> = entries.iter().map(|e| &e.req).collect();
                let results = execute(inner, &reqs, oldest);
                for (k, (entry, result)) in entries.iter().zip(&results).enumerate() {
                    let line = match result {
                        Ok(body) => ok_response(entry.id, body),
                        Err(e) => error_response(entry.id, e),
                    };
                    respond_and_retire(inner, &entry.out, entry.id, &line);
                    if panic_at == Some(k + 1) {
                        panic!("injected drainer panic (mid-batch after {} responses)", k + 1);
                    }
                }
            }
            Action::Batch { id, reqs, out, submitted } => {
                let refs: Vec<&CompileRequest> = reqs.iter().collect();
                let results = execute(inner, &refs, submitted);
                let elements: Vec<String> = results
                    .iter()
                    .map(|r| match r {
                        Ok(body) => body.to_string(),
                        Err(e) => error_object(e),
                    })
                    .collect();
                respond_and_retire(inner, &out, id, &batch_response(id, &elements));
            }
            Action::Machines { id, out } => {
                respond_and_retire(
                    inner,
                    &out,
                    id,
                    &ok_response(id, &inner.svc.machines_object()),
                );
            }
            Action::Stats { id, out } => {
                let qs = inner.stats();
                let result = format!(
                    "{{\"cache\":{},\"queue\":{{\"submitted\":{},\"rejected\":{},\
                     \"deadline_rejected\":{},\"compiles\":{},\"flushes\":{},\
                     \"responses\":{},\"panics_isolated\":{},\"drainer_restarts\":{},\
                     \"requeued\":{}}}}}",
                    inner.svc.stats_object(),
                    qs.submitted,
                    qs.rejected,
                    qs.deadline_rejected,
                    qs.compiles,
                    qs.flushes,
                    // The response being built is not yet counted.
                    qs.responses + 1,
                    qs.panics_isolated,
                    qs.drainer_restarts,
                    qs.requeued,
                );
                respond_and_retire(inner, &out, id, &ok_response(id, &result));
            }
            Action::Shutdown { id, out } => {
                respond_and_retire(inner, &out, id, &ok_response(id, "{\"shutdown\":true}"));
                lock_recover(&inner.q).closed = true;
                inner.cv.notify_all();
            }
        }
    }
}

/// Move every unanswered in-flight item back to the queue front,
/// preserving order, and restore its weight. Called by the supervisor
/// between drainer incarnations (the drainer is dead, so nothing else
/// mutates the ledger).
fn requeue_in_flight(inner: &Inner) -> u64 {
    let mut q = lock_recover(&inner.q);
    let mut ledger = lock_recover(&inner.in_flight);
    let n = ledger.len() as u64;
    while let Some(item) = ledger.pop_back() {
        q.weight += item.work.weight();
        q.items.push_front(item);
    }
    inner.requeued.fetch_add(n, Ordering::Relaxed);
    n
}

/// Fail every pending request (queued and in-flight) with a typed
/// `internal` error and close the queue: the degraded-but-alive path
/// when the drainer cannot be kept running.
fn fail_pending(inner: &Inner, reason: &str) {
    inner.failed.store(true, Ordering::Relaxed);
    let items: Vec<Item> = {
        let mut q = lock_recover(&inner.q);
        q.closed = true;
        let mut ledger = lock_recover(&inner.in_flight);
        q.weight = 0;
        ledger.drain(..).chain(q.items.drain(..)).collect()
    };
    inner.cv.notify_all();
    for item in items {
        let e = ServeError::Internal { message: reason.to_string() };
        let mut w = lock_recover(&item.out);
        let _ = writeln!(w, "{}", error_response(item.work.id(), &e));
        let _ = w.flush();
        inner.responses.fetch_add(1, Ordering::Relaxed);
    }
}

/// The supervisor: spawn the drainer, and if it dies, log a typed event,
/// re-queue unanswered in-flight work exactly once, and respawn — until
/// the drainer exits cleanly or keeps dying without progress.
fn supervise(inner: &Arc<Inner>) {
    let mut fruitless = 0u32;
    loop {
        let for_drainer = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("sv-serve-drain".into())
            .spawn(move || drain(&for_drainer));
        let handle = match handle {
            Ok(h) => h,
            Err(e) => {
                fail_pending(inner, &format!("cannot spawn drainer: {e}"));
                return;
            }
        };
        let responses_before = inner.responses.load(Ordering::Relaxed);
        match handle.join() {
            Ok(()) => return, // clean exit: queue closed and drained
            Err(payload) => {
                let restarts = inner.drainer_restarts.fetch_add(1, Ordering::Relaxed) + 1;
                let progressed = inner.responses.load(Ordering::Relaxed) > responses_before;
                fruitless = if progressed { 0 } else { fruitless + 1 };
                let requeued = requeue_in_flight(inner);
                eprintln!(
                    "{{\"event\":\"drainer_restart\",\"restarts\":{restarts},\
                     \"requeued\":{requeued},\"fruitless\":{fruitless},\"panic\":\"{}\"}}",
                    crate::json::escape(&panic_message(payload.as_ref()))
                );
                if fruitless > MAX_FRUITLESS_RESTARTS {
                    fail_pending(
                        inner,
                        "drainer died repeatedly without progress; request failed by supervisor",
                    );
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use crate::proto::parse_request;
    use sv_workloads::benchmark;

    fn buffer() -> (Sink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (buf.clone() as Sink, buf)
    }

    fn suite_requests(n: usize) -> Vec<Request> {
        let suite = benchmark("swim").expect("swim suite exists");
        (0..n)
            .map(|i| {
                let l = &suite.loops[i % suite.loops.len()];
                parse_request(
                    &CompileRequest { loop_text: l.to_string(), ..CompileRequest::default() }
                        .to_wire(i as u64),
                )
                .expect("self-rendered request parses")
            })
            .collect()
    }

    fn run_to_bytes(jobs: usize, requests: Vec<Request>) -> Vec<u8> {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig { jobs, ..BatchConfig::default() });
        let (sink, buf) = buffer();
        for r in requests {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        b.join().unwrap();
        let bytes = buf.lock().unwrap().clone();
        bytes
    }

    #[test]
    fn worker_count_never_changes_response_bytes() {
        let serial = run_to_bytes(1, suite_requests(6));
        let parallel = run_to_bytes(4, suite_requests(6));
        assert!(!serial.is_empty());
        assert_eq!(
            String::from_utf8(serial).unwrap(),
            String::from_utf8(parallel).unwrap(),
            "jobs=1 and jobs=4 must produce identical bytes in identical order"
        );
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        let svc = Arc::new(ServeService::in_memory());
        // Huge batch_max + long flush keep submissions queued, so the
        // third compile must bounce off the cap deterministically.
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 64, flush_ms: 60_000, queue_cap: 2, jobs: 1 },
        );
        let (sink, _buf) = buffer();
        let mut reqs = suite_requests(3).into_iter();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        let e = b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { cap: 2 }));
        assert_eq!(b.stats().rejected, 1);
        b.close();
        b.join().unwrap();
    }

    #[test]
    fn zero_timeout_rejected_at_admission() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        let suite = benchmark("swim").unwrap();
        let req = CompileRequest {
            loop_text: suite.loops[0].to_string(),
            timeout: Some(Duration::ZERO),
            ..CompileRequest::default()
        };
        // Already expired at admission: typed rejection, nothing queued,
        // no queue weight consumed.
        let e = b
            .submit(Request::Compile { id: 9, req: Box::new(req) }, Arc::clone(&sink))
            .unwrap_err();
        assert!(matches!(e, ServeError::DeadlineExceeded { timeout_ms: 0 }));
        let st = b.stats();
        assert_eq!(st.deadline_rejected, 1);
        assert_eq!(st.submitted, 0, "an expired request must never occupy the queue");
        b.close();
        b.join().unwrap();
        assert!(buf.lock().unwrap().is_empty(), "nothing was enqueued, nothing answered");
    }

    #[test]
    fn shutdown_verb_acks_and_drains() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        for r in suite_requests(2) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.submit(Request::Stats { id: 90 }, Arc::clone(&sink)).unwrap();
        b.submit(Request::Shutdown { id: 99 }, Arc::clone(&sink)).unwrap();
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // Both compiles answered (in order), then stats, then the ack.
        assert!(lines.len() >= 4, "{out}");
        assert!(lines[0].contains("\"id\":0"), "{out}");
        assert!(lines[1].contains("\"id\":1"), "{out}");
        assert!(lines[2].contains("\"cache\":{"), "{out}");
        assert!(lines[lines.len() - 1].contains("\"shutdown\":true"), "{out}");
        // Stats ran after both compiles: it must report 2 lookups.
        assert!(lines[2].contains("\"compiles\":2"), "{out}");
        // Stats counts itself among the responses written so far.
        assert!(lines[2].contains("\"responses\":3"), "{out}");
    }

    #[test]
    fn injected_compile_panic_is_isolated_to_its_request() {
        let mut svc = ServeService::in_memory();
        // Panic on every compile: each request gets its own typed
        // internal error, the batch and the drainer survive.
        svc.set_faults(Arc::new(FaultPlan::new(
            1,
            FaultConfig { compile_panic: 1.0, ..FaultConfig::default() },
        )));
        let b = Batcher::new(Arc::new(svc), BatchConfig::default());
        let (sink, buf) = buffer();
        for r in suite_requests(3) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        let counters = Arc::clone(&b.inner);
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "every request answered exactly once: {out}");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"id\":{i}")), "{out}");
            assert!(line.contains("\"kind\":\"internal\""), "{out}");
        }
        assert_eq!(counters.stats().panics_isolated, 3);
    }

    #[test]
    fn supervisor_restarts_dead_drainer_with_exactly_one_response_each() {
        let svc = Arc::new(ServeService::in_memory());
        // Panic on (roughly) every run, at seeded points including
        // mid-batch; the supervisor must keep respawning and every
        // request must still be answered exactly once, in order.
        let plan = Arc::new(FaultPlan::new(
            11,
            FaultConfig { drainer_panic: 0.9, ..FaultConfig::default() },
        ));
        let b = Batcher::with_faults(svc, BatchConfig::default(), Some(plan));
        let (sink, buf) = buffer();
        let n = 12;
        for r in suite_requests(n) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        let counters = Arc::clone(&b.inner);
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), n, "exactly one response per request: {out}");
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.contains(&format!("\"id\":{i},")),
                "responses must stay in submission order: {out}"
            );
            assert!(line.contains("\"ok\":true"), "{out}");
        }
        let st = counters.stats();
        assert!(st.drainer_restarts > 0, "the fault plan must have killed the drainer");
        assert_eq!(st.responses, n as u64);
    }

    #[test]
    fn deterministic_bytes_survive_drainer_chaos() {
        // The same requests produce byte-identical ok-responses with and
        // without drainer panics: restarts change *when* work runs, never
        // what it answers.
        let calm = run_to_bytes(2, suite_requests(8));
        let svc = Arc::new(ServeService::in_memory());
        let plan = Arc::new(FaultPlan::new(
            5,
            FaultConfig { drainer_panic: 0.7, queue_stall: 0.3, stall_ms: 1, ..FaultConfig::default() },
        ));
        let b = Batcher::with_faults(svc, BatchConfig { jobs: 2, ..BatchConfig::default() }, Some(plan));
        let (sink, buf) = buffer();
        for r in suite_requests(8) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        b.join().unwrap();
        let chaotic = buf.lock().unwrap().clone();
        assert_eq!(
            String::from_utf8(calm).unwrap(),
            String::from_utf8(chaotic).unwrap(),
            "drainer deaths must not change a single response byte"
        );
    }
}
