//! The bounded request queue and batching drainer.
//!
//! All verbs flow through one FIFO queue drained by a single thread:
//!
//! * adjacent `compile` requests coalesce into a **batch** that flushes
//!   when it reaches [`BatchConfig::batch_max`], when the oldest queued
//!   request has waited [`BatchConfig::flush_ms`], or when nothing else
//!   can join it (a non-compile verb or shutdown is behind it);
//! * a flushed batch fans out onto [`sv_core::parallel::run_ordered`],
//!   which preserves the workspace's determinism guarantee: the worker
//!   count never changes response bytes or order;
//! * the queue is **bounded** — a submission that would push the queued
//!   compile weight past [`BatchConfig::queue_cap`] is rejected with
//!   [`ServeError::Overloaded`] instead of growing without limit;
//! * `machines`, `stats` and `shutdown` ride the same queue, so a
//!   `stats` response reflects every request submitted before it,
//!   deterministically.
//!
//! Responses are written to each request's sink in submission order by
//! the drainer thread alone, so per-connection output order always
//! matches input order.

use crate::proto::{
    batch_response, error_object, error_response, ok_response, CompileRequest, Request,
    ServeError,
};
use crate::service::ServeService;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use sv_core::parallel::run_ordered;

/// Where a response line goes (stdout, a TCP stream, or a test buffer).
pub type Sink = Arc<Mutex<dyn Write + Send>>;

/// Queue and batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest compile run flushed at once.
    pub batch_max: usize,
    /// Longest a queued compile waits for companions before flushing.
    pub flush_ms: u64,
    /// Maximum queued compile weight (one per compile, batch counts its
    /// length); submissions past this are rejected, never buffered.
    pub queue_cap: usize,
    /// Worker threads per flushed run (1 = inline serial).
    pub jobs: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { batch_max: 32, flush_ms: 2, queue_cap: 1024, jobs: 1 }
    }
}

/// One queued unit of work.
enum Work {
    Compile { id: u64, req: Box<CompileRequest> },
    Batch { id: u64, reqs: Vec<CompileRequest> },
    Machines { id: u64 },
    Stats { id: u64 },
    Shutdown { id: u64 },
}

impl Work {
    /// Queue weight: how many compiles this admits.
    fn weight(&self) -> usize {
        match self {
            Work::Compile { .. } => 1,
            Work::Batch { reqs, .. } => reqs.len(),
            Work::Machines { .. } | Work::Stats { .. } | Work::Shutdown { .. } => 0,
        }
    }
}

struct Item {
    work: Work,
    out: Sink,
    submitted: Instant,
}

#[derive(Default)]
struct Queue {
    items: VecDeque<Item>,
    /// Sum of queued [`Work::weight`]s.
    weight: usize,
    /// Set by `shutdown` or [`Batcher::close`]; stops admissions and
    /// flushes immediately.
    closed: bool,
}

/// Counters reported by the `stats` verb's `queue` object.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected with `overloaded`.
    pub rejected: u64,
    /// Individual compiles executed (batch members included).
    pub compiles: u64,
    /// Compile runs flushed to the worker pool.
    pub flushes: u64,
}

struct Inner {
    svc: Arc<ServeService>,
    cfg: BatchConfig,
    q: Mutex<Queue>,
    cv: Condvar,
    submitted: AtomicU64,
    rejected: AtomicU64,
    compiles: AtomicU64,
    flushes: AtomicU64,
}

/// The queue front-end plus its drainer thread. Shared by every
/// connection; dropped (via [`Batcher::join`]) only after close.
pub struct Batcher {
    inner: Arc<Inner>,
    drainer: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Start a batcher (and its drainer thread) over a service.
    pub fn new(svc: Arc<ServeService>, cfg: BatchConfig) -> Batcher {
        let inner = Arc::new(Inner {
            svc,
            cfg,
            q: Mutex::new(Queue::default()),
            cv: Condvar::new(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        });
        let for_thread = Arc::clone(&inner);
        let drainer = std::thread::Builder::new()
            .name("sv-serve-drain".into())
            .spawn(move || drain(&for_thread))
            .expect("spawn drainer");
        Batcher { inner, drainer: Some(drainer) }
    }

    /// Enqueue one decoded request; its response will be written to
    /// `out` by the drainer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] after shutdown/close. The caller
    /// reports these to the client itself — nothing was enqueued.
    pub fn submit(&self, request: Request, out: Sink) -> Result<(), ServeError> {
        let work = match request {
            Request::Compile { id, req } => Work::Compile { id, req },
            Request::Batch { id, reqs } => Work::Batch { id, reqs },
            Request::Machines { id } => Work::Machines { id },
            Request::Stats { id } => Work::Stats { id },
            Request::Shutdown { id } => Work::Shutdown { id },
        };
        let w = work.weight();
        let mut q = self.inner.q.lock().expect("serve queue poisoned");
        if q.closed {
            return Err(ServeError::ShuttingDown);
        }
        if q.weight + w > self.inner.cfg.queue_cap {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { cap: self.inner.cfg.queue_cap });
        }
        q.weight += w;
        q.items.push_back(Item { work, out, submitted: Instant::now() });
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Stop admitting work and flush whatever is queued (used on stdin
    /// EOF / listener teardown; the `shutdown` verb does this itself).
    pub fn close(&self) {
        self.inner.q.lock().expect("serve queue poisoned").closed = true;
        self.inner.cv.notify_all();
    }

    /// Wait for the drainer to finish every queued request and exit.
    /// Call after [`Batcher::close`] or a submitted `shutdown`.
    pub fn join(mut self) {
        if let Some(h) = self.drainer.take() {
            h.join().expect("drainer panicked");
        }
    }

    /// Whether the queue has stopped admitting work (shutdown or
    /// [`Batcher::close`]). Lets accept loops wind down.
    pub fn is_closed(&self) -> bool {
        self.inner.q.lock().expect("serve queue poisoned").closed
    }

    /// Point-in-time queue counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            compiles: self.inner.compiles.load(Ordering::Relaxed),
            flushes: self.inner.flushes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.close();
        if let Some(h) = self.drainer.take() {
            let _ = h.join();
        }
    }
}

/// What the drainer decided to do with the queue head.
enum Action {
    Run(Vec<Item>),
    One(Item),
    Exit,
}

/// Pop the next unit of work, blocking until a flush condition holds.
fn next_action(inner: &Inner) -> Action {
    let flush = Duration::from_millis(inner.cfg.flush_ms);
    let mut q = inner.q.lock().expect("serve queue poisoned");
    loop {
        if q.items.is_empty() {
            if q.closed {
                return Action::Exit;
            }
            q = inner.cv.wait(q).expect("serve queue poisoned");
            continue;
        }
        if !matches!(q.items[0].work, Work::Compile { .. }) {
            let item = q.items.pop_front().expect("checked non-empty");
            q.weight -= item.work.weight();
            return Action::One(item);
        }
        // Head is a compile: measure the contiguous run that could flush.
        let run_len = q
            .items
            .iter()
            .take(inner.cfg.batch_max)
            .take_while(|i| matches!(i.work, Work::Compile { .. }))
            .count();
        let capped = run_len >= inner.cfg.batch_max;
        // Nothing more can ever join: a non-compile verb sits right
        // behind the run, so waiting out the timer buys nothing.
        let sealed = run_len < q.items.len();
        let deadline = q.items[0].submitted + flush;
        let now = Instant::now();
        if capped || sealed || q.closed || now >= deadline {
            q.weight -= run_len;
            return Action::Run(q.items.drain(..run_len).collect());
        }
        let (guard, _) = inner
            .cv
            .wait_timeout(q, deadline - now)
            .expect("serve queue poisoned");
        q = guard;
    }
}

/// Write one response line and flush it out to the client.
fn respond(out: &Sink, line: &str) {
    let mut w = out.lock().expect("response sink poisoned");
    // A dead sink (client hung up) only loses that client's response.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// Execute `reqs` (all submitted at `submitted`) on the worker pool,
/// returning per-request result bodies or errors in request order.
fn execute(
    inner: &Inner,
    reqs: &[CompileRequest],
    submitted: Instant,
) -> Vec<Result<Arc<str>, ServeError>> {
    // Deadlines are decided once, here, on the drainer thread — not
    // inside the workers — so the verdict is independent of worker
    // scheduling.
    let now = Instant::now();
    let expired: Vec<Option<u64>> = reqs
        .iter()
        .map(|r| match r.timeout {
            Some(t) if now.saturating_duration_since(submitted) > t => {
                Some(t.as_millis() as u64)
            }
            _ => None,
        })
        .collect();
    inner.flushes.fetch_add(1, Ordering::Relaxed);
    inner.compiles.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    run_ordered(reqs, inner.cfg.jobs, |i, req| match expired[i] {
        Some(timeout_ms) => Err(ServeError::DeadlineExceeded { timeout_ms }),
        None => inner.svc.compile_body(req).map(|(body, _)| body),
    })
}

/// The drainer thread: pop, execute, respond, until closed and empty.
fn drain(inner: &Inner) {
    loop {
        match next_action(inner) {
            Action::Exit => return,
            Action::Run(items) => {
                let (reqs, meta): (Vec<CompileRequest>, Vec<(u64, Sink, Instant)>) = items
                    .into_iter()
                    .map(|item| match item.work {
                        Work::Compile { id, req } => (*req, (id, item.out, item.submitted)),
                        _ => unreachable!("runs hold only compiles"),
                    })
                    .unzip();
                // One shared submission time keeps a run's deadline
                // verdicts as conservative as its oldest member.
                let oldest = meta.iter().map(|(_, _, t)| *t).min().expect("non-empty run");
                let results = execute(inner, &reqs, oldest);
                for ((id, out, _), result) in meta.iter().zip(&results) {
                    match result {
                        Ok(body) => respond(out, &ok_response(*id, body)),
                        Err(e) => respond(out, &error_response(*id, e)),
                    }
                }
            }
            Action::One(item) => match item.work {
                Work::Batch { id, reqs } => {
                    let results = execute(inner, &reqs, item.submitted);
                    let elements: Vec<String> = results
                        .iter()
                        .map(|r| match r {
                            Ok(body) => body.to_string(),
                            Err(e) => error_object(e),
                        })
                        .collect();
                    respond(&item.out, &batch_response(id, &elements));
                }
                Work::Machines { id } => {
                    respond(&item.out, &ok_response(id, &inner.svc.machines_object()));
                }
                Work::Stats { id } => {
                    let qs = QueueStats {
                        submitted: inner.submitted.load(Ordering::Relaxed),
                        rejected: inner.rejected.load(Ordering::Relaxed),
                        compiles: inner.compiles.load(Ordering::Relaxed),
                        flushes: inner.flushes.load(Ordering::Relaxed),
                    };
                    let result = format!(
                        "{{\"cache\":{},\"queue\":{{\"submitted\":{},\"rejected\":{},\
                         \"compiles\":{},\"flushes\":{}}}}}",
                        inner.svc.stats_object(),
                        qs.submitted,
                        qs.rejected,
                        qs.compiles,
                        qs.flushes,
                    );
                    respond(&item.out, &ok_response(id, &result));
                }
                Work::Shutdown { id } => {
                    respond(&item.out, &ok_response(id, "{\"shutdown\":true}"));
                    inner.q.lock().expect("serve queue poisoned").closed = true;
                    inner.cv.notify_all();
                }
                Work::Compile { .. } => unreachable!("compiles flush as runs"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;
    use sv_workloads::benchmark;

    fn buffer() -> (Sink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (buf.clone() as Sink, buf)
    }

    fn suite_requests(n: usize) -> Vec<Request> {
        let suite = benchmark("swim").expect("swim suite exists");
        (0..n)
            .map(|i| {
                let l = &suite.loops[i % suite.loops.len()];
                parse_request(
                    &CompileRequest { loop_text: l.to_string(), ..CompileRequest::default() }
                        .to_wire(i as u64),
                )
                .expect("self-rendered request parses")
            })
            .collect()
    }

    fn run_to_bytes(jobs: usize, requests: Vec<Request>) -> Vec<u8> {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig { jobs, ..BatchConfig::default() });
        let (sink, buf) = buffer();
        for r in requests {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        b.join();
        let bytes = buf.lock().unwrap().clone();
        bytes
    }

    #[test]
    fn worker_count_never_changes_response_bytes() {
        let serial = run_to_bytes(1, suite_requests(6));
        let parallel = run_to_bytes(4, suite_requests(6));
        assert!(!serial.is_empty());
        assert_eq!(
            String::from_utf8(serial).unwrap(),
            String::from_utf8(parallel).unwrap(),
            "jobs=1 and jobs=4 must produce identical bytes in identical order"
        );
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        let svc = Arc::new(ServeService::in_memory());
        // Huge batch_max + long flush keep submissions queued, so the
        // third compile must bounce off the cap deterministically.
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 64, flush_ms: 60_000, queue_cap: 2, jobs: 1 },
        );
        let (sink, _buf) = buffer();
        let mut reqs = suite_requests(3).into_iter();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        let e = b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { cap: 2 }));
        assert_eq!(b.stats().rejected, 1);
        b.close();
        b.join();
    }

    #[test]
    fn zero_timeout_hits_deadline() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        let suite = benchmark("swim").unwrap();
        let req = CompileRequest {
            loop_text: suite.loops[0].to_string(),
            timeout: Some(Duration::ZERO),
            ..CompileRequest::default()
        };
        b.submit(Request::Compile { id: 9, req: Box::new(req) }, sink).unwrap();
        b.close();
        b.join();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(out.contains("\"kind\":\"deadline\""), "{out}");
        assert!(out.contains("\"id\":9"), "{out}");
    }

    #[test]
    fn shutdown_verb_acks_and_drains() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        for r in suite_requests(2) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.submit(Request::Stats { id: 90 }, Arc::clone(&sink)).unwrap();
        b.submit(Request::Shutdown { id: 99 }, Arc::clone(&sink)).unwrap();
        b.join();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // Both compiles answered (in order), then stats, then the ack.
        assert!(lines.len() >= 4, "{out}");
        assert!(lines[0].contains("\"id\":0"), "{out}");
        assert!(lines[1].contains("\"id\":1"), "{out}");
        assert!(lines[2].contains("\"cache\":{"), "{out}");
        assert!(lines[lines.len() - 1].contains("\"shutdown\":true"), "{out}");
        // Stats ran after both compiles: it must report 2 lookups.
        assert!(lines[2].contains("\"compiles\":2"), "{out}");
    }
}
