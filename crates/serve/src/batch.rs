//! The bounded multi-tenant request queue, its batching drainer, and the
//! drainer's supervisor.
//!
//! Every connection is a registered **client** with its own FIFO
//! sub-queue; one drainer thread serves them all:
//!
//! * admission is **weighted-fair**: the global compile weight is capped
//!   by [`BatchConfig::queue_cap`], and each registered client is capped
//!   at its share of that capacity (share-weighted, never below one
//!   slot), so a greedy connection fills only its own quota and is
//!   rejected with a typed [`ServeError::Overloaded`] — carrying a
//!   `retry_after_ms` hint computed from live queue depth — while other
//!   clients keep being admitted;
//! * the drainer gathers compile runs **round-robin** across client
//!   sub-queues (one item per client per cycle), so service order is
//!   fair while each client's own responses still arrive in its
//!   submission order; a run flushes when it reaches
//!   [`BatchConfig::batch_max`], when its oldest member has waited
//!   [`BatchConfig::flush_ms`], or when nothing else can join it (a
//!   non-compile verb is pending);
//! * a flushed run fans out onto [`sv_core::parallel::run_ordered`],
//!   which preserves the workspace's determinism guarantee: the worker
//!   count never changes response bytes or order;
//! * a deadline that is already expired at admission is rejected
//!   immediately so it never occupies queue weight;
//! * `machines`, `stats`, `metrics` and `shutdown` ride the same queue,
//!   so a `stats` response reflects every request the same client
//!   submitted before it, deterministically.
//!
//! Single-stream front-ends (stdio, in-process tests) submit as the
//! always-registered [`DEFAULT_CLIENT`], whose quota is then the whole
//! queue — the pre-multi-tenant behavior, byte for byte.
//!
//! ## Fault containment
//!
//! Each batch entry compiles under `catch_unwind`: a poisoned request
//! answers *itself* with a typed `internal` error instead of killing the
//! batch. The drainer itself runs under a **supervisor** thread that
//! holds the exactly-once response invariant: work the drainer has taken
//! off the queue sits in an *in-flight* ledger until the moment its
//! response has been written, so when the drainer dies mid-batch the
//! supervisor logs a typed `drainer_restart` event, re-queues precisely
//! the unanswered in-flight items (in order, at the queue front) and
//! respawns the drainer — no response is lost, none is duplicated. A
//! drainer that keeps dying without making progress is declared dead
//! after [`MAX_FRUITLESS_RESTARTS`] consecutive fruitless respawns; the
//! supervisor then fails every pending request with a typed `internal`
//! error and [`Batcher::join`] reports the failure, still typed, still
//! without killing the process.
//!
//! Responses are written to each request's sink in submission order by
//! the drainer thread alone, so per-connection output order always
//! matches input order.

use crate::faults::FaultPlan;
use crate::metrics::PhaseLatencies;
use crate::proto::{
    batch_response, error_object, error_response, ok_response, CompileRequest, Request,
    ServeError,
};
use crate::service::ServeService;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use sv_core::parallel::run_ordered;

/// Where a response line goes (stdout, a TCP stream, or a test buffer).
pub type Sink = Arc<Mutex<dyn Write + Send>>;

/// Consecutive drainer respawns without a single response written before
/// the supervisor declares the drainer unrecoverable and fails pending
/// work with typed errors (instead of respawning forever).
pub const MAX_FRUITLESS_RESTARTS: u32 = 8;

/// Lock a mutex, recovering from poison: the supervisor design keeps the
/// queue and ledger consistent at every panic site, so a poisoned lock
/// only means "a drainer died somewhere" — exactly the situation the
/// supervisor exists to handle, never a reason to kill the daemon.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a panic payload for typed error messages and event logs.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Queue and batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest compile run flushed at once.
    pub batch_max: usize,
    /// Longest a queued compile waits for companions before flushing.
    pub flush_ms: u64,
    /// Maximum queued compile weight (one per compile, batch counts its
    /// length); submissions past this are rejected, never buffered.
    pub queue_cap: usize,
    /// Worker threads per flushed run (1 = inline serial).
    pub jobs: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { batch_max: 32, flush_ms: 2, queue_cap: 1024, jobs: 1 }
    }
}

/// The shared always-registered client identity used by single-stream
/// front-ends (stdio) and in-process callers. Registered at queue
/// construction with share 1 and never removed, so a single-client
/// batcher behaves exactly like the pre-multi-tenant one: its quota is
/// the whole queue capacity.
pub const DEFAULT_CLIENT: u64 = 0;

/// One queued unit of work.
enum Work {
    Compile { id: u64, req: Box<CompileRequest> },
    Batch { id: u64, reqs: Vec<CompileRequest> },
    Machines { id: u64 },
    Stats { id: u64 },
    Metrics { id: u64 },
    Shutdown { id: u64 },
}

impl Work {
    /// Queue weight: how many compiles this admits.
    fn weight(&self) -> usize {
        match self {
            Work::Compile { .. } => 1,
            Work::Batch { reqs, .. } => reqs.len(),
            Work::Machines { .. }
            | Work::Stats { .. }
            | Work::Metrics { .. }
            | Work::Shutdown { .. } => 0,
        }
    }

    /// The client correlation id.
    fn id(&self) -> u64 {
        match self {
            Work::Compile { id, .. }
            | Work::Batch { id, .. }
            | Work::Machines { id }
            | Work::Stats { id }
            | Work::Metrics { id }
            | Work::Shutdown { id } => *id,
        }
    }
}

struct Item {
    work: Work,
    out: Sink,
    submitted: Instant,
    /// The registered client that submitted this (fairness accounting
    /// and re-queue targeting after drainer deaths).
    client: u64,
}

/// One client's private FIFO sub-queue.
struct ClientQ {
    items: VecDeque<Item>,
    /// Fairness share while registered (≥ 1).
    share: usize,
    /// Queued compile weight charged to this client.
    queued: usize,
    /// Live connections hold `true`; a deregistered client's entry
    /// lingers only until its queued items drain.
    registered: bool,
}

impl ClientQ {
    fn new(share: usize, registered: bool) -> ClientQ {
        ClientQ { items: VecDeque::new(), share: share.max(1), queued: 0, registered }
    }
}

struct Queue {
    /// Per-client sub-queues. A `BTreeMap` so round-robin traversal has
    /// a stable, deterministic order.
    clients: BTreeMap<u64, ClientQ>,
    /// Next id handed out by [`Batcher::register_client`].
    next_client: u64,
    /// The last client the drainer took work from; the next gather
    /// starts at the following id (wrapping), which is what makes the
    /// drain round-robin rather than lowest-id-wins.
    rr_cursor: u64,
    /// Sum of queued [`Work::weight`]s across all clients.
    weight: usize,
    /// Sum of registered clients' shares (the quota denominator).
    share_total: usize,
    /// Set by `shutdown` or [`Batcher::close`]; stops admissions and
    /// flushes immediately.
    closed: bool,
}

impl Default for Queue {
    fn default() -> Queue {
        let mut clients = BTreeMap::new();
        clients.insert(DEFAULT_CLIENT, ClientQ::new(1, true));
        Queue {
            clients,
            next_client: 1,
            // One before the smallest id (wrapping), so the first gather
            // starts at the lowest client id.
            rr_cursor: u64::MAX,
            weight: 0,
            share_total: 1,
            closed: false,
        }
    }
}

impl Queue {
    /// Items queued across every client.
    fn total_items(&self) -> usize {
        self.clients.values().map(|c| c.items.len()).sum()
    }

    /// Clients with queued work, in round-robin order: ids above the
    /// cursor first, then wrap-around.
    fn rr_order(&self) -> Vec<u64> {
        let mut after = Vec::new();
        let mut before = Vec::new();
        for (&id, c) in &self.clients {
            if c.items.is_empty() {
                continue;
            }
            if id > self.rr_cursor { after.push(id) } else { before.push(id) }
        }
        after.extend(before);
        after
    }

    /// Drop a sub-queue whose client has disconnected and fully drained
    /// (the default identity is permanent).
    fn prune(&mut self, id: u64) {
        if id == DEFAULT_CLIENT {
            return;
        }
        if let Some(c) = self.clients.get(&id) {
            if !c.registered && c.items.is_empty() {
                self.clients.remove(&id);
            }
        }
    }
}

/// Backoff hint for an `overloaded` rejection: roughly how long the
/// backlog queued ahead needs to drain — one flush interval per batch
/// the backlog fills, never zero so a hinted client always waits at
/// least a beat.
fn retry_hint(queued_weight: usize, cfg: &BatchConfig) -> u64 {
    let batches = (queued_weight / cfg.batch_max.max(1)) as u64 + 1;
    batches * cfg.flush_ms.max(1)
}

/// Counters reported by the `stats` verb's `queue` object.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected with `overloaded`.
    pub rejected: u64,
    /// Requests rejected at admission because their deadline had already
    /// expired (they never occupy queue weight).
    pub deadline_rejected: u64,
    /// Individual compiles executed (batch members included).
    pub compiles: u64,
    /// Compile runs flushed to the worker pool.
    pub flushes: u64,
    /// Responses written (every taken request gets exactly one).
    pub responses: u64,
    /// Batch-entry panics contained by `catch_unwind` and answered with
    /// a typed `internal` error.
    pub panics_isolated: u64,
    /// Times the supervisor respawned a dead drainer.
    pub drainer_restarts: u64,
    /// In-flight items the supervisor re-queued after drainer deaths.
    pub requeued: u64,
}

struct Inner {
    svc: Arc<ServeService>,
    cfg: BatchConfig,
    q: Mutex<Queue>,
    cv: Condvar,
    /// The exactly-once ledger: items the drainer has taken off the
    /// queue but not yet answered, in response order. An item leaves the
    /// ledger in the same critical section that writes its response.
    in_flight: Mutex<VecDeque<Item>>,
    /// Set when the supervisor gave up (fruitless restarts); makes
    /// [`Batcher::join`] report a typed failure.
    failed: AtomicBool,
    faults: Option<Arc<FaultPlan>>,
    /// Per-phase latency histograms backing the `metrics` verb.
    lat: PhaseLatencies,
    submitted: AtomicU64,
    rejected: AtomicU64,
    deadline_rejected: AtomicU64,
    compiles: AtomicU64,
    flushes: AtomicU64,
    responses: AtomicU64,
    panics_isolated: AtomicU64,
    drainer_restarts: AtomicU64,
    requeued: AtomicU64,
}

impl Inner {
    fn stats(&self) -> QueueStats {
        QueueStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_rejected: self.deadline_rejected.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
            drainer_restarts: self.drainer_restarts.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
        }
    }
}

/// The queue front-end plus its supervised drainer. Shared by every
/// connection; dropped (via [`Batcher::join`]) only after close.
pub struct Batcher {
    inner: Arc<Inner>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Start a batcher (and its supervised drainer) over a service.
    pub fn new(svc: Arc<ServeService>, cfg: BatchConfig) -> Batcher {
        Batcher::with_faults(svc, cfg, None)
    }

    /// [`Batcher::new`] with a chaos fault plan driving drainer panics
    /// and queue stalls (compile-level faults are the service's; disk
    /// faults are the cache's — install the same plan there).
    pub fn with_faults(
        svc: Arc<ServeService>,
        cfg: BatchConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Batcher {
        let inner = Arc::new(Inner {
            svc,
            cfg,
            q: Mutex::new(Queue::default()),
            cv: Condvar::new(),
            in_flight: Mutex::new(VecDeque::new()),
            failed: AtomicBool::new(false),
            faults,
            lat: PhaseLatencies::default(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
            drainer_restarts: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
        });
        let for_thread = Arc::clone(&inner);
        let supervisor = std::thread::Builder::new()
            .name("sv-serve-supervisor".into())
            .spawn(move || supervise(&for_thread))
            .expect("spawn supervisor");
        Batcher { inner, supervisor: Some(supervisor) }
    }

    /// [`Batcher::submit_for`] as the always-registered
    /// [`DEFAULT_CLIENT`] — the single-stream front door.
    ///
    /// # Errors
    ///
    /// As [`Batcher::submit_for`].
    pub fn submit(&self, request: Request, out: Sink) -> Result<(), ServeError> {
        self.submit_for(DEFAULT_CLIENT, request, out)
    }

    /// Register a new client identity with the given fairness share
    /// (clamped to ≥ 1) and return its id. Each TCP connection registers
    /// on accept and deregisters on disconnect.
    pub fn register_client(&self, share: usize) -> u64 {
        let mut q = lock_recover(&self.inner.q);
        let id = q.next_client;
        q.next_client += 1;
        q.share_total += share.max(1);
        q.clients.insert(id, ClientQ::new(share, true));
        id
    }

    /// Retire a client identity: it stops counting toward the quota
    /// denominator immediately and its sub-queue is dropped once its
    /// already-admitted items drain (they are still answered — the sink
    /// may be a dead socket, which only loses those bytes).
    pub fn deregister_client(&self, client: u64) {
        if client == DEFAULT_CLIENT {
            return; // the shared identity is permanent
        }
        let mut q = lock_recover(&self.inner.q);
        let freed = match q.clients.get_mut(&client) {
            Some(c) if c.registered => {
                c.registered = false;
                c.share
            }
            _ => 0,
        };
        q.share_total -= freed;
        q.prune(client);
    }

    /// The backoff hint an `overloaded` rejection would carry right now
    /// (used by accept loops that refuse connections past
    /// `--max-clients` with the same typed error).
    pub fn retry_after_hint(&self) -> u64 {
        let q = lock_recover(&self.inner.q);
        retry_hint(q.weight, &self.inner.cfg)
    }

    /// Enqueue one decoded request on behalf of a registered client; its
    /// response will be written to `out` by the drainer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity or the
    /// client's fair-share quota is exhausted (the error carries a
    /// `retry_after_ms` hint computed from live queue depth),
    /// [`ServeError::DeadlineExceeded`] when the request's deadline is
    /// already expired at admission, [`ServeError::ShuttingDown`] after
    /// shutdown/close. The caller reports these to the client itself —
    /// nothing was enqueued.
    pub fn submit_for(
        &self,
        client: u64,
        request: Request,
        out: Sink,
    ) -> Result<(), ServeError> {
        let work = match request {
            Request::Compile { id, req } => Work::Compile { id, req },
            Request::Batch { id, reqs } => Work::Batch { id, reqs },
            Request::Machines { id } => Work::Machines { id },
            Request::Stats { id } => Work::Stats { id },
            Request::Metrics { id } => Work::Metrics { id },
            Request::Shutdown { id } => Work::Shutdown { id },
        };
        // A deadline of zero is already expired the instant it is
        // submitted (deadlines are measured from submission): reject at
        // admission so it never occupies queue weight and never displaces
        // a servable request.
        if let Work::Compile { req, .. } = &work {
            if req.timeout == Some(Duration::ZERO) {
                self.inner.deadline_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded { timeout_ms: 0 });
            }
        }
        let w = work.weight();
        let cap = self.inner.cfg.queue_cap;
        let mut q = lock_recover(&self.inner.q);
        if q.closed {
            return Err(ServeError::ShuttingDown);
        }
        let hint = retry_hint(q.weight, &self.inner.cfg);
        if q.weight + w > cap {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { cap, retry_after_ms: hint });
        }
        let share_total = q.share_total.max(1);
        let Some(c) = q.clients.get_mut(&client) else {
            return Err(ServeError::Internal {
                message: format!("client {client} is not registered"),
            });
        };
        if !c.registered {
            return Err(ServeError::Internal {
                message: format!("client {client} has deregistered"),
            });
        }
        // Fair share of the capacity, weighted by this client's share
        // and never below one slot so light clients always get in.
        let quota = (cap * c.share / share_total).max(1);
        if c.queued + w > quota {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { cap: quota, retry_after_ms: hint });
        }
        c.queued += w;
        c.items.push_back(Item { work, out, submitted: Instant::now(), client });
        q.weight += w;
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Stop admitting work and flush whatever is queued (used on stdin
    /// EOF / listener teardown; the `shutdown` verb does this itself).
    pub fn close(&self) {
        lock_recover(&self.inner.q).closed = true;
        self.inner.cv.notify_all();
    }

    /// Wait for the supervised drainer to finish every queued request
    /// and exit. Call after [`Batcher::close`] or a submitted
    /// `shutdown`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when the drainer died unrecoverably
    /// (pending requests were still answered, with typed errors) — the
    /// queue was drained either way, and the caller's process lives.
    pub fn join(mut self) -> Result<(), ServeError> {
        // Joining consumes the batcher, so nothing can submit after this:
        // closing here is always sound, and makes join self-sufficient
        // for callers that did not close explicitly.
        self.close();
        let result = match self.supervisor.take() {
            None => Ok(()),
            Some(h) => match h.join() {
                Ok(()) => Ok(()),
                Err(p) => Err(ServeError::Internal {
                    message: format!("supervisor panicked: {}", panic_message(p.as_ref())),
                }),
            },
        };
        if self.inner.failed.load(Ordering::Relaxed) {
            return Err(ServeError::Internal {
                message: format!(
                    "drainer died unrecoverably after {} restarts; pending requests were \
                     answered with typed errors",
                    self.inner.drainer_restarts.load(Ordering::Relaxed)
                ),
            });
        }
        result
    }

    /// Whether the queue has stopped admitting work (shutdown or
    /// [`Batcher::close`]). Lets accept loops wind down.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner.q).closed
    }

    /// Point-in-time queue counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.stats()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.close();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// One compile taken off the queue (the authoritative [`Item`] stays in
/// the in-flight ledger until its response is written).
struct RunEntry {
    id: u64,
    req: CompileRequest,
    out: Sink,
    submitted: Instant,
}

/// What the drainer decided to do with the queue head. Every variant
/// except `Exit` has its item(s) registered in the in-flight ledger.
enum Action {
    Run(Vec<RunEntry>),
    Batch { id: u64, reqs: Vec<CompileRequest>, out: Sink, submitted: Instant },
    Machines { id: u64, out: Sink },
    Stats { id: u64, out: Sink },
    Metrics { id: u64, out: Sink },
    Shutdown { id: u64, out: Sink },
    Exit,
}

/// Pop the next unit of work, blocking until a flush condition holds.
/// Runs are gathered round-robin across client sub-queues (one item per
/// client per cycle), so no connection can monopolize the drainer while
/// each client's own responses stay in its submission order. The popped
/// item(s) move into the in-flight ledger *before* the queue lock is
/// released, so there is never an instant where taken work is tracked
/// nowhere.
fn next_action(inner: &Inner) -> Action {
    let flush = Duration::from_millis(inner.cfg.flush_ms);
    let mut q = lock_recover(&inner.q);
    loop {
        let order = q.rr_order();
        let Some(&first) = order.first() else {
            if q.closed {
                return Action::Exit;
            }
            q = inner.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            continue;
        };
        if !matches!(q.clients[&first].items[0].work, Work::Compile { .. }) {
            let c = q.clients.get_mut(&first).expect("candidate exists");
            let item = c.items.pop_front().expect("checked non-empty");
            let w = item.work.weight();
            c.queued -= w;
            q.weight -= w;
            q.rr_cursor = first;
            q.prune(first);
            let action = match &item.work {
                Work::Batch { id, reqs } => Action::Batch {
                    id: *id,
                    reqs: reqs.clone(),
                    out: Arc::clone(&item.out),
                    submitted: item.submitted,
                },
                Work::Machines { id } => {
                    Action::Machines { id: *id, out: Arc::clone(&item.out) }
                }
                Work::Stats { id } => Action::Stats { id: *id, out: Arc::clone(&item.out) },
                Work::Metrics { id } => {
                    Action::Metrics { id: *id, out: Arc::clone(&item.out) }
                }
                Work::Shutdown { id } => {
                    Action::Shutdown { id: *id, out: Arc::clone(&item.out) }
                }
                Work::Compile { .. } => unreachable!("head checked non-compile"),
            };
            lock_recover(&inner.in_flight).push_back(item);
            return action;
        }
        // The round-robin head is a compile: plan a run by cycling the
        // candidate clients, taking one queued compile per client per
        // cycle; a client stops contributing at its first non-compile.
        let mut taken: BTreeMap<u64, usize> = BTreeMap::new();
        let mut plan: Vec<u64> = Vec::new();
        let mut oldest = q.clients[&first].items[0].submitted;
        'gather: loop {
            let mut progressed = false;
            for &id in &order {
                let k = taken.get(&id).copied().unwrap_or(0);
                if let Some(item) = q.clients[&id].items.get(k) {
                    if matches!(item.work, Work::Compile { .. }) {
                        oldest = oldest.min(item.submitted);
                        plan.push(id);
                        *taken.entry(id).or_insert(0) += 1;
                        progressed = true;
                        if plan.len() >= inner.cfg.batch_max {
                            break 'gather;
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let capped = plan.len() >= inner.cfg.batch_max;
        // Nothing more can ever join: a non-compile verb is pending
        // somewhere, so waiting out the timer buys nothing.
        let sealed = plan.len() < q.total_items();
        let deadline = oldest + flush;
        let now = Instant::now();
        if capped || sealed || q.closed || now >= deadline {
            let mut items: Vec<Item> = Vec::with_capacity(plan.len());
            for &id in &plan {
                let c = q.clients.get_mut(&id).expect("planned client exists");
                let item = c.items.pop_front().expect("planned item exists");
                c.queued -= item.work.weight();
                items.push(item);
            }
            q.weight -= items.iter().map(|i| i.work.weight()).sum::<usize>();
            if let Some(&last) = plan.last() {
                q.rr_cursor = last;
            }
            for &id in &plan {
                q.prune(id);
            }
            let entries: Vec<RunEntry> = items
                .iter()
                .map(|item| match &item.work {
                    Work::Compile { id, req } => RunEntry {
                        id: *id,
                        req: (**req).clone(),
                        out: Arc::clone(&item.out),
                        submitted: item.submitted,
                    },
                    _ => unreachable!("runs hold only compiles"),
                })
                .collect();
            lock_recover(&inner.in_flight).extend(items);
            return Action::Run(entries);
        }
        let (guard, _) = inner
            .cv
            .wait_timeout(q, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        q = guard;
    }
}

/// Write one response line and retire its in-flight item — atomically
/// with respect to the supervisor, which takes the same ledger lock
/// before re-queueing. This single critical section is what makes the
/// exactly-once invariant hold across drainer deaths: an item is either
/// still in the ledger (unanswered, will be re-queued) or gone
/// (answered, will not be).
fn respond_and_retire(inner: &Inner, out: &Sink, expect_id: u64, line: &str) {
    let mut ledger = lock_recover(&inner.in_flight);
    {
        let mut w = lock_recover(out);
        // A dead sink (client hung up) only loses that client's response.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
    let retired = ledger.pop_front().expect("responding to an item not in the ledger");
    debug_assert_eq!(retired.work.id(), expect_id, "ledger order must match response order");
    inner.lat.total.record_ns(retired.submitted.elapsed().as_nanos() as u64);
    inner.responses.fetch_add(1, Ordering::Relaxed);
}

/// Execute `reqs` (all submitted at `submitted`) on the worker pool,
/// returning per-request result bodies or errors in request order. Each
/// entry compiles under `catch_unwind`: one poisoned request yields one
/// typed `internal` error, never a dead batch or daemon.
fn execute(
    inner: &Inner,
    reqs: &[&CompileRequest],
    submitted: Instant,
) -> Vec<Result<Arc<str>, ServeError>> {
    // Deadlines are decided once, here, on the drainer thread — not
    // inside the workers — so the verdict is independent of worker
    // scheduling.
    let now = Instant::now();
    let expired: Vec<Option<u64>> = reqs
        .iter()
        .map(|r| match r.timeout {
            Some(t) if now.saturating_duration_since(submitted) > t => {
                Some(t.as_millis() as u64)
            }
            _ => None,
        })
        .collect();
    inner.flushes.fetch_add(1, Ordering::Relaxed);
    inner.compiles.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    run_ordered(reqs, inner.cfg.jobs, |i, req| {
        let t0 = Instant::now();
        let verdict = match expired[i] {
            Some(timeout_ms) => Err(ServeError::DeadlineExceeded { timeout_ms }),
            None => match catch_unwind(AssertUnwindSafe(|| inner.svc.compile_body(req))) {
                Ok(result) => result.map(|(body, _)| body),
                Err(payload) => {
                    inner.panics_isolated.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Internal {
                        message: format!(
                            "compile panicked (isolated to this request): {}",
                            panic_message(payload.as_ref())
                        ),
                    })
                }
            },
        };
        inner.lat.execute.record_ns(t0.elapsed().as_nanos() as u64);
        verdict
    })
}

/// The drainer thread: pop, execute, respond, until closed and empty.
fn drain(inner: &Inner) {
    loop {
        if let Some(d) = inner.faults.as_ref().and_then(|p| p.stall()) {
            std::thread::sleep(d);
        }
        match next_action(inner) {
            Action::Exit => return,
            Action::Run(entries) => {
                let taken_at = Instant::now();
                for e in &entries {
                    inner
                        .lat
                        .queue_wait
                        .record_ns(taken_at.saturating_duration_since(e.submitted).as_nanos()
                            as u64);
                }
                let panic_at =
                    inner.faults.as_ref().and_then(|p| p.drainer_panic_point(entries.len()));
                if panic_at == Some(0) {
                    panic!("injected drainer panic (before batch execute)");
                }
                // One shared submission time keeps a run's deadline
                // verdicts as conservative as its oldest member.
                let oldest =
                    entries.iter().map(|e| e.submitted).min().expect("non-empty run");
                let reqs: Vec<&CompileRequest> = entries.iter().map(|e| &e.req).collect();
                let results = execute(inner, &reqs, oldest);
                for (k, (entry, result)) in entries.iter().zip(&results).enumerate() {
                    let line = match result {
                        Ok(body) => ok_response(entry.id, body),
                        Err(e) => error_response(entry.id, e),
                    };
                    respond_and_retire(inner, &entry.out, entry.id, &line);
                    if panic_at == Some(k + 1) {
                        panic!("injected drainer panic (mid-batch after {} responses)", k + 1);
                    }
                }
            }
            Action::Batch { id, reqs, out, submitted } => {
                inner.lat.queue_wait.record_ns(submitted.elapsed().as_nanos() as u64);
                let refs: Vec<&CompileRequest> = reqs.iter().collect();
                let results = execute(inner, &refs, submitted);
                let elements: Vec<String> = results
                    .iter()
                    .map(|r| match r {
                        Ok(body) => body.to_string(),
                        Err(e) => error_object(e),
                    })
                    .collect();
                respond_and_retire(inner, &out, id, &batch_response(id, &elements));
            }
            Action::Machines { id, out } => {
                respond_and_retire(
                    inner,
                    &out,
                    id,
                    &ok_response(id, &inner.svc.machines_object()),
                );
            }
            Action::Stats { id, out } => {
                let qs = inner.stats();
                let result = format!(
                    "{{\"cache\":{},\"queue\":{{\"submitted\":{},\"rejected\":{},\
                     \"deadline_rejected\":{},\"compiles\":{},\"flushes\":{},\
                     \"responses\":{},\"panics_isolated\":{},\"drainer_restarts\":{},\
                     \"requeued\":{}}}}}",
                    inner.svc.stats_object(),
                    qs.submitted,
                    qs.rejected,
                    qs.deadline_rejected,
                    qs.compiles,
                    qs.flushes,
                    // The response being built is not yet counted.
                    qs.responses + 1,
                    qs.panics_isolated,
                    qs.drainer_restarts,
                    qs.requeued,
                );
                respond_and_retire(inner, &out, id, &ok_response(id, &result));
            }
            Action::Metrics { id, out } => {
                let result = metrics_object(inner);
                respond_and_retire(inner, &out, id, &ok_response(id, &result));
            }
            Action::Shutdown { id, out } => {
                respond_and_retire(inner, &out, id, &ok_response(id, "{\"shutdown\":true}"));
                lock_recover(&inner.q).closed = true;
                inner.cv.notify_all();
            }
        }
    }
}

/// Render the `metrics` verb's result object: live queue/ledger gauges,
/// the queue counters, global and per-shard cache stats, fault counters
/// and per-phase latency percentiles — one canonical line.
fn metrics_object(inner: &Inner) -> String {
    let (depth, weight, clients) = {
        let q = lock_recover(&inner.q);
        let registered = q.clients.values().filter(|c| c.registered).count();
        (q.total_items(), q.weight, registered)
    };
    let ledger = lock_recover(&inner.in_flight).len();
    let qs = inner.stats();
    let occupancy =
        if qs.flushes == 0 { 0.0 } else { qs.compiles as f64 / qs.flushes as f64 };
    let faults = match &inner.faults {
        Some(p) => crate::metrics::faults_json(true, &p.injected()),
        None => crate::metrics::faults_json(false, &Default::default()),
    };
    format!(
        "{{\"queue\":{{\"depth\":{depth},\"weight\":{weight},\"in_flight\":{ledger},\
         \"clients\":{clients},\"batch_occupancy\":{occupancy:.4},\"submitted\":{},\
         \"rejected\":{},\"deadline_rejected\":{},\"compiles\":{},\"flushes\":{},\
         \"responses\":{},\"panics_isolated\":{},\"drainer_restarts\":{},\
         \"requeued\":{}}},\"cache\":{},\"shards\":{},\"faults\":{faults},\
         \"latency\":{}}}",
        qs.submitted,
        qs.rejected,
        qs.deadline_rejected,
        qs.compiles,
        qs.flushes,
        // The response being built is not yet counted.
        qs.responses + 1,
        qs.panics_isolated,
        qs.drainer_restarts,
        qs.requeued,
        inner.svc.stats_object(),
        crate::metrics::shards_json(&inner.svc.shard_stats()),
        inner.lat.to_json(),
    )
}

/// Move every unanswered in-flight item back to the front of its
/// client's sub-queue, preserving per-client order, and restore its
/// weight. Called by the supervisor between drainer incarnations (the
/// drainer is dead, so nothing else mutates the ledger). A client that
/// disconnected and was pruned gets its entry recreated unregistered,
/// just long enough to drain.
fn requeue_in_flight(inner: &Inner) -> u64 {
    let mut q = lock_recover(&inner.q);
    let mut ledger = lock_recover(&inner.in_flight);
    let n = ledger.len() as u64;
    while let Some(item) = ledger.pop_back() {
        let w = item.work.weight();
        q.weight += w;
        let c = q
            .clients
            .entry(item.client)
            .or_insert_with(|| ClientQ::new(1, false));
        c.queued += w;
        c.items.push_front(item);
    }
    inner.requeued.fetch_add(n, Ordering::Relaxed);
    n
}

/// Fail every pending request (queued and in-flight) with a typed
/// `internal` error and close the queue: the degraded-but-alive path
/// when the drainer cannot be kept running.
fn fail_pending(inner: &Inner, reason: &str) {
    inner.failed.store(true, Ordering::Relaxed);
    let items: Vec<Item> = {
        let mut q = lock_recover(&inner.q);
        q.closed = true;
        let mut ledger = lock_recover(&inner.in_flight);
        q.weight = 0;
        let mut queued = Vec::new();
        for c in q.clients.values_mut() {
            c.queued = 0;
            queued.extend(c.items.drain(..));
        }
        ledger.drain(..).chain(queued).collect()
    };
    inner.cv.notify_all();
    for item in items {
        let e = ServeError::Internal { message: reason.to_string() };
        let mut w = lock_recover(&item.out);
        let _ = writeln!(w, "{}", error_response(item.work.id(), &e));
        let _ = w.flush();
        inner.responses.fetch_add(1, Ordering::Relaxed);
    }
}

/// The supervisor: spawn the drainer, and if it dies, log a typed event,
/// re-queue unanswered in-flight work exactly once, and respawn — until
/// the drainer exits cleanly or keeps dying without progress.
fn supervise(inner: &Arc<Inner>) {
    let mut fruitless = 0u32;
    loop {
        let for_drainer = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("sv-serve-drain".into())
            .spawn(move || drain(&for_drainer));
        let handle = match handle {
            Ok(h) => h,
            Err(e) => {
                fail_pending(inner, &format!("cannot spawn drainer: {e}"));
                return;
            }
        };
        let responses_before = inner.responses.load(Ordering::Relaxed);
        match handle.join() {
            Ok(()) => return, // clean exit: queue closed and drained
            Err(payload) => {
                let restarts = inner.drainer_restarts.fetch_add(1, Ordering::Relaxed) + 1;
                let progressed = inner.responses.load(Ordering::Relaxed) > responses_before;
                fruitless = if progressed { 0 } else { fruitless + 1 };
                let requeued = requeue_in_flight(inner);
                eprintln!(
                    "{{\"event\":\"drainer_restart\",\"restarts\":{restarts},\
                     \"requeued\":{requeued},\"fruitless\":{fruitless},\"panic\":\"{}\"}}",
                    crate::json::escape(&panic_message(payload.as_ref()))
                );
                if fruitless > MAX_FRUITLESS_RESTARTS {
                    fail_pending(
                        inner,
                        "drainer died repeatedly without progress; request failed by supervisor",
                    );
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use crate::proto::parse_request;
    use sv_workloads::benchmark;

    fn buffer() -> (Sink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (buf.clone() as Sink, buf)
    }

    fn suite_requests(n: usize) -> Vec<Request> {
        let suite = benchmark("swim").expect("swim suite exists");
        (0..n)
            .map(|i| {
                let l = &suite.loops[i % suite.loops.len()];
                parse_request(
                    &CompileRequest { loop_text: l.to_string(), ..CompileRequest::default() }
                        .to_wire(i as u64),
                )
                .expect("self-rendered request parses")
            })
            .collect()
    }

    fn run_to_bytes(jobs: usize, requests: Vec<Request>) -> Vec<u8> {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig { jobs, ..BatchConfig::default() });
        let (sink, buf) = buffer();
        for r in requests {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        b.join().unwrap();
        let bytes = buf.lock().unwrap().clone();
        bytes
    }

    #[test]
    fn worker_count_never_changes_response_bytes() {
        let serial = run_to_bytes(1, suite_requests(6));
        let parallel = run_to_bytes(4, suite_requests(6));
        assert!(!serial.is_empty());
        assert_eq!(
            String::from_utf8(serial).unwrap(),
            String::from_utf8(parallel).unwrap(),
            "jobs=1 and jobs=4 must produce identical bytes in identical order"
        );
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        let svc = Arc::new(ServeService::in_memory());
        // Huge batch_max + long flush keep submissions queued, so the
        // third compile must bounce off the cap deterministically.
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 64, flush_ms: 60_000, queue_cap: 2, jobs: 1 },
        );
        let (sink, _buf) = buffer();
        let mut reqs = suite_requests(3).into_iter();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        let e = b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { cap: 2, .. }));
        assert!(e.retry_after().unwrap() > Duration::ZERO, "hint must be non-zero");
        assert_eq!(b.stats().rejected, 1);
        b.close();
        b.join().unwrap();
    }

    #[test]
    fn retry_hint_grows_with_queue_depth() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 2, flush_ms: 60_000, queue_cap: 64, jobs: 1 },
        );
        let (sink, _buf) = buffer();
        let empty_hint = b.retry_after_hint();
        for r in suite_requests(6) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        // Six queued compiles at batch_max=2 is (at least) three more
        // flush intervals of backlog than an empty queue.
        assert!(
            b.retry_after_hint() > empty_hint,
            "{} vs {empty_hint}",
            b.retry_after_hint()
        );
        b.close();
        b.join().unwrap();
    }

    #[test]
    fn greedy_client_is_capped_at_its_share_not_the_whole_queue() {
        let svc = Arc::new(ServeService::in_memory());
        // Long flush + big batch keep everything queued during the test.
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 64, flush_ms: 60_000, queue_cap: 9, jobs: 1 },
        );
        let greedy = b.register_client(1);
        let light = b.register_client(1);
        // Default client (share 1) + two registered: share_total = 3, so
        // each client's quota is 9/3 = 3.
        let (sink, _buf) = buffer();
        let mut reqs = suite_requests(9).into_iter();
        for _ in 0..3 {
            b.submit_for(greedy, reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        }
        let e = b.submit_for(greedy, reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(
            matches!(e, ServeError::Overloaded { cap: 3, .. }),
            "greedy must bounce off its quota, got {e:?}"
        );
        // The light client still gets its full share.
        for _ in 0..3 {
            b.submit_for(light, reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        }
        let e = b.submit_for(light, reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { cap: 3, .. }));
        b.close();
        b.join().unwrap();
    }

    #[test]
    fn drain_round_robins_across_clients() {
        let svc = Arc::new(ServeService::in_memory());
        // Nothing flushes until close(): deadline far away, batch_max
        // bigger than the workload, no non-compile verbs queued.
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 64, flush_ms: 60_000, queue_cap: 64, jobs: 1 },
        );
        let a = b.register_client(1);
        let c = b.register_client(1);
        let (sink, buf) = buffer();
        let mut reqs = suite_requests(8).into_iter();
        // Client a gets ids 0..4 first, then client c gets ids 4..8: a
        // FIFO drain would answer all of a before any of c.
        let mut ids = (0..8u64).map(|i| {
            let Request::Compile { req, .. } = reqs.next().unwrap() else { panic!() };
            Request::Compile { id: i, req }
        });
        for _ in 0..4 {
            b.submit_for(a, ids.next().unwrap(), Arc::clone(&sink)).unwrap();
        }
        for _ in 0..4 {
            b.submit_for(c, ids.next().unwrap(), Arc::clone(&sink)).unwrap();
        }
        b.close();
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let order: Vec<u64> = out
            .lines()
            .map(|l| {
                let rest = l.strip_prefix("{\"id\":").unwrap();
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert_eq!(
            order,
            vec![0, 4, 1, 5, 2, 6, 3, 7],
            "responses must interleave one per client per cycle: {out}"
        );
    }

    #[test]
    fn deregistered_client_frees_its_share() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(
            svc,
            BatchConfig { batch_max: 64, flush_ms: 60_000, queue_cap: 8, jobs: 1 },
        );
        let a = b.register_client(3);
        // default(1) + a(3): quota for default is 8*1/4 = 2.
        let (sink, _buf) = buffer();
        let mut reqs = suite_requests(6).into_iter();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        let e = b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { cap: 2, .. }));
        // After a disconnects, the default client has the queue to
        // itself again (quota 8) and submitting as a is refused.
        b.deregister_client(a);
        b.submit(reqs.next().unwrap(), Arc::clone(&sink)).unwrap();
        let e = b.submit_for(a, reqs.next().unwrap(), Arc::clone(&sink)).unwrap_err();
        assert!(matches!(e, ServeError::Internal { .. }), "{e:?}");
        b.close();
        b.join().unwrap();
    }

    #[test]
    fn metrics_verb_reports_gauges_shards_and_latency() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        for r in suite_requests(3) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.submit(Request::Metrics { id: 50 }, Arc::clone(&sink)).unwrap();
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let line = out.lines().last().unwrap();
        assert!(line.contains("\"id\":50,\"ok\":true"), "{line}");
        for field in [
            "\"depth\":",
            "\"in_flight\":",
            "\"clients\":1",
            "\"batch_occupancy\":",
            "\"shards\":[{\"lookups\":",
            "\"faults\":{\"armed\":false",
            "\"latency\":{\"queue_wait\":{\"count\":",
            "\"p99_us\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        assert!(!line.contains('\n'), "metrics must be one canonical line");
    }

    #[test]
    fn zero_timeout_rejected_at_admission() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        let suite = benchmark("swim").unwrap();
        let req = CompileRequest {
            loop_text: suite.loops[0].to_string(),
            timeout: Some(Duration::ZERO),
            ..CompileRequest::default()
        };
        // Already expired at admission: typed rejection, nothing queued,
        // no queue weight consumed.
        let e = b
            .submit(Request::Compile { id: 9, req: Box::new(req) }, Arc::clone(&sink))
            .unwrap_err();
        assert!(matches!(e, ServeError::DeadlineExceeded { timeout_ms: 0 }));
        let st = b.stats();
        assert_eq!(st.deadline_rejected, 1);
        assert_eq!(st.submitted, 0, "an expired request must never occupy the queue");
        b.close();
        b.join().unwrap();
        assert!(buf.lock().unwrap().is_empty(), "nothing was enqueued, nothing answered");
    }

    #[test]
    fn shutdown_verb_acks_and_drains() {
        let svc = Arc::new(ServeService::in_memory());
        let b = Batcher::new(svc, BatchConfig::default());
        let (sink, buf) = buffer();
        for r in suite_requests(2) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.submit(Request::Stats { id: 90 }, Arc::clone(&sink)).unwrap();
        b.submit(Request::Shutdown { id: 99 }, Arc::clone(&sink)).unwrap();
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // Both compiles answered (in order), then stats, then the ack.
        assert!(lines.len() >= 4, "{out}");
        assert!(lines[0].contains("\"id\":0"), "{out}");
        assert!(lines[1].contains("\"id\":1"), "{out}");
        assert!(lines[2].contains("\"cache\":{"), "{out}");
        assert!(lines[lines.len() - 1].contains("\"shutdown\":true"), "{out}");
        // Stats ran after both compiles: it must report 2 lookups.
        assert!(lines[2].contains("\"compiles\":2"), "{out}");
        // Stats counts itself among the responses written so far.
        assert!(lines[2].contains("\"responses\":3"), "{out}");
    }

    #[test]
    fn injected_compile_panic_is_isolated_to_its_request() {
        let mut svc = ServeService::in_memory();
        // Panic on every compile: each request gets its own typed
        // internal error, the batch and the drainer survive.
        svc.set_faults(Arc::new(FaultPlan::new(
            1,
            FaultConfig { compile_panic: 1.0, ..FaultConfig::default() },
        )));
        let b = Batcher::new(Arc::new(svc), BatchConfig::default());
        let (sink, buf) = buffer();
        for r in suite_requests(3) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        let counters = Arc::clone(&b.inner);
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "every request answered exactly once: {out}");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"id\":{i}")), "{out}");
            assert!(line.contains("\"kind\":\"internal\""), "{out}");
        }
        assert_eq!(counters.stats().panics_isolated, 3);
    }

    #[test]
    fn supervisor_restarts_dead_drainer_with_exactly_one_response_each() {
        let svc = Arc::new(ServeService::in_memory());
        // Panic on (roughly) every run, at seeded points including
        // mid-batch; the supervisor must keep respawning and every
        // request must still be answered exactly once, in order.
        let plan = Arc::new(FaultPlan::new(
            11,
            FaultConfig { drainer_panic: 0.9, ..FaultConfig::default() },
        ));
        let b = Batcher::with_faults(svc, BatchConfig::default(), Some(plan));
        let (sink, buf) = buffer();
        let n = 12;
        for r in suite_requests(n) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        let counters = Arc::clone(&b.inner);
        b.join().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), n, "exactly one response per request: {out}");
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.contains(&format!("\"id\":{i},")),
                "responses must stay in submission order: {out}"
            );
            assert!(line.contains("\"ok\":true"), "{out}");
        }
        let st = counters.stats();
        assert!(st.drainer_restarts > 0, "the fault plan must have killed the drainer");
        assert_eq!(st.responses, n as u64);
    }

    #[test]
    fn deterministic_bytes_survive_drainer_chaos() {
        // The same requests produce byte-identical ok-responses with and
        // without drainer panics: restarts change *when* work runs, never
        // what it answers.
        let calm = run_to_bytes(2, suite_requests(8));
        let svc = Arc::new(ServeService::in_memory());
        let plan = Arc::new(FaultPlan::new(
            5,
            FaultConfig { drainer_panic: 0.7, queue_stall: 0.3, stall_ms: 1, ..FaultConfig::default() },
        ));
        let b = Batcher::with_faults(svc, BatchConfig { jobs: 2, ..BatchConfig::default() }, Some(plan));
        let (sink, buf) = buffer();
        for r in suite_requests(8) {
            b.submit(r, Arc::clone(&sink)).unwrap();
        }
        b.close();
        b.join().unwrap();
        let chaotic = buf.lock().unwrap().clone();
        assert_eq!(
            String::from_utf8(calm).unwrap(),
            String::from_utf8(chaotic).unwrap(),
            "drainer deaths must not change a single response byte"
        );
    }
}
