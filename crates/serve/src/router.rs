//! Shard-by-canonical-hash multi-process mode.
//!
//! A router is a lightweight front process over N independent `svd`
//! instances ("shards"). Every compile request is forwarded to the shard
//! selected by its **v2 canonical request key** —
//! [`sv_core::request_key`], the pure hash of (canonical loop, canonical
//! machine encoding, canonical driver config) that already keys the
//! compile cache. Two consequences fall out of the key being a pure
//! function of the request:
//!
//! * **routing is only cache locality** — any shard computes the
//!   byte-identical response for any request, so failover to a different
//!   shard is always *correct*, it merely costs a cold compile;
//! * **repeat traffic concentrates** — identical requests always land on
//!   the same shard, so each shard's two-tier cache sees the full repeat
//!   rate of its slice of the keyspace.
//!
//! Per-shard health is tracked from live forwarding outcomes plus
//! explicit [`Router::health_check`] probes (a `stats` round-trip).
//! A request whose keyed shard fails is failed over through the
//! remaining shards in ring order; only when every shard refuses does
//! the client see a typed `unavailable` error. `shutdown` is broadcast
//! to all shards, acked to the client, and then shuts the router down.

use crate::json::escape;
use crate::proto::{
    error_response, ok_response, parse_request, CompileRequest, Request, ServeError,
};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use sv_machine::MachineRegistry;

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-shard connect timeout.
    pub connect_timeout_ms: u64,
    /// Per-shard response read timeout (compiles can be slow; this only
    /// bounds a shard that stopped answering entirely).
    pub read_timeout_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig { connect_timeout_ms: 1_000, read_timeout_ms: 30_000 }
    }
}

struct Shard {
    addr: String,
    healthy: AtomicBool,
}

/// One persistent connection from a router worker to a shard.
struct ShardConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ShardConn {
    fn connect(addr: &str, cfg: &RouterConfig) -> std::io::Result<ShardConn> {
        use std::net::ToSocketAddrs;
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable shard `{addr}`")))?;
        let stream =
            TcpStream::connect_timeout(&sock, Duration::from_millis(cfg.connect_timeout_ms))?;
        stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ShardConn { stream, reader })
    }

    /// Send one request line, read one response line.
    fn call(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.stream, "{line}")?;
        self.stream.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "shard hung up"));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// The routing front process: pure-hash shard selection, health
/// tracking, typed failover.
pub struct Router {
    shards: Vec<Shard>,
    registry: MachineRegistry,
    cfg: RouterConfig,
    closed: AtomicBool,
}

impl Router {
    /// Build a router over shard addresses (each a running `svd --tcp`).
    /// The registry must resolve the same machine names the shards do,
    /// so named requests key identically on both sides.
    pub fn new(addrs: Vec<String>, registry: MachineRegistry, cfg: RouterConfig) -> Router {
        assert!(!addrs.is_empty(), "a router needs at least one shard");
        Router {
            shards: addrs
                .into_iter()
                .map(|addr| Shard { addr, healthy: AtomicBool::new(true) })
                .collect(),
            registry,
            cfg,
            closed: AtomicBool::new(false),
        }
    }

    /// The shard index a compile request keys to: its v2 canonical
    /// request key modulo the shard count. Requests the router cannot
    /// resolve (unparseable loop, unknown machine) go to shard 0 —
    /// every shard renders the identical typed error, so the fallback
    /// only needs to be deterministic.
    pub fn shard_for(&self, req: &CompileRequest) -> usize {
        let n = self.shards.len() as u128;
        let Ok(looop) = sv_ir::parse_loop(&req.loop_text) else { return 0 };
        let Ok(machine) = req.machine_config(&self.registry) else { return 0 };
        let key = sv_core::request_key(&looop, &machine, &req.driver_config());
        (key.0 % n) as usize
    }

    /// Probe every shard with a `stats` round-trip, updating and
    /// returning the per-shard health flags.
    pub fn health_check(&self) -> Vec<bool> {
        self.shards
            .iter()
            .map(|s| {
                let up = ShardConn::connect(&s.addr, &self.cfg)
                    .and_then(|mut c| c.call("{\"verb\":\"stats\",\"id\":0}"))
                    .map(|resp| resp.contains("\"ok\":true"))
                    .unwrap_or(false);
                s.healthy.store(up, Ordering::Relaxed);
                up
            })
            .collect()
    }

    /// Whether the router has been shut down (a routed `shutdown` verb).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    /// Forward `line` starting at shard `target`, failing over through
    /// the remaining shards in ring order. Health flags are updated from
    /// the outcomes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unavailable`] when every shard fails.
    fn forward(
        &self,
        conns: &mut [Option<ShardConn>],
        target: usize,
        line: &str,
    ) -> Result<String, ServeError> {
        let n = self.shards.len();
        for k in 0..n {
            let i = (target + k) % n;
            match self.try_shard(conns, i, line) {
                Ok(resp) => {
                    self.shards[i].healthy.store(true, Ordering::Relaxed);
                    return Ok(resp);
                }
                Err(_) => self.shards[i].healthy.store(false, Ordering::Relaxed),
            }
        }
        Err(ServeError::Unavailable {
            message: format!("all {n} shard(s) failed for this request"),
        })
    }

    /// One shard attempt with a single reconnect: a dead persistent
    /// connection is replaced once before the shard is declared failed
    /// for this request.
    fn try_shard(
        &self,
        conns: &mut [Option<ShardConn>],
        i: usize,
        line: &str,
    ) -> std::io::Result<String> {
        if conns[i].is_none() {
            conns[i] = Some(ShardConn::connect(&self.shards[i].addr, &self.cfg)?);
        }
        if let Ok(resp) = conns[i].as_mut().expect("just connected").call(line) {
            return Ok(resp);
        }
        // The cached connection was stale (shard restarted, idle drop):
        // one fresh connection decides.
        conns[i] = Some(ShardConn::connect(&self.shards[i].addr, &self.cfg)?);
        conns[i].as_mut().expect("just connected").call(line)
    }

    /// The first shard currently marked healthy (stateless verbs), or
    /// shard 0 when none is.
    fn any_healthy(&self) -> usize {
        self.shards
            .iter()
            .position(|s| s.healthy.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Serve one client connection: route each line, write each response.
    fn handle_conn(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let Ok(reader) = stream.try_clone() else { return };
        let mut writer = stream;
        let mut reader = BufReader::new(reader);
        let mut conns: Vec<Option<ShardConn>> =
            (0..self.shards.len()).map(|_| None).collect();
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => {
                    let out = self.route_line(&mut conns, line.trim_end());
                    line.clear();
                    if let Some(out) = out {
                        if writeln!(writer, "{out}").is_err() {
                            return;
                        }
                        let _ = writer.flush();
                    }
                    if self.is_closed() {
                        return;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    if self.is_closed() {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    }

    /// Route one request line; `None` for blank lines.
    fn route_line(&self, conns: &mut [Option<ShardConn>], line: &str) -> Option<String> {
        if line.trim().is_empty() {
            return None;
        }
        let req = match parse_request(line) {
            Ok(req) => req,
            Err((id, e)) => return Some(error_response(id, &e)),
        };
        let id = req.id();
        let target = match &req {
            Request::Compile { req, .. } => self.shard_for(req),
            // A wire batch is one unit: it rides to its first member's
            // shard (an empty batch is stateless — any shard).
            Request::Batch { reqs, .. } => {
                reqs.first().map(|r| self.shard_for(r)).unwrap_or_else(|| self.any_healthy())
            }
            Request::Machines { .. } | Request::Stats { .. } | Request::Metrics { .. } => {
                self.any_healthy()
            }
            Request::Shutdown { .. } => {
                return Some(self.broadcast_shutdown(conns, line, id));
            }
        };
        Some(match self.forward(conns, target, line) {
            Ok(resp) => resp,
            Err(e) => error_response(id, &e),
        })
    }

    /// Forward `shutdown` to every shard (best effort), ack the client,
    /// and close the router.
    fn broadcast_shutdown(
        &self,
        conns: &mut [Option<ShardConn>],
        line: &str,
        id: u64,
    ) -> String {
        let mut acked = 0usize;
        for i in 0..self.shards.len() {
            if self.try_shard(conns, i, line).is_ok() {
                acked += 1;
            }
        }
        self.closed.store(true, Ordering::Relaxed);
        ok_response(
            id,
            &format!(
                "{{\"shutdown\":true,\"shards_acked\":{acked},\"shards\":{}}}",
                self.shards.len()
            ),
        )
    }

    /// Accept and route client connections until a `shutdown` is routed.
    /// Accept failures are contained exactly like the server's loop.
    ///
    /// # Errors
    ///
    /// Only for listener-level setup failure.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            let mut conns = Vec::new();
            while !self.is_closed() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        conns.push(scope.spawn(move || self.handle_conn(stream)));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(())
    }

    /// Render the router's own health view as one JSON line (logged at
    /// startup and probed by operators via `health_check`).
    pub fn health_object(&self) -> String {
        let entries: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"addr\":\"{}\",\"healthy\":{}}}",
                    escape(&s.addr),
                    s.healthy.load(Ordering::Relaxed)
                )
            })
            .collect();
        format!("{{\"shards\":[{}]}}", entries.join(","))
    }
}
