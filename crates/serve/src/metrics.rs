//! Latency histograms and the `metrics` verb's canonical rendering.
//!
//! A multi-tenant daemon needs one cheap, machine-readable answer to
//! "how is the server doing": the `metrics` verb returns a single-line
//! JSON object with live queue depth and in-flight ledger size, batch
//! occupancy, per-client registration counts, the cache's global and
//! per-shard hit rates, the chaos fault counters (all zero when no plan
//! is armed) and per-phase latency percentiles (p50/p95/p99) for the
//! three phases a request passes through:
//!
//! * **queue_wait** — submission → the drainer takes it for execution;
//! * **execute** — the compile itself (cache hits included);
//! * **total** — submission → its response line is written.
//!
//! Latencies are recorded into fixed power-of-two microsecond buckets
//! ([`LatencyHistogram`]): recording is one relaxed atomic increment, so
//! the hot path never takes a lock, and percentiles are reported as the
//! upper bound of the covering bucket — coarse, monotone, and cheap.
//! Everything else in the rendering is a deterministic counter, so a
//! golden test can pin the exact shape of the object (with the
//! free-running numbers masked).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// microseconds (bucket 0 also absorbs sub-microsecond samples), so the
/// top bucket is saturated at ~2^39 µs ≈ 6 days — far past any deadline.
const BUCKETS: usize = 40;

/// A fixed-bucket log2 latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Record one sample given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let us = ns / 1_000;
        let idx = if us <= 1 { 0 } else { (us.ilog2() as usize).min(BUCKETS - 1) };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `p`-th percentile (nearest-rank over buckets), reported as
    /// the covering bucket's upper bound in microseconds; 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Render the histogram's summary as a JSON object fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.count(),
            self.percentile_us(50.0),
            self.percentile_us(95.0),
            self.percentile_us(99.0)
        )
    }
}

/// The three per-phase histograms the batcher records into.
#[derive(Debug, Default)]
pub struct PhaseLatencies {
    /// Submission → taken off the queue for execution.
    pub queue_wait: LatencyHistogram,
    /// The compile itself (per batch entry, cache hits included).
    pub execute: LatencyHistogram,
    /// Submission → response line written.
    pub total: LatencyHistogram,
}

impl PhaseLatencies {
    /// Render the `latency` sub-object of the `metrics` verb.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_wait\":{},\"execute\":{},\"total\":{}}}",
            self.queue_wait.to_json(),
            self.execute.to_json(),
            self.total.to_json()
        )
    }
}

/// Render the per-shard cache section: one `{"lookups":..,"hits":..,
/// "hit_rate":..}` object per shard, in shard-index order.
pub fn shards_json(shards: &[sv_core::ShardStats]) -> String {
    let entries: Vec<String> = shards
        .iter()
        .map(|s| {
            format!(
                "{{\"lookups\":{},\"hits\":{},\"hit_rate\":{:.4}}}",
                s.lookups,
                s.hits,
                s.hit_rate()
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Render the fault-counter section (`armed` is whether a chaos plan is
/// installed; counters are all zero when it is not).
pub fn faults_json(armed: bool, c: &crate::faults::FaultCounters) -> String {
    format!(
        "{{\"armed\":{armed},\"disk_reads\":{},\"disk_writes\":{},\"torn_writes\":{},\
         \"orphan_tmps\":{},\"compile_panics\":{},\"slow_compiles\":{},\
         \"drainer_panics\":{},\"queue_stalls\":{},\"conn_drops\":{},\"client_bursts\":{}}}",
        c.disk_reads,
        c.disk_writes,
        c.torn_writes,
        c.orphan_tmps,
        c.compile_panics,
        c.slow_compiles,
        c.drainer_panics,
        c.queue_stalls,
        c.conn_drops,
        c.client_bursts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(50.0), 0);
        assert_eq!(h.to_json(), "{\"count\":0,\"p50_us\":0,\"p95_us\":0,\"p99_us\":0}");
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        // 99 samples at ~3 µs (bucket [2,4) → upper bound 4), one at
        // ~1000 µs (bucket [512,1024) → upper bound 1024).
        for _ in 0..99 {
            h.record_ns(3_000);
        }
        h.record_ns(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(50.0), 4);
        assert_eq!(h.percentile_us(95.0), 4);
        assert_eq!(h.percentile_us(99.0), 4);
        assert_eq!(h.percentile_us(100.0), 1024);
    }

    #[test]
    fn sub_microsecond_samples_land_in_bucket_zero() {
        let h = LatencyHistogram::default();
        h.record_ns(10);
        h.record_ns(999);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile_us(99.0), 2, "bucket 0's upper bound");
    }

    #[test]
    fn monotone_in_p() {
        let h = LatencyHistogram::default();
        for i in 0..1000u64 {
            h.record_ns(i * 10_000);
        }
        let (a, b, c) = (h.percentile_us(50.0), h.percentile_us(95.0), h.percentile_us(99.0));
        assert!(a <= b && b <= c, "{a} {b} {c}");
    }
}
