//! The newline-delimited JSON wire protocol.
//!
//! One request per line in, one response per line out (responses carry
//! the request's `id`, so a client can correlate even when rejections
//! interleave with batched results). Verbs:
//!
//! | verb | request fields | result |
//! |---|---|---|
//! | `compile` | `loop` (textual IR), `machine` *or* `machine_spec`, `strategy`, knobs | canonical compile result |
//! | `batch` | `requests`: array of compile bodies | array of per-request results |
//! | `machines` | — | the machine registry: names, canonical hashes, sources |
//! | `stats` | — | cache/queue counters |
//! | `metrics` | — | queue depth, batch occupancy, ledger size, per-shard cache hit rates, fault counters, per-phase latency percentiles |
//! | `shutdown` | — | ack; server drains and exits |
//!
//! A compile body names a registered machine (`machine`) or carries an
//! inline spec text (`machine_spec`, the `sv_machine::spec` grammar) —
//! never both. Because the cache key is built from the machine's
//! canonical encoding, an inline spec equal to a registered machine
//! produces byte-identical responses to the named request.
//!
//! Compile responses embed [`sv_core::cache::render_result`]'s canonical
//! rendering verbatim, so identical requests get byte-identical `result`
//! objects whether compiled, served from memory, or served from disk.

use crate::json::{self, Value};
use sv_core::{CompileError, DriverConfig, SelectiveConfig, Strategy};
use sv_machine::{MachineConfig, MachineRegistry};
use std::fmt;
use std::time::Duration;

/// A typed service-level failure (distinct from a compile failure, which
/// carries its own taxonomy from the driver).
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue (or the caller's fair share of it) is
    /// full; the client should back off.
    Overloaded {
        /// The configured queue capacity that was exceeded.
        cap: usize,
        /// Server-computed backoff hint from live queue depth: roughly
        /// how long until the queued work ahead has drained. Clients
        /// honor it in place of blind exponential backoff.
        retry_after_ms: u64,
    },
    /// No healthy backend could take the request (router mode: the keyed
    /// shard and every failover candidate are down).
    Unavailable {
        /// What was tried.
        message: String,
    },
    /// The request's deadline passed before a worker picked it up.
    DeadlineExceeded {
        /// The deadline the client asked for.
        timeout_ms: u64,
    },
    /// The request line was not valid JSON.
    Parse {
        /// The reader's complaint.
        message: String,
    },
    /// The request was well-formed JSON but semantically invalid
    /// (unknown verb/machine/strategy, missing field, bad loop text).
    BadRequest {
        /// What was wrong.
        message: String,
    },
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
    /// The compilation itself failed (typed driver taxonomy).
    Compile(Box<CompileError>),
    /// A server-side defect (an isolated panic, a dead drainer) answered
    /// this one request; the daemon itself stays up.
    Internal {
        /// What went wrong.
        message: String,
    },
}

impl ServeError {
    /// Stable machine-readable discriminator used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Unavailable { .. } => "unavailable",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::Parse { .. } => "parse",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Compile(_) => "compile",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// Whether a client should retry this error (after backoff): the
    /// condition is transient and a later attempt can succeed.
    pub fn retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. } | ServeError::Unavailable { .. })
    }

    /// The server's backoff hint, when this error carries one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServeError::Overloaded { retry_after_ms, .. } => {
                Some(Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { cap, retry_after_ms } => {
                write!(f, "queue full (capacity {cap}); retry in {retry_after_ms} ms")
            }
            ServeError::Unavailable { message } => {
                write!(f, "no healthy backend: {message}")
            }
            ServeError::DeadlineExceeded { timeout_ms } => {
                write!(f, "deadline of {timeout_ms} ms passed before execution")
            }
            ServeError::Parse { message } => write!(f, "bad request line: {message}"),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Compile(e) => write!(f, "{e}"),
            ServeError::Internal { message } => write!(f, "internal server error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One compile request, decoded from the wire (or built directly by an
/// in-process client like `loadgen`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// The loop, in the textual IR format (`sv_ir::parse_loop`'s grammar).
    pub loop_text: String,
    /// Registered machine name (default `"paper"`, Table 1). Resolved
    /// against the server's [`MachineRegistry`]; ignored when
    /// [`CompileRequest::machine_spec`] is present.
    pub machine: String,
    /// Inline machine description in the `sv_machine::spec` grammar.
    /// Mutually exclusive with naming a registered machine on the wire.
    pub machine_spec: Option<String>,
    /// Strategy name (default `"selective"`).
    pub strategy: Strategy,
    /// `SelectiveConfig::account_communication`.
    pub account_comm: bool,
    /// `SelectiveConfig::squares_tiebreak`.
    pub squares_tiebreak: bool,
    /// `SelectiveConfig::pressure_aware`.
    pub pressure_aware: bool,
    /// `DriverConfig::verify_boundaries`.
    pub verify_boundaries: bool,
    /// `DriverConfig::degrade`.
    pub degrade: bool,
    /// Optional per-request deadline, measured from submission.
    pub timeout: Option<Duration>,
}

impl Default for CompileRequest {
    fn default() -> CompileRequest {
        CompileRequest {
            loop_text: String::new(),
            machine: "paper".into(),
            machine_spec: None,
            strategy: Strategy::Selective,
            account_comm: true,
            squares_tiebreak: true,
            pressure_aware: false,
            verify_boundaries: true,
            degrade: true,
            timeout: None,
        }
    }
}

impl CompileRequest {
    /// Resolve the machine this request compiles for: parse the inline
    /// [`CompileRequest::machine_spec`] when present, otherwise look the
    /// name up in `registry`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for a malformed inline spec, or for a
    /// name absent from the registry — the error lists what the registry
    /// actually holds, so it stays correct as machines are added.
    pub fn machine_config(&self, registry: &MachineRegistry) -> Result<MachineConfig, ServeError> {
        if let Some(spec) = &self.machine_spec {
            return MachineConfig::from_spec(spec).map_err(|e| ServeError::BadRequest {
                message: format!("bad machine_spec: {e}"),
            });
        }
        registry.get(&self.machine).cloned().ok_or_else(|| ServeError::BadRequest {
            message: format!(
                "unknown machine `{}` (registry has: {})",
                self.machine,
                registry.names().join(", ")
            ),
        })
    }

    /// The driver configuration this request asks for.
    pub fn driver_config(&self) -> DriverConfig {
        DriverConfig {
            strategy: self.strategy,
            selective: SelectiveConfig {
                account_communication: self.account_comm,
                squares_tiebreak: self.squares_tiebreak,
                pressure_aware: self.pressure_aware,
                ..SelectiveConfig::default()
            },
            verify_boundaries: self.verify_boundaries,
            degrade: self.degrade,
            ..DriverConfig::default()
        }
    }

    /// Render this request as one wire line (used by `loadgen`'s trace
    /// emitter; the server never writes requests). Emits `machine_spec`
    /// when the request carries an inline spec, the machine name
    /// otherwise — matching the wire's mutual-exclusion rule.
    pub fn to_wire(&self, id: u64) -> String {
        let machine_field = match &self.machine_spec {
            Some(spec) => format!("\"machine_spec\":\"{}\"", json::escape(spec)),
            None => format!("\"machine\":\"{}\"", json::escape(&self.machine)),
        };
        format!(
            "{{\"verb\":\"compile\",\"id\":{id},{machine_field},\"strategy\":\"{}\",\
             \"loop\":\"{}\"}}",
            strategy_name(self.strategy),
            json::escape(&self.loop_text),
        )
    }
}

/// A decoded request line.
#[derive(Debug)]
pub enum Request {
    /// Compile one loop.
    Compile {
        /// Client correlation id.
        id: u64,
        /// The request body.
        req: Box<CompileRequest>,
    },
    /// Compile several loops as one unit; the response carries results in
    /// request order.
    Batch {
        /// Client correlation id.
        id: u64,
        /// The sub-requests.
        reqs: Vec<CompileRequest>,
    },
    /// List the server's machine registry: names, canonical hashes,
    /// sources.
    Machines {
        /// Client correlation id.
        id: u64,
    },
    /// Report cache and queue counters.
    Stats {
        /// Client correlation id.
        id: u64,
    },
    /// Report live serving metrics: queue depth, batch occupancy, ledger
    /// size, per-shard cache hit rates, fault counters, per-phase
    /// latency percentiles.
    Metrics {
        /// Client correlation id.
        id: u64,
    },
    /// Drain pending work and exit.
    Shutdown {
        /// Client correlation id.
        id: u64,
    },
}

impl Request {
    /// The client correlation id carried by every verb.
    pub fn id(&self) -> u64 {
        match self {
            Request::Compile { id, .. }
            | Request::Batch { id, .. }
            | Request::Machines { id }
            | Request::Stats { id }
            | Request::Metrics { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// The strategy's wire spelling (round-trips through
/// [`parse_strategy`]; distinct from `Display`, which uses
/// presentation forms like `modulo(no-unroll)`). The wire reuses the
/// canonical spelling the cache key encodes, so the two can never
/// drift apart.
pub fn strategy_name(s: Strategy) -> &'static str {
    s.canonical_name()
}

/// Parse a strategy's wire spelling.
///
/// # Errors
///
/// [`ServeError::BadRequest`] listing the accepted names.
pub fn parse_strategy(name: &str) -> Result<Strategy, ServeError> {
    for s in Strategy::ALL {
        if strategy_name(s) == name {
            return Ok(s);
        }
    }
    Err(ServeError::BadRequest {
        message: format!(
            "unknown strategy `{name}` (want one of: {})",
            Strategy::ALL.map(strategy_name).join(", ")
        ),
    })
}

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::BadRequest { message: message.into() }
}

fn compile_body(v: &Value) -> Result<CompileRequest, ServeError> {
    let mut req = CompileRequest {
        loop_text: v
            .get("loop")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field `loop`"))?
            .to_string(),
        ..CompileRequest::default()
    };
    if v.get("machine").is_some() && v.get("machine_spec").is_some() {
        return Err(bad("`machine` and `machine_spec` are mutually exclusive"));
    }
    if let Some(m) = v.get("machine") {
        req.machine = m.as_str().ok_or_else(|| bad("`machine` must be a string"))?.to_string();
    }
    if let Some(s) = v.get("machine_spec") {
        req.machine_spec =
            Some(s.as_str().ok_or_else(|| bad("`machine_spec` must be a string"))?.to_string());
    }
    if let Some(s) = v.get("strategy") {
        req.strategy =
            parse_strategy(s.as_str().ok_or_else(|| bad("`strategy` must be a string"))?)?;
    }
    let flag = |key: &str, slot: &mut bool| -> Result<(), ServeError> {
        if let Some(b) = v.get(key) {
            *slot = b.as_bool().ok_or_else(|| bad(format!("`{key}` must be a boolean")))?;
        }
        Ok(())
    };
    flag("account_comm", &mut req.account_comm)?;
    flag("squares_tiebreak", &mut req.squares_tiebreak)?;
    flag("pressure_aware", &mut req.pressure_aware)?;
    flag("verify_boundaries", &mut req.verify_boundaries)?;
    flag("degrade", &mut req.degrade)?;
    if let Some(t) = v.get("timeout_ms") {
        let ms = t.as_u64().ok_or_else(|| bad("`timeout_ms` must be a non-negative integer"))?;
        req.timeout = Some(Duration::from_millis(ms));
    }
    Ok(req)
}

/// Decode one request line. On failure, the error is paired with the
/// request id when one could still be extracted, so the error response
/// can be correlated.
///
/// # Errors
///
/// [`ServeError::Parse`] for malformed JSON, [`ServeError::BadRequest`]
/// for structural problems.
pub fn parse_request(line: &str) -> Result<Request, (u64, ServeError)> {
    let v = json::parse(line).map_err(|message| (0, ServeError::Parse { message }))?;
    let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
    let fail = |e: ServeError| (id, e);
    let verb = v
        .get("verb")
        .and_then(Value::as_str)
        .ok_or_else(|| fail(bad("missing string field `verb`")))?;
    match verb {
        "compile" => Ok(Request::Compile { id, req: Box::new(compile_body(&v).map_err(fail)?) }),
        "batch" => {
            let arr = v
                .get("requests")
                .and_then(Value::as_arr)
                .ok_or_else(|| fail(bad("`batch` needs an array field `requests`")))?;
            let mut reqs = Vec::with_capacity(arr.len());
            for (i, sub) in arr.iter().enumerate() {
                reqs.push(
                    compile_body(sub)
                        .map_err(|e| fail(bad(format!("requests[{i}]: {e}"))))?,
                );
            }
            Ok(Request::Batch { id, reqs })
        }
        "machines" => Ok(Request::Machines { id }),
        "stats" => Ok(Request::Stats { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(fail(bad(format!(
            "unknown verb `{other}` (want compile, batch, machines, stats, metrics or shutdown)"
        )))),
    }
}

/// Render a success response around an already-rendered result object.
pub fn ok_response(id: u64, result_object: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{result_object}}}")
}

/// Render a batch success response around per-request element objects
/// (each either a result object or an inline error object).
pub fn batch_response(id: u64, elements: &[String]) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"results\":[{}]}}", elements.join(","))
}

/// Render an error response.
pub fn error_response(id: u64, e: &ServeError) -> String {
    format!("{{\"id\":{id},\"ok\":false,\"error\":{}}}", error_object(e))
}

/// Render an error as a bare JSON object (used inline in batch results).
pub fn error_object(e: &ServeError) -> String {
    match e {
        ServeError::Compile(ce) => format!(
            "{{\"kind\":\"compile\",\"pass\":\"{}\",\"loop\":\"{}\",\"message\":\"{}\"}}",
            ce.pass(),
            json::escape(ce.loop_name()),
            json::escape(&ce.to_string())
        ),
        ServeError::Overloaded { retry_after_ms, .. } => format!(
            "{{\"kind\":\"overloaded\",\"retry_after_ms\":{retry_after_ms},\"message\":\"{}\"}}",
            json::escape(&e.to_string())
        ),
        other => format!(
            "{{\"kind\":\"{}\",\"message\":\"{}\"}}",
            other.kind(),
            json::escape(&other.to_string())
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_compile() {
        let r = parse_request(r#"{"verb":"compile","id":7,"loop":"loop x (trip 4 x1 invocations, scale 1)"}"#)
            .unwrap();
        match r {
            Request::Compile { id, req } => {
                assert_eq!(id, 7);
                assert_eq!(req.machine, "paper");
                assert_eq!(req.strategy, Strategy::Selective);
                assert!(req.timeout.is_none());
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_knobs_and_timeout() {
        let r = parse_request(
            r#"{"verb":"compile","id":1,"loop":"l","machine":"figure1","strategy":"full",
                "account_comm":false,"verify_boundaries":false,"timeout_ms":250}"#,
        )
        .unwrap();
        let Request::Compile { req, .. } = r else { panic!() };
        assert_eq!(req.machine, "figure1");
        assert_eq!(req.strategy, Strategy::Full);
        assert!(!req.account_comm);
        assert!(!req.verify_boundaries);
        assert_eq!(req.timeout, Some(Duration::from_millis(250)));
        let cfg = req.driver_config();
        assert!(!cfg.selective.account_communication);
        assert!(!cfg.verify_boundaries);
    }

    #[test]
    fn parses_inline_machine_spec_and_rejects_ambiguity() {
        let r = parse_request(
            r#"{"verb":"compile","id":2,"loop":"l","machine_spec":"vector_length = 4\n"}"#,
        )
        .unwrap();
        let Request::Compile { req, .. } = r else { panic!() };
        assert_eq!(req.machine_spec.as_deref(), Some("vector_length = 4\n"));
        let m = req.machine_config(&MachineRegistry::builtin()).unwrap();
        assert_eq!(m.vector_length, 4);

        let (_, e) = parse_request(
            r#"{"verb":"compile","id":2,"loop":"l","machine":"paper","machine_spec":"x"}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn unknown_machine_error_lists_registry_contents() {
        let req = CompileRequest { machine: "toaster".into(), ..CompileRequest::default() };
        let e = req.machine_config(&MachineRegistry::builtin()).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("unknown machine `toaster`"), "{msg}");
        assert!(msg.contains("figure1, paper"), "error must list the live registry: {msg}");

        let mut reg = MachineRegistry::builtin();
        let mut extra = MachineConfig::paper_default();
        extra.name = "wide".into();
        reg.register("wide", extra, sv_machine::RegistrySource::Builtin).unwrap();
        let msg = req.machine_config(&reg).unwrap_err().to_string();
        assert!(msg.contains("figure1, paper, wide"), "error must track additions: {msg}");
    }

    #[test]
    fn machines_verb_parses() {
        let r = parse_request(r#"{"verb":"machines","id":12}"#).unwrap();
        assert!(matches!(r, Request::Machines { id: 12 }));
    }

    #[test]
    fn metrics_verb_parses() {
        let r = parse_request(r#"{"verb":"metrics","id":13}"#).unwrap();
        assert!(matches!(r, Request::Metrics { id: 13 }));
    }

    #[test]
    fn overload_hint_is_typed_and_on_the_wire() {
        let e = ServeError::Overloaded { cap: 4, retry_after_ms: 30 };
        assert!(e.retryable());
        assert_eq!(e.retry_after(), Some(Duration::from_millis(30)));
        let u = ServeError::Unavailable { message: "2 shards down".into() };
        assert!(u.retryable());
        assert_eq!(u.retry_after(), None);
        assert_eq!(u.kind(), "unavailable");
    }

    #[test]
    fn inline_spec_round_trips_through_wire() {
        let req = CompileRequest {
            loop_text: "loop t (trip 4 x1 invocations, scale 1)".into(),
            machine_spec: Some(MachineConfig::figure1().to_spec()),
            ..CompileRequest::default()
        };
        let Request::Compile { req: back, .. } = parse_request(&req.to_wire(5)).unwrap() else {
            panic!()
        };
        assert_eq!(*back, req);
        let m = back.machine_config(&MachineRegistry::empty()).unwrap();
        assert_eq!(m, MachineConfig::figure1());
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(parse_strategy(strategy_name(s)).unwrap(), s);
        }
        assert!(parse_strategy("bogus").is_err());
    }

    #[test]
    fn errors_keep_ids_when_extractable() {
        let (id, e) = parse_request(r#"{"verb":"nope","id":9}"#).unwrap_err();
        assert_eq!(id, 9);
        assert_eq!(e.kind(), "bad_request");
        let (id, e) = parse_request("not json").unwrap_err();
        assert_eq!(id, 0);
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn batch_parses_subrequests() {
        let r = parse_request(
            r#"{"verb":"batch","id":3,"requests":[{"loop":"a"},{"loop":"b","strategy":"modulo"}]}"#,
        )
        .unwrap();
        let Request::Batch { id, reqs } = r else { panic!() };
        assert_eq!(id, 3);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].strategy, Strategy::ModuloOnly);
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(4, "{\"x\":1}");
        assert_eq!(ok, "{\"id\":4,\"ok\":true,\"result\":{\"x\":1}}");
        let err =
            error_response(5, &ServeError::Overloaded { cap: 8, retry_after_ms: 12 });
        assert!(err.contains("\"kind\":\"overloaded\""), "{err}");
        assert!(err.contains("\"retry_after_ms\":12"), "{err}");
        assert!(!err.contains('\n'));
    }

    #[test]
    fn wire_round_trip() {
        let req = CompileRequest {
            loop_text: "loop t (trip 4 x1 invocations, scale 1)\n  %0 = add.i64 iv*1+0, #1"
                .into(),
            ..CompileRequest::default()
        };
        let line = req.to_wire(11);
        let Request::Compile { id, req: back } = parse_request(&line).unwrap() else { panic!() };
        assert_eq!(id, 11);
        assert_eq!(*back, req);
    }
}
