//! End-to-end cache correctness:
//!
//! * a warm-cache suite sweep (every kernel × several strategies, the
//!   shape of `sv-bench`'s table evaluation) returns byte-identical
//!   bodies to the cold run;
//! * the disk tier survives a process "restart" (write, drop the cache,
//!   reopen over the same directory, hit);
//! * a corrupted disk entry is quarantined and recompiled, never served
//!   and never an error;
//! * injected disk faults (torn writes, orphaned temporaries, read
//!   errors) are absorbed by read validation and the open-time
//!   [`CompileCache::recover`] sweep: wrong bytes are never served,
//!   recovery quarantines every torn write, and recompilation restores
//!   good entries.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use sv_core::{
    compile_cached, CacheConfig, CacheOutcome, CompileCache, DriverConfig, Strategy,
};
use sv_machine::MachineConfig;
use sv_serve::{FaultConfig, FaultPlan};
use sv_workloads::all_benchmarks;

/// A unique scratch directory under the system temp dir (no external
/// temp-dir crate; unique per test via pid + counter).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sv-serve-cache-test-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep: every hand-written suite kernel under the three
/// interesting strategies on the paper machine.
fn sweep(cache: &CompileCache) -> Vec<(String, Result<String, String>)> {
    let m = MachineConfig::paper_default();
    let mut out = Vec::new();
    for suite in all_benchmarks() {
        for l in &suite.loops {
            if l.name.contains(".synth") {
                continue;
            }
            for strategy in [Strategy::ModuloOnly, Strategy::Full, Strategy::Selective] {
                let cfg = DriverConfig::for_strategy(strategy);
                let body = compile_cached(l, &m, &cfg, cache)
                    .map(|(b, _)| b.to_string())
                    .map_err(|e| e.to_string());
                out.push((format!("{}/{strategy}", l.name), body));
            }
        }
    }
    out
}

#[test]
fn warm_sweep_is_byte_identical_to_cold() {
    let cache = CompileCache::in_memory();
    let cold = sweep(&cache);
    let misses_after_cold = cache.stats().misses;
    let warm = sweep(&cache);
    assert_eq!(cold.len(), warm.len());
    for ((name, c), (_, w)) in cold.iter().zip(&warm) {
        assert_eq!(c, w, "{name}: warm body diverged from cold");
    }
    // Successes are cached; failures recompile by design, so the warm
    // sweep may only miss once per failing case.
    let failures = cold.iter().filter(|(_, r)| r.is_err()).count() as u64;
    let st = cache.stats();
    assert_eq!(st.misses, misses_after_cold + failures);
    assert!(st.mem_hits > 0);
}

#[test]
fn disk_tier_survives_process_restart() {
    let dir = scratch("restart");
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let m = MachineConfig::paper_default();
    let dcfg = DriverConfig::default();
    let l = &all_benchmarks()[0].loops[0];

    // "Process 1": compile and write through to disk, then drop.
    let first = CompileCache::new(cfg.clone()).unwrap();
    let (cold, outcome) = compile_cached(l, &m, &dcfg, &first).unwrap();
    assert_eq!(outcome, CacheOutcome::Compiled);
    drop(first);

    // "Process 2": a fresh cache over the same directory hits disk with
    // byte-identical content, and promotes it to memory.
    let second = CompileCache::new(cfg).unwrap();
    let (warm, outcome) = compile_cached(l, &m, &dcfg, &second).unwrap();
    assert_eq!(outcome, CacheOutcome::Disk, "restart must hit the disk tier");
    assert_eq!(cold, warm, "disk round trip must preserve bytes");
    let (mem, outcome) = compile_cached(l, &m, &dcfg, &second).unwrap();
    assert_eq!(outcome, CacheOutcome::Memory, "disk hit must promote to memory");
    assert_eq!(cold, mem);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_disk_entry_quarantines_and_recompiles() {
    let dir = scratch("corrupt");
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let m = MachineConfig::paper_default();
    let dcfg = DriverConfig::default();
    let l = &all_benchmarks()[0].loops[0];

    let first = CompileCache::new(cfg.clone()).unwrap();
    let (cold, _) = compile_cached(l, &m, &dcfg, &first).unwrap();
    drop(first);

    // Flip bytes in the middle of every entry body.
    let mut corrupted = 0;
    for e in std::fs::read_dir(&dir).unwrap() {
        let path = e.unwrap().path();
        if path.extension().is_some_and(|x| x == "svc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 1);

    // A fresh cache must detect the corruption, quarantine, recompile and
    // still return the right bytes — not an error, not the bad entry.
    let second = CompileCache::new(cfg).unwrap();
    let (body, outcome) = compile_cached(l, &m, &dcfg, &second).unwrap();
    assert_eq!(outcome, CacheOutcome::Compiled, "corrupt entry must not be served");
    assert_eq!(cold, body);
    let st = second.stats();
    assert_eq!(st.disk_errors, 1, "the quarantine must be counted");
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().path().to_string_lossy().ends_with(".svc.quarantined")
        })
        .count();
    assert_eq!(quarantined, 1, "the bad entry must be moved aside");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compile the first few suite loops through `cache`, returning bodies.
fn compile_some(cache: &CompileCache, n: usize) -> Vec<String> {
    let m = MachineConfig::paper_default();
    let dcfg = DriverConfig::default();
    all_benchmarks()
        .iter()
        .flat_map(|s| s.loops.iter())
        .filter(|l| !l.name.contains(".synth"))
        .take(n)
        .map(|l| compile_cached(l, &m, &dcfg, cache).unwrap().0.to_string())
        .collect()
}

#[test]
fn every_torn_write_is_quarantined_by_recovery() {
    let dir = scratch("torn");
    // Tear EVERY write: only corrupt prefixes reach the final paths.
    let plan = Arc::new(FaultPlan::new(
        21,
        FaultConfig { torn_write: 1.0, ..FaultConfig::default() },
    ));
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let faulty = CompileCache::new(CacheConfig { faults: Some(plan.clone()), ..cfg.clone() })
        .unwrap();
    let n = 4;
    let bodies = compile_some(&faulty, n);
    assert_eq!(plan.injected().torn_writes as usize, n);
    drop(faulty);

    // "Reboot" without faults: the open-time sweep must quarantine every
    // torn entry — none may survive to be served.
    let clean = CompileCache::new(cfg).unwrap();
    let report = clean.recovery();
    assert_eq!(report.scanned as usize, n);
    assert_eq!(
        report.quarantined as usize, n,
        "recovery must quarantine every torn write: {report:?}"
    );
    let again = compile_some(&clean, n);
    assert_eq!(bodies, again, "recompiled bodies must match the originals");
    assert_eq!(clean.stats().disk_hits, 0, "no torn entry may ever be served");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn orphaned_tmp_files_are_swept_at_open() {
    let dir = scratch("orphan");
    let plan = Arc::new(FaultPlan::new(
        22,
        FaultConfig { orphan_tmp: 1.0, ..FaultConfig::default() },
    ));
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let faulty =
        CompileCache::new(CacheConfig { faults: Some(plan), ..cfg.clone() }).unwrap();
    let n = 3;
    compile_some(&faulty, n);
    drop(faulty);
    let tmps = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().path().to_string_lossy().contains(".svc.tmp"))
        .count();
    assert_eq!(tmps, n, "every write must have left an orphaned tmp file");

    let clean = CompileCache::new(cfg).unwrap();
    let report = clean.recovery();
    assert_eq!(report.orphans as usize, n);
    assert_eq!(report.quarantined, 0, "orphans are cleanup, not corruption");
    assert_eq!(clean.stats().disk_errors, 0, "orphan sweep must not count as errors");
    let left = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            let p = e.as_ref().unwrap().path();
            let s = p.to_string_lossy().to_string();
            s.contains(".svc.tmp") && !s.ends_with(".quarantined")
        })
        .count();
    assert_eq!(left, 0, "no live tmp files may survive the sweep");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_read_faults_recompile_and_restore_the_entry() {
    let dir = scratch("readfault");
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let first = CompileCache::new(cfg.clone()).unwrap();
    let bodies = compile_some(&first, 1);
    drop(first);

    // Fail the first disk read; the entry quarantines, the request
    // recompiles, and the write-through restores a good copy.
    let plan = Arc::new(FaultPlan::new(
        23,
        FaultConfig { disk_read: 1.0, ..FaultConfig::default() },
    ));
    let faulty =
        CompileCache::new(CacheConfig { faults: Some(plan), ..cfg.clone() }).unwrap();
    let m = MachineConfig::paper_default();
    let dcfg = DriverConfig::default();
    let suites = all_benchmarks();
    let l = suites
        .iter()
        .flat_map(|s| s.loops.iter())
        .find(|l| !l.name.contains(".synth"))
        .unwrap();
    let (body, outcome) = compile_cached(l, &m, &dcfg, &faulty).unwrap();
    assert_eq!(outcome, CacheOutcome::Compiled, "a failed read must recompile");
    assert_eq!(body.to_string(), bodies[0]);
    drop(faulty);

    // The restored copy is valid: a faultless reopen serves it from disk.
    let clean = CompileCache::new(cfg).unwrap();
    let (body, outcome) = compile_cached(l, &m, &dcfg, &clean).unwrap();
    assert_eq!(outcome, CacheOutcome::Disk, "the write-through must have restored it");
    assert_eq!(body.to_string(), bodies[0]);

    std::fs::remove_dir_all(&dir).unwrap();
}
