//! End-to-end cache correctness:
//!
//! * a warm-cache suite sweep (every kernel × several strategies, the
//!   shape of `sv-bench`'s table evaluation) returns byte-identical
//!   bodies to the cold run;
//! * the disk tier survives a process "restart" (write, drop the cache,
//!   reopen over the same directory, hit);
//! * a corrupted disk entry is quarantined and recompiled, never served
//!   and never an error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use sv_core::{
    compile_cached, CacheConfig, CacheOutcome, CompileCache, DriverConfig, Strategy,
};
use sv_machine::MachineConfig;
use sv_workloads::all_benchmarks;

/// A unique scratch directory under the system temp dir (no external
/// temp-dir crate; unique per test via pid + counter).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sv-serve-cache-test-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep: every hand-written suite kernel under the three
/// interesting strategies on the paper machine.
fn sweep(cache: &CompileCache) -> Vec<(String, Result<String, String>)> {
    let m = MachineConfig::paper_default();
    let mut out = Vec::new();
    for suite in all_benchmarks() {
        for l in &suite.loops {
            if l.name.contains(".synth") {
                continue;
            }
            for strategy in [Strategy::ModuloOnly, Strategy::Full, Strategy::Selective] {
                let cfg = DriverConfig::for_strategy(strategy);
                let body = compile_cached(l, &m, &cfg, cache)
                    .map(|(b, _)| b.to_string())
                    .map_err(|e| e.to_string());
                out.push((format!("{}/{strategy}", l.name), body));
            }
        }
    }
    out
}

#[test]
fn warm_sweep_is_byte_identical_to_cold() {
    let cache = CompileCache::in_memory();
    let cold = sweep(&cache);
    let misses_after_cold = cache.stats().misses;
    let warm = sweep(&cache);
    assert_eq!(cold.len(), warm.len());
    for ((name, c), (_, w)) in cold.iter().zip(&warm) {
        assert_eq!(c, w, "{name}: warm body diverged from cold");
    }
    // Successes are cached; failures recompile by design, so the warm
    // sweep may only miss once per failing case.
    let failures = cold.iter().filter(|(_, r)| r.is_err()).count() as u64;
    let st = cache.stats();
    assert_eq!(st.misses, misses_after_cold + failures);
    assert!(st.mem_hits > 0);
}

#[test]
fn disk_tier_survives_process_restart() {
    let dir = scratch("restart");
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let m = MachineConfig::paper_default();
    let dcfg = DriverConfig::default();
    let l = &all_benchmarks()[0].loops[0];

    // "Process 1": compile and write through to disk, then drop.
    let first = CompileCache::new(cfg.clone()).unwrap();
    let (cold, outcome) = compile_cached(l, &m, &dcfg, &first).unwrap();
    assert_eq!(outcome, CacheOutcome::Compiled);
    drop(first);

    // "Process 2": a fresh cache over the same directory hits disk with
    // byte-identical content, and promotes it to memory.
    let second = CompileCache::new(cfg).unwrap();
    let (warm, outcome) = compile_cached(l, &m, &dcfg, &second).unwrap();
    assert_eq!(outcome, CacheOutcome::Disk, "restart must hit the disk tier");
    assert_eq!(cold, warm, "disk round trip must preserve bytes");
    let (mem, outcome) = compile_cached(l, &m, &dcfg, &second).unwrap();
    assert_eq!(outcome, CacheOutcome::Memory, "disk hit must promote to memory");
    assert_eq!(cold, mem);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_disk_entry_quarantines_and_recompiles() {
    let dir = scratch("corrupt");
    let cfg = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    let m = MachineConfig::paper_default();
    let dcfg = DriverConfig::default();
    let l = &all_benchmarks()[0].loops[0];

    let first = CompileCache::new(cfg.clone()).unwrap();
    let (cold, _) = compile_cached(l, &m, &dcfg, &first).unwrap();
    drop(first);

    // Flip bytes in the middle of every entry body.
    let mut corrupted = 0;
    for e in std::fs::read_dir(&dir).unwrap() {
        let path = e.unwrap().path();
        if path.extension().is_some_and(|x| x == "svc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 1);

    // A fresh cache must detect the corruption, quarantine, recompile and
    // still return the right bytes — not an error, not the bad entry.
    let second = CompileCache::new(cfg).unwrap();
    let (body, outcome) = compile_cached(l, &m, &dcfg, &second).unwrap();
    assert_eq!(outcome, CacheOutcome::Compiled, "corrupt entry must not be served");
    assert_eq!(cold, body);
    let st = second.stats();
    assert_eq!(st.disk_errors, 1, "the quarantine must be counted");
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().path().to_string_lossy().ends_with(".svc.quarantined")
        })
        .count();
    assert_eq!(quarantined, 1, "the bad entry must be moved aside");

    std::fs::remove_dir_all(&dir).unwrap();
}
