//! Weighted-fair admission under adversarial load.
//!
//! The property: one greedy client flooding the queue cannot starve a
//! well-behaved one. The flood client fires submissions back-to-back;
//! the trickle client keeps at most one request outstanding. With
//! per-client quotas the trickle client must complete **every** request,
//! every flood rejection must be the typed `overloaded` error (carrying
//! a positive `retry_after_ms` hint) — never a hang, never a dropped
//! response — and the trickle client's response bytes must be identical
//! at any worker count (`--jobs`), because fairness is an admission
//! property and byte-determinism is a compile property; neither may
//! perturb the other.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sv_serve::{BatchConfig, Batcher, CompileRequest, Request, ServeError, ServeService, Sink};

/// A sink that keeps its bytes readable after the drainer writes them.
fn line_sink() -> (Arc<Mutex<Vec<u8>>>, Sink) {
    let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    (Arc::clone(&buf), buf.clone() as Sink)
}

fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
    let bytes = buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    String::from_utf8_lossy(&bytes)
        .lines()
        .map(str::to_string)
        .collect()
}

fn compile_request(id: u64) -> Request {
    let suite = sv_workloads::benchmark("swim").expect("suite");
    Request::Compile {
        id,
        req: Box::new(CompileRequest {
            loop_text: suite.loops[(id % suite.loops.len() as u64) as usize].to_string(),
            ..CompileRequest::default()
        }),
    }
}

const FLOOD_SUBMISSIONS: u64 = 200;
const TRICKLE_SUBMISSIONS: u64 = 12;

/// Run the flood-vs-trickle scenario; returns the trickle client's
/// response lines (all of them — completion is asserted inside) plus the
/// flood client's (admitted, rejected) counts.
fn run_scenario(jobs: usize) -> (Vec<String>, u64, u64) {
    let svc = Arc::new(ServeService::in_memory());
    let cfg = BatchConfig { jobs, batch_max: 4, flush_ms: 2, queue_cap: 8 };
    let b = Arc::new(Batcher::new(svc, cfg));
    // Three identities share the capacity: the permanent default client
    // plus these two, so each quota is max(1, 8/3) = 2 slots.
    let flood_id = b.register_client(1);
    let trickle_id = b.register_client(1);

    let flood_b = Arc::clone(&b);
    let flood = std::thread::spawn(move || {
        let (_buf, sink) = line_sink();
        let (mut admitted, mut rejected) = (0u64, 0u64);
        for i in 0..FLOOD_SUBMISSIONS {
            match flood_b.submit_for(flood_id, compile_request(i), Arc::clone(&sink)) {
                Ok(()) => admitted += 1,
                Err(ServeError::Overloaded { cap, retry_after_ms }) => {
                    assert!(cap <= 8, "quota rejection must report the quota, got {cap}");
                    assert!(retry_after_ms > 0, "rejection must carry a backoff hint");
                    rejected += 1;
                }
                Err(other) => panic!("flood rejection must be typed overloaded, got {other}"),
            }
        }
        (admitted, rejected)
    });

    let trickle_b = Arc::clone(&b);
    let trickle = std::thread::spawn(move || {
        let (buf, sink) = line_sink();
        for i in 0..TRICKLE_SUBMISSIONS {
            // At most one outstanding request: a client inside its quota
            // must never be turned away, however hard the flood pushes.
            trickle_b
                .submit_for(trickle_id, compile_request(1_000 + i), Arc::clone(&sink))
                .unwrap_or_else(|e| panic!("trickle request {i} rejected: {e}"));
            let deadline = Instant::now() + Duration::from_secs(30);
            while (lines(&buf).len() as u64) <= i {
                assert!(Instant::now() < deadline, "trickle response {i} never arrived");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        lines(&buf)
    });

    let (admitted, rejected) = flood.join().expect("flood client");
    let trickle_lines = trickle.join().expect("trickle client");
    b.close();
    Arc::try_unwrap(b).ok().expect("sole owner").join().expect("drain");
    (trickle_lines, admitted, rejected)
}

#[test]
fn flood_cannot_starve_the_trickle_client() {
    let (trickle_lines, admitted, rejected) = run_scenario(2);
    assert_eq!(trickle_lines.len() as u64, TRICKLE_SUBMISSIONS, "every trickle request answered");
    for (i, line) in trickle_lines.iter().enumerate() {
        assert!(line.contains("\"ok\":true"), "trickle response {i} failed: {line}");
        assert!(
            line.contains(&format!("\"id\":{}", 1_000 + i as u64)),
            "trickle responses must arrive in submission order: {line}"
        );
    }
    assert!(admitted > 0, "some flood traffic fits inside its quota");
    assert!(
        rejected > 0,
        "a 200-deep back-to-back flood against a 2-slot quota must see rejections"
    );
    assert_eq!(admitted + rejected, FLOOD_SUBMISSIONS);
}

#[test]
fn trickle_bytes_are_jobs_invariant() {
    let (at_one_job, _, _) = run_scenario(1);
    let (at_four_jobs, _, _) = run_scenario(4);
    assert_eq!(
        at_one_job, at_four_jobs,
        "fairness must not perturb byte-determinism across --jobs"
    );
}
