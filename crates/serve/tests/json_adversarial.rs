//! Adversarial input for the wire-protocol JSON reader.
//!
//! The parser sits directly on the network boundary, so hostile lines
//! must never panic, abort (stack overflow) or hang — every malformed
//! input becomes a typed `parse` error, and every structurally valid but
//! semantically bad request a typed `bad_request`. The generator is
//! seeded ([`SmallRng`]), so a failing case replays from its seed.

use sv_serve::json::{self, Value, MAX_DEPTH};
use sv_serve::parse_request;
use sv_workloads::SmallRng;

/// Mutate a valid request line: truncate, splice random bytes, duplicate
/// a chunk — the shapes a flaky client or a fuzzer produces.
fn mutate(rng: &mut SmallRng, line: &str) -> String {
    let bytes = line.as_bytes();
    match rng.index(4) {
        // Truncation (can cut a string, an escape, a number).
        0 => String::from_utf8_lossy(&bytes[..rng.index(bytes.len().max(1))]).into_owned(),
        // Random printable-ASCII splice.
        1 => {
            let mut v = bytes.to_vec();
            let at = rng.index(v.len().max(1));
            v.insert(at.min(v.len()), b' ' + rng.index(95) as u8);
            String::from_utf8_lossy(&v).into_owned()
        }
        // Chunk duplication (duplicate keys, doubled braces).
        2 => {
            let a = rng.index(bytes.len().max(1));
            let b = (a + rng.index(16) + 1).min(bytes.len());
            let mut s = line.to_string();
            s.push_str(&String::from_utf8_lossy(&bytes[a..b]));
            s
        }
        // Byte flip.
        _ => {
            let mut v = bytes.to_vec();
            if !v.is_empty() {
                let at = rng.index(v.len());
                v[at] ^= 1 << rng.index(7);
            }
            String::from_utf8_lossy(&v).into_owned()
        }
    }
}

#[test]
fn seeded_mutation_storm_never_panics_and_errors_stay_typed() {
    let valid = r#"{"verb":"compile","id":3,"machine":"paper","timeout_ms":50,"loop":"loop x (trip 4 x1 invocations, scale 1)"}"#;
    let mut rng = SmallRng::seed_from_u64(0xad7e_75a1);
    for _ in 0..5_000 {
        let mut line = valid.to_string();
        for _ in 0..=rng.index(3) {
            line = mutate(&mut rng, &line);
        }
        // Must return, not panic; and a failure must carry one of the
        // two boundary kinds, never anything internal.
        if let Err((_, e)) = parse_request(&line) {
            assert!(
                matches!(e.kind(), "parse" | "bad_request"),
                "line {line:?} produced unexpected kind {}",
                e.kind()
            );
        }
    }
}

#[test]
fn deep_nesting_is_rejected_not_a_stack_overflow() {
    // Far past any sane request: without the parser's depth bound this
    // recursion would overflow the stack and abort the daemon.
    for depth in [MAX_DEPTH + 1, 10_000, 1_000_000] {
        let line = format!(
            "{{\"verb\":\"compile\",\"id\":1,\"loop\":{}{}",
            "[".repeat(depth),
            "]".repeat(depth)
        );
        let (_, e) = parse_request(&line).unwrap_err();
        assert_eq!(e.kind(), "parse", "depth {depth}");
        assert!(e.to_string().contains("nesting deeper"), "{e}");
    }
    // Mixed object/array nesting hits the same bound.
    let mixed = format!("{}1{}", "[{\"k\":".repeat(MAX_DEPTH), "}]".repeat(MAX_DEPTH));
    assert!(json::parse(&mixed).is_err());
}

#[test]
fn truncated_escapes_and_strings_are_typed_errors() {
    for bad in [
        r#"{"verb":"compile","id":1,"loop":"abc\"#,
        r#"{"verb":"compile","id":1,"loop":"abc\u"#,
        r#"{"verb":"compile","id":1,"loop":"abc\u00"#,
        r#"{"verb":"compile","id":1,"loop":"abc\uZZZZ"}"#,
        r#"{"verb":"compile","id":1,"loop":"abc\x41"}"#,
        r#"{"verb":"compile","id":1,"loop":"unterminated"#,
        "{\"verb\":\"compile\",\"id\":1,\"loop\":\"\\ud800\"}", // lone surrogate
    ] {
        let (_, e) = parse_request(bad).unwrap_err();
        assert_eq!(e.kind(), "parse", "input {bad:?} gave {e}");
    }
}

#[test]
fn huge_and_degenerate_numbers_do_not_break_ids() {
    // Overflowing ids must not wrap into someone else's id: anything
    // past 2^53 (or fractional, or negative) is not an exact u64 and is
    // treated as absent (id 0), matching `Value::as_u64`.
    for (text, want) in [
        ("{\"id\":18446744073709551617}", None), // > u64::MAX
        ("{\"id\":1e400}", None),                // f64 infinity
        ("{\"id\":-1}", None),
        ("{\"id\":3.5}", None),
        ("{\"id\":4503599627370496}", Some(1u64 << 52)),
    ] {
        let v = json::parse(text).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), want, "{text}");
    }
    // A huge number in a request id degrades to 0, not a panic and not a
    // bogus correlation id.
    let (id, e) = parse_request("{\"verb\":\"nope\",\"id\":1e308}").unwrap_err();
    assert_eq!(id, 0);
    assert_eq!(e.kind(), "bad_request");
    // Malformed number bodies are parse errors.
    for bad in ["{\"id\":1.2.3}", "{\"id\":--5}", "{\"id\":1e}", "{\"id\":+1}"] {
        assert!(json::parse(bad).is_err(), "accepted {bad}");
    }
}

#[test]
fn duplicate_keys_resolve_deterministically_to_the_last_value() {
    // The reader keeps the final occurrence (BTreeMap insert semantics):
    // duplicates must not panic, and resolution must be deterministic so
    // responses do not depend on map iteration order.
    let v = json::parse(r#"{"a":1,"a":2,"a":3}"#).unwrap();
    assert_eq!(v.get("a"), Some(&Value::Num(3.0)));
    let r = parse_request(
        r#"{"verb":"compile","id":1,"id":9,"loop":"first","loop":"loop x (trip 4 x1 invocations, scale 1)"}"#,
    )
    .unwrap();
    assert_eq!(r.id(), 9, "last duplicate id wins, deterministically");
}

#[test]
fn pathological_sizes_parse_or_fail_in_bounded_time() {
    // Wide (not deep) structures are fine: 10k-element array.
    let wide = format!("[{}]", vec!["0"; 10_000].join(","));
    assert_eq!(json::parse(&wide).unwrap().as_arr().unwrap().len(), 10_000);
    // A megabyte of unterminated string: typed error, no hang.
    let long = format!("{{\"loop\":\"{}", "a".repeat(1 << 20));
    assert!(json::parse(&long).is_err());
    // Deep trailing garbage after a valid document.
    let trailing = format!("{{}}{}", "]".repeat(50_000));
    assert!(json::parse(&trailing).is_err());
}
