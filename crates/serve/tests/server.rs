//! End-to-end TCP serving:
//!
//! * the accept loop **survives a client disconnect** — the
//!   pre-multi-tenant daemon exited on the first EOF, so a second
//!   sequential connection is the regression test;
//! * concurrent connections each get their own fair-share identity and
//!   all complete;
//! * a connection past `--max-clients` is refused with one typed
//!   `overloaded` line carrying a `retry_after_ms` hint — and the slot
//!   is reusable once the earlier client leaves;
//! * the `metrics` verb answers over TCP, and its rendering is pinned by
//!   a golden snapshot (all numbers masked — the *shape* is the
//!   contract). Re-bless intentional changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sv-serve --test server
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use sv_serve::{BatchConfig, Batcher, CompileRequest, Server, ServerConfig};

fn start(
    cfg: ServerConfig,
) -> (SocketAddr, Arc<Batcher>, std::thread::JoinHandle<std::io::Result<()>>) {
    let svc = Arc::new(sv_serve::ServeService::in_memory());
    let batcher = Arc::new(Batcher::new(svc, BatchConfig::default()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    let b = Arc::clone(&batcher);
    let h = std::thread::spawn(move || Server::new(b, cfg).serve(listener));
    (addr, batcher, h)
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    BufReader::new(stream)
}

/// One request line in, one response line out.
fn call(conn: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(conn.get_ref(), "{line}").expect("send");
    let mut resp = String::new();
    conn.read_line(&mut resp).expect("response");
    assert!(!resp.is_empty(), "server hung up instead of answering {line}");
    resp.trim_end().to_string()
}

fn compile_line(id: u64) -> String {
    let suite = sv_workloads::benchmark("swim").expect("suite");
    CompileRequest {
        loop_text: suite.loops[0].to_string(),
        ..CompileRequest::default()
    }
    .to_wire(id)
}

/// Shut the server down via a fresh connection and join everything.
fn shutdown(addr: SocketAddr, batcher: Arc<Batcher>, h: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut conn = connect(addr);
    let ack = call(&mut conn, "{\"verb\":\"shutdown\",\"id\":99}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    h.join().expect("server thread").expect("serve");
    Arc::try_unwrap(batcher).ok().expect("all conns joined").join().expect("drain");
}

#[test]
fn accept_loop_survives_client_disconnect() {
    let (addr, batcher, h) = start(ServerConfig::default());
    let first = {
        let mut conn = connect(addr);
        call(&mut conn, &compile_line(1))
        // `conn` drops here: EOF at the server.
    };
    assert!(first.contains("\"ok\":true"), "{first}");
    // The regression: a second, *sequential* connection must be served
    // (the old single-client loop exited with the first client).
    let mut conn = connect(addr);
    let second = call(&mut conn, &compile_line(1));
    assert_eq!(first, second, "same request, same bytes — now cache-warm");
    drop(conn);
    shutdown(addr, batcher, h);
}

#[test]
fn concurrent_clients_all_complete() {
    let (addr, batcher, h) = start(ServerConfig::default());
    let workers: Vec<_> = (0..4u64)
        .map(|k| {
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let mut out = Vec::new();
                for i in 0..5u64 {
                    out.push(call(&mut conn, &compile_line(k * 100 + i)));
                }
                out
            })
        })
        .collect();
    let all: Vec<Vec<String>> = workers.into_iter().map(|w| w.join().expect("client")).collect();
    for (k, responses) in all.iter().enumerate() {
        for (i, r) in responses.iter().enumerate() {
            assert!(r.contains("\"ok\":true"), "client {k} response {i}: {r}");
            // Per-connection response order is submission order.
            assert!(
                r.contains(&format!("\"id\":{}", k as u64 * 100 + i as u64)),
                "client {k} got out-of-order response {i}: {r}"
            );
        }
    }
    shutdown(addr, batcher, h);
}

#[test]
fn connection_past_max_clients_is_refused_then_slot_reopens() {
    let (addr, batcher, h) = start(ServerConfig { max_clients: 1, ..ServerConfig::default() });
    let mut first = connect(addr);
    // A served round trip guarantees the first connection occupies the
    // one slot before the second one knocks.
    let ok = call(&mut first, "{\"verb\":\"stats\",\"id\":1}");
    assert!(ok.contains("\"ok\":true"), "{ok}");
    let mut refused = connect(addr);
    let mut line = String::new();
    refused.read_line(&mut line).expect("refusal line");
    assert!(line.contains("\"kind\":\"overloaded\""), "{line}");
    assert!(line.contains("\"retry_after_ms\":"), "refusal must carry the hint: {line}");
    drop(refused);
    drop(first);
    // Once the first client leaves, its slot must become available again
    // (the accept loop reaps finished connection threads lazily).
    let mut served = false;
    for _ in 0..50 {
        let mut retry = connect(addr);
        let mut resp = String::new();
        writeln!(retry.get_ref(), "{{\"verb\":\"stats\",\"id\":2}}").expect("send");
        retry.read_line(&mut resp).expect("line");
        if resp.contains("\"ok\":true") {
            served = true;
            break;
        }
        assert!(resp.contains("\"overloaded\""), "unexpected refusal shape: {resp}");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(served, "slot never reopened after the first client left");
    shutdown(addr, batcher, h);
}

/// Replace every number (integer or decimal) with `N`: the metrics
/// object's *shape* — keys, nesting, ordering — is the wire contract;
/// the gauges are free-running.
fn mask_numbers(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() {
            while chars.peek().is_some_and(|n| n.is_ascii_digit() || *n == '.') {
                chars.next();
            }
            out.push('N');
        } else {
            out.push(c);
        }
    }
    out
}

#[test]
fn metrics_over_tcp_matches_golden_shape() {
    let (addr, batcher, h) = start(ServerConfig::default());
    let mut conn = connect(addr);
    // Touch every phase so the latency histograms are non-trivially
    // populated (values are masked; presence is what's pinned).
    for i in 0..3u64 {
        let r = call(&mut conn, &compile_line(i));
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    let metrics = call(&mut conn, "{\"verb\":\"metrics\",\"id\":7}");
    assert!(metrics.contains("\"ok\":true"), "{metrics}");
    let fresh = format!("{}\n", mask_numbers(&metrics));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/metrics.txt", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR")))
            .expect("golden dir");
        std::fs::write(&path, &fresh).expect("write golden");
    } else {
        assert_eq!(
            fresh,
            include_str!("golden/metrics.txt"),
            "metrics shape drifted; if intentional, re-bless with \
             UPDATE_GOLDEN=1 cargo test -p sv-serve --test server"
        );
    }
    drop(conn);
    shutdown(addr, batcher, h);
}
