//! Additional modulo-scheduler behaviour tests.

use sv_analysis::DepGraph;
use sv_ir::{Loop, LoopBuilder, OpKind, Opcode, Operand, ScalarType, VectorForm};
use sv_machine::MachineConfig;
use sv_modsched::{compute_mii, compute_recmii, compute_resmii, modulo_schedule};

fn sched(l: &Loop, m: &MachineConfig) -> sv_modsched::Schedule {
    let g = DepGraph::build(l);
    modulo_schedule(l, &g, m).expect("schedulable")
}

/// Build a loop with `n` independent fp multiply chains.
fn fp_chains(n: usize) -> Loop {
    let mut b = LoopBuilder::new("chains");
    let x = b.array("x", ScalarType::F64, 256);
    let y = b.array("y", ScalarType::F64, 256);
    for i in 0..n {
        let lx = b.load(x, 1, i as i64);
        let m1 = b.fmul(lx, lx);
        b.store(y, 1, i as i64, m1);
    }
    b.finish()
}

#[test]
fn vector_issue_limit_serializes_vector_ops() {
    // On the toy machine, vector ops are capped at one per cycle even
    // though three issue slots exist.
    let mut b = LoopBuilder::new("vecs");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let m1 = b.fmul(lx, lx);
    let m2 = b.fmul(ly, ly);
    let s = b.fadd(m1, m2);
    b.store(y, 1, 0, s);
    let src = b.finish();
    // Vectorize everything by hand via the transformer-equivalent: mark
    // vector forms directly using the machine pipeline is overkill here;
    // instead check ResMII arithmetic: 6 vector ops at 1/cycle = 6 rows.
    let machine = MachineConfig::figure1();
    let mut vec_loop = src.clone();
    for op in &mut vec_loop.ops {
        op.opcode = op.opcode.with_form(VectorForm::Vector);
        if let Some(r) = &mut op.mem {
            r.width = 2;
            r.stride = 2;
        }
    }
    vec_loop.iter_scale = 2;
    vec_loop.verify().unwrap();
    assert_eq!(compute_resmii(&vec_loop, &machine), 6);
    let s = sched(&vec_loop, &machine);
    assert_eq!(s.ii, 6);
}

#[test]
fn non_pipelined_divide_forces_ii_at_least_reservation() {
    // Two divides on 2 FP units: each occupies its unit 32 cycles.
    let mut b = LoopBuilder::new("divs");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let d1 = b.fdiv(lx, ly);
    let d2 = b.fdiv(ly, lx);
    let s = b.fadd(d1, d2);
    b.store(x, 1, 32, s);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let s = sched(&l, &m);
    // One divide per FP unit (32 cycles each) plus the add on top of one
    // of them: the bound is 33, not 64.
    assert_eq!(s.resmii, 33);
    assert_eq!(s.ii, 33);
}

#[test]
fn issue_width_binds_wide_loops() {
    // 8 chains × 3 ops = 24 ops on a 6-wide machine: issue ResMII = 4+...
    let l = fp_chains(8);
    let m = MachineConfig::paper_default();
    let s = sched(&l, &m);
    // 16 memory ops dominate: 8 per unit.
    assert_eq!(s.resmii, 8);
    assert_eq!(s.ii, 8);
}

#[test]
fn recmii_dominates_when_cycles_are_slow() {
    let mut b = LoopBuilder::new("slowcycle");
    let a = b.array("a", ScalarType::F64, 64);
    let la = b.load(a, 1, 0);
    let d = b.bin(
        OpKind::Div,
        ScalarType::F64,
        Operand::def(la),
        Operand::ConstF(3.0),
    );
    b.store(a, 1, 1, d);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let g = DepGraph::build(&l);
    // Cycle: load(3) + div(32) + store(1) over distance 1.
    assert_eq!(compute_recmii(&l, &g, &m), 36);
    assert_eq!(compute_mii(&l, &g, &m), 36);
}

#[test]
fn empty_ops_loop_schedules_trivially() {
    let mut l = Loop::new("empty");
    l.trip = sv_ir::TripCount::known(8);
    let m = MachineConfig::paper_default();
    let g = DepGraph::build(&l);
    let s = modulo_schedule(&l, &g, &m).unwrap();
    assert_eq!(s.ii, 1);
    assert_eq!(s.stage_count, 1);
}

#[test]
fn schedule_is_deterministic() {
    let l = fp_chains(5);
    let m = MachineConfig::paper_default();
    let a = sched(&l, &m);
    let b = sched(&l, &m);
    assert_eq!(a.times, b.times);
    assert_eq!(a.assignments, b.assignments);
}

#[test]
fn resmii_orders_constrained_opcodes_first() {
    // A loop mixing merge-unit ops (1 instance) with fp ops (2 instances):
    // the bound must reflect the merge unit exactly, not overshoot from
    // bad packing order.
    let mut l = Loop::new("mergebound");
    let mut b = LoopBuilder::new("shell");
    let x = b.array("x", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let _ = (x, lx);
    let shell = b.finish();
    l.arrays = shell.arrays.clone();
    // 3 vector merges + 1 vector load feeding them.
    let load = l.push_op(sv_ir::Operation {
        id: sv_ir::OpId(0),
        opcode: Opcode::vector(OpKind::Load, ScalarType::F64),
        operands: vec![],
        mem: Some(sv_ir::MemRef { array: sv_ir::ArrayId(0), stride: 2, offset: 0, width: 2 }),
        is_reduction: false,
        carried_init: sv_ir::CarriedInit::Zero,
    });
    for _ in 0..3 {
        l.push_op(sv_ir::Operation {
            id: sv_ir::OpId(0),
            opcode: Opcode::vector(OpKind::Merge, ScalarType::F64),
            operands: vec![Operand::def(load)],
            mem: None,
            is_reduction: false,
            carried_init: sv_ir::CarriedInit::Zero,
        });
    }
    l.iter_scale = 2;
    l.verify().unwrap();
    let m = MachineConfig::paper_default();
    assert_eq!(compute_resmii(&l, &m), 3); // the single merge unit
}
