//! MaxLive register-pressure estimation for modulo schedules.

use sv_analysis::DepGraph;
use sv_ir::{Loop, RegClass};
use sv_machine::MachineConfig;

/// Estimate the maximum number of simultaneously live values per register
/// class for a modulo schedule with initiation interval `ii` and issue
/// times `times`.
///
/// Each value's lifetime runs from its definition to its last read
/// (`σ(use) + II·distance` across iterations); under rotating registers a
/// value spanning `c` cycles occupies `⌈c/II⌉` physical registers, one per
/// concurrently live iteration instance. Values without readers (e.g. pure
/// live-outs) are charged their producer latency.
///
/// The result is indexed in [`RegClass::ALL`] order.
pub fn max_live(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    times: &[u32],
    ii: u32,
) -> [u32; 4] {
    debug_assert_eq!(times.len(), l.ops.len());
    let mut pressure = [0u32; 4];
    for op in &l.ops {
        if !op.defines_value() {
            continue;
        }
        let start = i64::from(times[op.id.index()]);
        let mut end = start + i64::from(m.latency(op.opcode));
        for e in g.succ_edges(op.id) {
            if e.is_mem {
                continue;
            }
            let read = i64::from(times[e.dst.index()]) + i64::from(ii) * i64::from(e.distance);
            end = end.max(read);
        }
        if l.live_outs.iter().any(|lo| lo.op == op.id) {
            // Live-outs survive to the end of the final iteration.
            end = end.max(start + i64::from(ii));
        }
        let span = (end - start).max(1) as u64;
        let regs = span.div_ceil(u64::from(ii)) as u32;
        let class = op.opcode.def_class();
        let slot = RegClass::ALL.iter().position(|&c| c == class).expect("class indexed");
        pressure[slot] += regs;
    }
    pressure
}

/// The modulo-variable-expansion factor: the kernel unroll needed to give
/// every value a private register per concurrently live iteration
/// instance when the machine lacks rotating registers ("if rotating
/// registers are not available, a similar effect is achievable with
/// modulo variable expansion" — the paper citing Lam). Equals the largest
/// `⌈lifetime/II⌉` over all values, at least 1.
pub fn mve_factor(l: &Loop, g: &DepGraph, m: &MachineConfig, times: &[u32], ii: u32) -> u32 {
    let mut factor = 1u32;
    for op in &l.ops {
        if !op.defines_value() {
            continue;
        }
        let start = i64::from(times[op.id.index()]);
        let mut end = start + i64::from(m.latency(op.opcode));
        for e in g.succ_edges(op.id) {
            if e.is_mem {
                continue;
            }
            let read = i64::from(times[e.dst.index()]) + i64::from(ii) * i64::from(e.distance);
            end = end.max(read);
        }
        let span = (end - start).max(1) as u64;
        factor = factor.max(span.div_ceil(u64::from(ii)) as u32);
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::modulo_schedule;
    use sv_ir::{LoopBuilder, ScalarType};

    #[test]
    fn mve_factor_tracks_longest_lifetime() {
        // Copy loop at II = 1: the loaded value lives for the load latency
        // (3 cycles), so 3 kernel copies are needed without rotation.
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        assert_eq!(s.ii, 1);
        assert_eq!(s.mve_factor, s.times[1] - s.times[0]);
        assert!(s.mve_factor >= 3);
    }

    #[test]
    fn mve_factor_is_one_at_large_ii() {
        // A divide-bound loop has a huge II; every lifetime fits one stage.
        let mut b = LoopBuilder::new("div");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let d = b.fdiv(lx, lx);
        b.store(x, 1, 32, d);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        assert!(s.ii >= 32);
        assert_eq!(s.mve_factor, 1);
    }

    #[test]
    fn copy_loop_pressure_counts_load_lifetime() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        // II = 1 and the loaded value lives ≥ 3 cycles ⇒ ≥ 3 fp registers.
        let fp = s.max_live[1];
        assert!(fp >= 3, "fp pressure {fp}");
        assert!(s.register_pressure_ok);
    }

    #[test]
    fn pressure_separates_classes() {
        let mut b = LoopBuilder::new("mixed");
        let x = b.array("x", ScalarType::F64, 64);
        let ix = b.array("ix", ScalarType::I64, 64);
        let lx = b.load(x, 1, 0);
        let li = b.load(ix, 1, 0);
        b.store(x, 1, 16, lx);
        b.store(ix, 1, 16, li);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        assert!(s.max_live[0] >= 1, "int pressure");
        assert!(s.max_live[1] >= 1, "fp pressure");
        assert_eq!(s.max_live[2] + s.max_live[3], 0, "no vector values");
    }
}
