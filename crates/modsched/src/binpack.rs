//! Greedy resource bin-packing (paper Figure 2, lines 33–66).
//!
//! A bin is associated with each compiler-visible resource *instance*; an
//! operation reserves one instance of each resource class it requires,
//! choosing the alternative that minimizes the weight of the most heavily
//! used resource, with ties broken by the sum of squared bin weights. The
//! squared-sum tie-break keeps the bins balanced so the partitioner's
//! incremental release/reserve cost probes stay accurate — exactly the
//! optimization the paper describes in §3.2.

use sv_machine::{Reservation, ResourcePool};

/// The reservations one logical operation made, so they can be released
/// later (the partitioner's checkpoint/release/reserve probe).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Placement {
    /// `(dense instance id, cycles)` pairs.
    entries: Vec<(usize, u32)>,
}

impl Placement {
    /// Build a placement from raw `(dense instance id, cycles)` pairs.
    pub fn from_entries(entries: Vec<(usize, u32)>) -> Placement {
        Placement { entries }
    }

    /// The reserved `(dense instance id, cycles)` pairs.
    pub fn entries(&self) -> &[(usize, u32)] {
        &self.entries
    }

    /// Absorb another placement's reservations (so one logical item can
    /// bundle several `reserve` calls and release them together).
    pub fn extend(&mut self, other: Placement) {
        self.entries.extend(other.entries);
    }

    /// Total cycles reserved across all instances.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| u64::from(c)).sum()
    }
}

/// Resource usage bins over a machine's resource pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bins {
    pool: ResourcePool,
    weights: Vec<u32>,
}

impl Bins {
    /// Empty bins over `pool`.
    pub fn new(pool: ResourcePool) -> Bins {
        let weights = vec![0; pool.len()];
        Bins { pool, weights }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Weight (reserved cycles) of each instance, dense-id indexed.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The weight of the most heavily used resource — the configuration
    /// cost, i.e. the resource-constrained minimum initiation interval.
    pub fn high_water_mark(&self) -> u32 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Sum of squared bin weights; the balance-sensitive secondary cost.
    pub fn sum_squares(&self) -> u64 {
        self.weights.iter().map(|&w| u64::from(w) * u64::from(w)).sum()
    }

    /// Reserve one least-used instance of each required class
    /// (RESERVE-LEAST-USED): among a class's alternatives pick the one
    /// that, after adding the reservation, minimizes the high-water mark,
    /// breaking ties by the sum of squares. Returns the placement for later
    /// release.
    ///
    /// # Panics
    ///
    /// Panics when a required class has no instances in the pool — a
    /// machine/opcode mismatch.
    pub fn reserve(&mut self, reqs: &[Reservation]) -> Placement {
        let mut placement = Placement::default();
        placement.entries.reserve(reqs.len());
        for r in reqs {
            let alts = self.pool.alternative_range(r.class);
            assert!(
                !alts.is_empty(),
                "opcode requires {} but the machine has none",
                r.class
            );
            // Precompute current high and sum of squares once; candidates
            // only change one bin.
            let cur_high = self.high_water_mark();
            let cur_sq = self.sum_squares();
            let mut best: Option<(u32, u64, usize)> = None;
            for id in alts {
                let w_old = self.weights[id];
                let w_new = w_old + r.cycles;
                let high = cur_high.max(w_new);
                let sq = cur_sq - u64::from(w_old) * u64::from(w_old)
                    + u64::from(w_new) * u64::from(w_new);
                let cand = (high, sq, id);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
            let (_, _, id) = best.expect("non-empty alternatives");
            self.weights[id] += r.cycles;
            placement.entries.push((id, r.cycles));
        }
        placement
    }

    /// Snapshot the current weights (cheap checkpoint for cost probes).
    pub fn checkpoint(&self) -> Vec<u32> {
        self.weights.clone()
    }

    /// Restore weights saved by [`Bins::checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics when the snapshot came from a different pool (length
    /// mismatch).
    pub fn restore(&mut self, snapshot: &[u32]) {
        assert_eq!(snapshot.len(), self.weights.len(), "snapshot pool mismatch");
        self.weights.copy_from_slice(snapshot);
    }

    /// Release a previous placement (the partitioner's RELEASE-RESOURCES).
    ///
    /// # Panics
    ///
    /// Panics when the placement was not actually reserved (weights would
    /// go negative) — a caller bookkeeping bug.
    pub fn release(&mut self, placement: &Placement) {
        for &(id, cycles) in &placement.entries {
            assert!(
                self.weights[id] >= cycles,
                "releasing more cycles than reserved on bin {id}"
            );
            self.weights[id] -= cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_machine::{MachineConfig, ResourceClass};
    use sv_ir::{OpKind, Opcode, ScalarType};

    fn paper_bins() -> (MachineConfig, Bins) {
        let m = MachineConfig::paper_default();
        let b = Bins::new(m.resource_pool());
        (m, b)
    }

    #[test]
    fn empty_bins_cost_zero() {
        let (_, b) = paper_bins();
        assert_eq!(b.high_water_mark(), 0);
        assert_eq!(b.sum_squares(), 0);
    }

    #[test]
    fn spreads_across_alternatives() {
        let (m, mut b) = paper_bins();
        let load = Opcode::scalar(OpKind::Load, ScalarType::F64);
        // Two loads on two mem units: high-water mark stays 1.
        b.reserve(&m.requirements(load));
        b.reserve(&m.requirements(load));
        assert_eq!(b.high_water_mark(), 1);
        // A third must stack.
        b.reserve(&m.requirements(load));
        assert_eq!(b.high_water_mark(), 2);
    }

    #[test]
    fn release_restores_exactly() {
        let (m, mut b) = paper_bins();
        let snapshot = b.clone();
        let fmul = Opcode::scalar(OpKind::Mul, ScalarType::F64);
        let p = b.reserve(&m.requirements(fmul));
        assert_ne!(b, snapshot);
        b.release(&p);
        assert_eq!(b, snapshot);
    }

    #[test]
    fn divide_reserves_full_latency() {
        let (m, mut b) = paper_bins();
        let fdiv = Opcode::scalar(OpKind::Div, ScalarType::F64);
        let p = b.reserve(&m.requirements(fdiv));
        assert_eq!(b.high_water_mark(), 32);
        assert_eq!(p.total_cycles(), 33); // 32 on the FP unit + 1 issue slot
    }

    #[test]
    fn sum_squares_balances_issue_slots() {
        let (m, mut b) = paper_bins();
        let fadd = Opcode::scalar(OpKind::Add, ScalarType::F64);
        // Six fp adds: 2 fp units (3 each), and issue slots should spread
        // 1 each over the 6 slots rather than stacking.
        for _ in 0..6 {
            b.reserve(&m.requirements(fadd));
        }
        let pool = b.pool().clone();
        let issue_weights: Vec<u32> = pool
            .alternatives(ResourceClass::Issue)
            .iter()
            .map(|i| b.weights()[pool.dense_id(*i)])
            .collect();
        assert_eq!(issue_weights, vec![1; 6]);
        assert_eq!(b.high_water_mark(), 3);
    }

    #[test]
    #[should_panic(expected = "the machine has none")]
    fn missing_class_panics() {
        let mut m = MachineConfig::paper_default();
        m.merge_units = 0;
        let mut b = Bins::new(m.resource_pool());
        let merge = Opcode::vector(OpKind::Merge, ScalarType::F64);
        b.reserve(&m.requirements(merge));
    }

    #[test]
    #[should_panic(expected = "releasing more cycles")]
    fn over_release_panics() {
        let (m, mut b) = paper_bins();
        let load = Opcode::scalar(OpKind::Load, ScalarType::F64);
        let p = b.reserve(&m.requirements(load));
        b.release(&p);
        b.release(&p);
    }
}
