//! Minimum initiation interval bounds: ResMII and RecMII.

use crate::binpack::Bins;
use sv_analysis::{DepEdge, DepGraph, DepKind};
use sv_ir::Loop;
use sv_machine::MachineConfig;

/// The scheduling delay a dependence edge imposes:
/// `σ(dst) + II·distance ≥ σ(src) + delay`.
///
/// Register flow edges carry the producer's latency. Memory flow edges
/// carry the store latency (the load may issue once the store completes);
/// anti edges carry 0 (a write may issue in the cycle its reader issues);
/// output edges carry 1 (stores to the same location stay ordered).
pub fn edge_delay(e: &DepEdge, l: &Loop, m: &MachineConfig) -> i64 {
    if !e.is_mem {
        return i64::from(m.latency(l.op(e.src).opcode));
    }
    match e.kind {
        DepKind::Flow => i64::from(m.latency(l.op(e.src).opcode)),
        DepKind::Anti => 0,
        DepKind::Output => 1,
    }
}

/// Resource-constrained minimum II of a loop on machine `m`, by the ordered
/// greedy bin-packing of the paper's Figure 2: operations with the fewest
/// scheduling alternatives are placed first, each on the least-used
/// alternative; the high-water mark over all bins is the bound. Loop
/// control overhead is included when the machine charges it.
pub fn compute_resmii(l: &Loop, m: &MachineConfig) -> u32 {
    let pool = m.resource_pool();
    let mut bins = Bins::new(pool.clone());
    for reqs in m.loop_overhead() {
        bins.reserve(&reqs);
    }
    let mut order: Vec<usize> = (0..l.ops.len()).collect();
    order.sort_by_key(|&i| (m.alternatives_count_in(&pool, l.ops[i].opcode), i));
    for i in order {
        bins.reserve(&m.requirements(l.ops[i].opcode));
    }
    bins.high_water_mark()
}

/// Recurrence-constrained minimum II: the maximum over dependence cycles of
/// `⌈Σ delay / Σ distance⌉`, computed by binary-searching the smallest II
/// for which the graph has no positive-weight cycle under edge weights
/// `delay − II·distance` (Bellman–Ford from a virtual source).
pub fn compute_recmii(l: &Loop, g: &DepGraph, m: &MachineConfig) -> u32 {
    let max_delay: i64 = g.edges().iter().map(|e| edge_delay(e, l, m).max(0)).sum();
    if max_delay == 0 || g.edges().is_empty() {
        return 1;
    }
    let (mut lo, mut hi) = (1i64, max_delay.max(1));
    // Invariant: hi admits no positive cycle; lo-1 untested/lo may fail.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(l, g, m, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    u32::try_from(lo).unwrap_or(u32::MAX)
}

/// The final MII: `max(ResMII, RecMII)` (and at least 1).
pub fn compute_mii(l: &Loop, g: &DepGraph, m: &MachineConfig) -> u32 {
    compute_resmii(l, m).max(compute_recmii(l, g, m)).max(1)
}

/// Bellman–Ford longest-path relaxation; reports whether any cycle has
/// positive total weight `Σ(delay − II·distance)`.
fn has_positive_cycle(l: &Loop, g: &DepGraph, m: &MachineConfig, ii: i64) -> bool {
    let n = g.op_count();
    if n == 0 {
        return false;
    }
    let mut dist = vec![0i64; n];
    for round in 0..n {
        let mut changed = false;
        for e in g.edges() {
            let w = edge_delay(e, l, m) - ii * i64::from(e.distance);
            let cand = dist[e.src.index()] + w;
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        let _ = round;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;

    fn dep_graph(l: &Loop) -> DepGraph {
        DepGraph::build(l)
    }

    #[test]
    fn resmii_counts_memory_pressure() {
        // 4 loads + 1 store on 2 mem units ⇒ ResMII ≥ 3 (5 mem ops / 2).
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let l0 = b.load(x, 1, 0);
        let l1 = b.load(x, 1, 1);
        let l2 = b.load(x, 1, 2);
        let l3 = b.load(x, 1, 3);
        let s0 = b.fadd(l0, l1);
        let s1 = b.fadd(l2, l3);
        let s2 = b.fadd(s0, s1);
        b.store(y, 1, 0, s2);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert_eq!(compute_resmii(&l, &m), 3);
    }

    #[test]
    fn resmii_includes_loop_overhead() {
        // One fp add alone: without overhead II bound would be 1; the branch
        // and IV update occupy other units so it stays 1 on the big machine.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(x, 1, 32, lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert_eq!(compute_resmii(&l, &m), 1);
        // With a single-issue machine the overhead dominates: 2 mem ops +
        // branch + IV update on 1 issue slot = 4.
        let mut narrow = m.clone();
        narrow.issue_width = 1;
        assert_eq!(compute_resmii(&l, &narrow), 4);
    }

    #[test]
    fn recmii_of_reduction_is_fp_latency() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        // s = s + x: self edge distance 1, delay = fp_alu = 4.
        assert_eq!(compute_recmii(&l, &dep_graph(&l), &m), 4);
    }

    #[test]
    fn recmii_of_straight_line_is_one() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(y, 1, 0, n);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert_eq!(compute_recmii(&l, &dep_graph(&l), &m), 1);
    }

    #[test]
    fn recmii_memory_recurrence_divides_by_distance() {
        // a[i+2] = -a[i]: cycle delay = load(3)→neg(4 over fp)... delay sum:
        // load latency 3 (load→neg) + fp 4 (neg→store) + store 1
        // (store→load), distance sum 2 ⇒ RecMII = ceil(8/2) = 4.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 2, n);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert_eq!(compute_recmii(&l, &dep_graph(&l), &m), 4);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = dep_graph(&l);
        assert_eq!(compute_mii(&l, &g, &m), 4); // RecMII dominates ResMII=1
    }

    #[test]
    fn figure1_machine_unit_latency_reduction() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::figure1();
        assert_eq!(compute_recmii(&l, &dep_graph(&l), &m), 1);
    }
}
