//! Rau's iterative modulo scheduling.

use crate::mii::{compute_mii, compute_recmii, compute_resmii, edge_delay};
use crate::pressure::{max_live, mve_factor};
use sv_analysis::DepGraph;
use sv_ir::{Loop, RegClass};
use sv_machine::{MachineConfig, ResourceInstance};
use std::fmt;

/// Budget of scheduling steps per operation before giving up on an II
/// (Rau recommends a small multiple of the operation count).
const BUDGET_RATIO: usize = 16;

/// How far past MII the scheduler escalates before failing.
const MAX_II_SLACK: u32 = 256;

/// Deterministic work budgets for the scheduler's II search, exposed so a
/// driver can bound compile time per loop (and degrade to a cheaper
/// strategy on exhaustion) instead of inheriting the generous built-in
/// limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Scheduling steps per operation before one II attempt is abandoned.
    pub budget_ratio: usize,
    /// How far past MII the II search escalates before failing with
    /// [`ScheduleError::BudgetExhausted`].
    pub max_ii_slack: u32,
}

impl Default for ScheduleConfig {
    fn default() -> ScheduleConfig {
        ScheduleConfig { budget_ratio: BUDGET_RATIO, max_ii_slack: MAX_II_SLACK }
    }
}

/// A modulo schedule for one loop.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Resource-constrained bound that was computed for the loop.
    pub resmii: u32,
    /// Recurrence-constrained bound.
    pub recmii: u32,
    /// Flat issue cycle of each operation (index = op id).
    pub times: Vec<u32>,
    /// Resource instances each operation occupies, with reservation length;
    /// the occupied MRT rows are `(times[op] + j) mod ii` for
    /// `j < cycles`.
    pub assignments: Vec<Vec<(ResourceInstance, u32)>>,
    /// Schedule length: `max(times) + 1`.
    pub length: u32,
    /// Number of pipeline stages: `⌊max(times)/ii⌋ + 1`.
    pub stage_count: u32,
    /// MaxLive register-pressure estimate per register class, in
    /// [`RegClass::ALL`] order.
    pub max_live: [u32; 4],
    /// Kernel copies modulo variable expansion would need on a machine
    /// without rotating registers (`max ⌈lifetime/II⌉`); 1 means the
    /// kernel needs no unrolling.
    pub mve_factor: u32,
    /// Whether the pressure estimate fits the machine's register files.
    pub register_pressure_ok: bool,
    /// Every II value the search attempted (in order, successful last) —
    /// the search-effort counter surfaced by the driver's `PassStats`.
    pub iis_tried: Vec<u32>,
}

impl Schedule {
    /// II per *original* iteration: `ii / iter_scale` of the scheduled loop.
    pub fn ii_per_original(&self, iter_scale: u32) -> f64 {
        f64::from(self.ii) / f64::from(iter_scale)
    }
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No schedule found up to `mii + MAX_II_SLACK`; pathological input.
    BudgetExhausted {
        /// The minimum II that was computed.
        mii: u32,
        /// The last II attempted.
        tried_up_to: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::BudgetExhausted { mii, tried_up_to } => write!(
                f,
                "no modulo schedule found between II={mii} and II={tried_up_to}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Modulo-schedule `l` for machine `m` using dependence graph `g`.
///
/// Escalates the II from MII until a schedule fits, then retries a few
/// extra IIs if the MaxLive estimate exceeds a register file (the paper's
/// machine has deep files, so this is rare); if pressure still does not
/// fit, the schedule is returned with
/// [`Schedule::register_pressure_ok`] `== false`.
///
/// # Errors
///
/// Returns [`ScheduleError::BudgetExhausted`] when no II within the slack
/// window admits a schedule, which does not happen for structurally valid
/// loops on machines that can execute every opcode.
pub fn modulo_schedule(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
) -> Result<Schedule, ScheduleError> {
    modulo_schedule_with(l, g, m, &ScheduleConfig::default())
}

/// [`modulo_schedule`] under explicit [`ScheduleConfig`] work budgets.
///
/// # Errors
///
/// Returns [`ScheduleError::BudgetExhausted`] when no II within
/// `mii + cfg.max_ii_slack` admits a schedule under `cfg.budget_ratio`
/// steps per operation.
pub fn modulo_schedule_with(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    cfg: &ScheduleConfig,
) -> Result<Schedule, ScheduleError> {
    let resmii = compute_resmii(l, m);
    let recmii = compute_recmii(l, g, m);
    let mii = compute_mii(l, g, m);
    let mut first_fit: Option<Schedule> = None;
    let mut pressure_retries = 0u32;
    let mut iis_tried: Vec<u32> = Vec::new();

    for ii in mii..=mii.saturating_add(cfg.max_ii_slack) {
        iis_tried.push(ii);
        let Some((times, assignments)) = try_ii(l, g, m, ii, cfg.budget_ratio) else {
            continue;
        };
        let length = times.iter().copied().max().unwrap_or(0) + 1;
        let stage_count = (length - 1) / ii + 1;
        let pressure = max_live(l, g, m, &times, ii);
        let mve = mve_factor(l, g, m, &times, ii);
        let ok = RegClass::ALL
            .iter()
            .enumerate()
            .all(|(i, &c)| pressure[i] <= m.regs.size(c))
            // One rotating stage predicate per pipeline stage (the
            // kernel-only code schema the paper's machine supports).
            && stage_count <= m.regs.predicates;
        let sched = Schedule {
            ii,
            resmii,
            recmii,
            times,
            assignments,
            length,
            stage_count,
            max_live: pressure,
            mve_factor: mve,
            register_pressure_ok: ok,
            iis_tried: iis_tried.clone(),
        };
        if ok {
            return Ok(sched);
        }
        if first_fit.is_none() {
            first_fit = Some(sched);
        }
        pressure_retries += 1;
        if pressure_retries > 4 {
            break;
        }
    }
    first_fit
        .map(|mut s| {
            s.iis_tried = iis_tried;
            s
        })
        .ok_or(ScheduleError::BudgetExhausted {
            mii,
            tried_up_to: mii.saturating_add(cfg.max_ii_slack),
        })
}

/// Cell occupancy in the modulo reservation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Free,
    /// Loop-control overhead; never evicted.
    Overhead,
    /// Occupied by op index.
    Op(u32),
}

struct Mrt {
    ii: usize,
    width: usize,
    cells: Vec<Cell>, // row-major [row][instance]
}

impl Mrt {
    fn new(ii: u32, width: usize) -> Mrt {
        Mrt {
            ii: ii as usize,
            width,
            cells: vec![Cell::Free; ii as usize * width],
        }
    }

    #[inline]
    fn at(&self, row: usize, inst: usize) -> Cell {
        self.cells[row * self.width + inst]
    }

    #[inline]
    fn set(&mut self, row: usize, inst: usize, c: Cell) {
        self.cells[row * self.width + inst] = c;
    }

    /// Is `inst` free at rows `(t + j) mod ii` for `j < cycles`?
    fn inst_free(&self, inst: usize, t: u32, cycles: u32) -> bool {
        if cycles as usize > self.ii {
            return false;
        }
        (0..cycles).all(|j| {
            self.at(((t + j) as usize) % self.ii, inst) == Cell::Free
        })
    }

    fn occupy(&mut self, inst: usize, t: u32, cycles: u32, c: Cell) {
        for j in 0..cycles {
            self.set(((t + j) as usize) % self.ii, inst, c);
        }
    }
}

type Assignments = Vec<Vec<(ResourceInstance, u32)>>;

fn try_ii(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    ii: u32,
    budget_ratio: usize,
) -> Option<(Vec<u32>, Assignments)> {
    let n = l.ops.len();
    let pool = m.resource_pool();
    let mut mrt = Mrt::new(ii, pool.len());

    // Pre-reserve loop-control overhead: the back branch in the kernel's
    // last row, the induction update in row 0.
    let overhead = m.loop_overhead();
    for (idx, reqs) in overhead.iter().enumerate() {
        let row = if idx == 0 { ii - 1 } else { 0 };
        for r in reqs {
            let inst = pool
                .alternatives(r.class)
                .iter()
                .find(|i| mrt.inst_free(pool.dense_id(**i), row, r.cycles))?;
            mrt.occupy(pool.dense_id(*inst), row, r.cycles, Cell::Overhead);
        }
    }

    let heights = compute_heights(l, g, m, ii);
    // Operations on dependence cycles have no scheduling slack to spare:
    // placing them after resource-hungry independent ops wedges the MRT and
    // causes displacement thrashing. Schedule recurrence members first
    // (Lam's SCC-first ordering), then the rest by height.
    let sccs = sv_analysis::strongly_connected_components(g);
    let on_cycle: Vec<bool> = (0..n)
        .map(|i| sccs.in_cycle(sv_ir::OpId(i as u32), g))
        .collect();
    let mut sched: Vec<Option<u32>> = vec![None; n];
    let mut prev: Vec<Option<u32>> = vec![None; n];
    let mut assignments: Assignments = vec![Vec::new(); n];
    let mut budget = budget_ratio * n.max(4);

    while let Some(op) = (0..n)
        .filter(|&i| sched[i].is_none())
        .max_by_key(|&i| (on_cycle[i], heights[i], std::cmp::Reverse(i)))
    {
        // `op` is the highest-priority unscheduled op: recurrence members
        // first, then height, then earlier program order.
        if budget == 0 {
            return None;
        }
        budget -= 1;

        // Earliest start from scheduled predecessors.
        let mut estart = 0i64;
        for e in g.pred_edges(sv_ir::OpId(op as u32)) {
            if e.src.index() == op {
                continue; // self cycles are honored by II >= RecMII
            }
            if let Some(ts) = sched[e.src.index()] {
                let lb = i64::from(ts) + edge_delay(e, l, m)
                    - i64::from(ii) * i64::from(e.distance);
                estart = estart.max(lb);
            }
        }
        let estart = u32::try_from(estart.max(0)).expect("estart fits u32");

        // Latest start honoring already-scheduled successors (the slack
        // bound). Searching past it can never produce a valid schedule for
        // an op on a recurrence — it would only displace the successor one
        // stage later, forever. When the window closes we *force* a
        // placement and evict, which attacks the resource conflict instead.
        let mut lstart = i64::from(estart) + i64::from(ii) - 1;
        for e in g.succ_edges(sv_ir::OpId(op as u32)) {
            if e.dst.index() == op {
                continue;
            }
            if let Some(td) = sched[e.dst.index()] {
                let ub = i64::from(td) + i64::from(ii) * i64::from(e.distance)
                    - edge_delay(e, l, m);
                lstart = lstart.min(ub);
            }
        }

        let reqs = m.requirements(l.ops[op].opcode);
        let slot = if lstart >= i64::from(estart) {
            (estart..=u32::try_from(lstart).expect("lstart fits u32"))
                .find(|&t| fits(&mrt, &pool, &reqs, t))
        } else {
            None
        };
        let t = match slot {
            Some(t) => t,
            None => match prev[op] {
                Some(p) => estart.max(p + 1),
                None => estart,
            },
        };

        // Evict whatever resource conflicts remain at t (no-ops when the
        // slot search succeeded).
        let mut placement = Vec::with_capacity(reqs.len());
        for r in &reqs {
            let alts = pool.alternatives(r.class);
            debug_assert!(!alts.is_empty());
            // Prefer a free instance; otherwise evict from the instance
            // with the fewest occupying ops (sentinels block).
            let chosen = alts
                .iter()
                .map(|i| pool.dense_id(*i))
                .find(|&i| mrt.inst_free(i, t, r.cycles))
                .or_else(|| {
                    alts.iter()
                        .map(|i| pool.dense_id(*i))
                        .filter(|&i| {
                            (0..r.cycles).all(|j| {
                                mrt.at(((t + j) as usize) % mrt.ii, i) != Cell::Overhead
                            })
                        })
                        .min_by_key(|&i| {
                            (0..r.cycles)
                                .filter(|&j| {
                                    matches!(
                                        mrt.at(((t + j) as usize) % mrt.ii, i),
                                        Cell::Op(_)
                                    )
                                })
                                .count()
                        })
                })?;
            // Evict occupants (an op reserving several consecutive rows,
            // e.g. a non-pipelined divide, appears once per row — dedup).
            let mut evicted = Vec::new();
            for j in 0..r.cycles {
                if let Cell::Op(v) = mrt.at(((t + j) as usize) % mrt.ii, chosen) {
                    if !evicted.contains(&(v as usize)) {
                        evicted.push(v as usize);
                    }
                }
            }
            for v in evicted {
                unschedule(v, &mut sched, &mut prev, &mut assignments, &mut mrt, &pool);
            }
            mrt.occupy(chosen, t, r.cycles, Cell::Op(op as u32));
            placement.push((pool.instances()[chosen], r.cycles));
        }
        sched[op] = Some(t);
        prev[op] = Some(t);
        assignments[op] = placement;

        // Displace scheduled successors whose dependence is now violated.
        let succ_fixups: Vec<usize> = g
            .succ_edges(sv_ir::OpId(op as u32))
            .filter(|e| e.dst.index() != op)
            .filter_map(|e| {
                let td = sched[e.dst.index()]?;
                let need = i64::from(t) + edge_delay(e, l, m)
                    - i64::from(ii) * i64::from(e.distance);
                (i64::from(td) < need).then_some(e.dst.index())
            })
            .collect();
        for v in succ_fixups {
            if sched[v].is_some() {
                unschedule(v, &mut sched, &mut prev, &mut assignments, &mut mrt, &pool);
            }
        }
    }

    let times: Vec<u32> = sched.into_iter().map(|t| t.expect("all scheduled")).collect();
    Some((times, assignments))
}

fn fits(mrt: &Mrt, pool: &sv_machine::ResourcePool, reqs: &[sv_machine::Reservation], t: u32) -> bool {
    // Check each reservation greedily; reservations of one op are for
    // distinct classes, so independent checks suffice.
    reqs.iter().all(|r| {
        pool.alternatives(r.class)
            .iter()
            .any(|i| mrt.inst_free(pool.dense_id(*i), t, r.cycles))
    })
}

fn unschedule(
    op: usize,
    sched: &mut [Option<u32>],
    prev: &mut [Option<u32>],
    assignments: &mut Assignments,
    mrt: &mut Mrt,
    pool: &sv_machine::ResourcePool,
) {
    let t = sched[op].expect("unscheduling an unscheduled op");
    for (inst, cycles) in assignments[op].drain(..) {
        let id = pool.dense_id(inst);
        for j in 0..cycles {
            debug_assert_eq!(mrt.at(((t + j) as usize) % mrt.ii, id), Cell::Op(op as u32));
            mrt.set(((t + j) as usize) % mrt.ii, id, Cell::Free);
        }
    }
    sched[op] = None;
    prev[op] = Some(t);
}

/// Height-based priority: the longest `delay − II·distance` path from each
/// op to any sink, computed by relaxation (no positive cycles exist at
/// II ≥ RecMII, so this converges). Shared with the exact feasibility
/// probe in [`crate::exact`], which orders its search the same way.
pub(crate) fn compute_heights(l: &Loop, g: &DepGraph, m: &MachineConfig, ii: u32) -> Vec<i64> {
    let n = l.ops.len();
    let mut h = vec![0i64; n];
    for _ in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            if e.src == e.dst {
                continue;
            }
            let w = edge_delay(e, l, m) - i64::from(ii) * i64::from(e.distance);
            let cand = h[e.dst.index()] + w;
            if cand > h[e.src.index()] {
                h[e.src.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    fn sched(l: &Loop, m: &MachineConfig) -> Schedule {
        let g = DepGraph::build(l);
        modulo_schedule(l, &g, m).expect("schedulable")
    }

    /// Every dependence must hold: σ(dst) + II·d ≥ σ(src) + delay.
    fn assert_valid(l: &Loop, m: &MachineConfig, s: &Schedule) {
        let g = DepGraph::build(l);
        for e in g.edges() {
            if e.src == e.dst {
                continue;
            }
            let lhs = i64::from(s.times[e.dst.index()])
                + i64::from(s.ii) * i64::from(e.distance);
            let rhs = i64::from(s.times[e.src.index()]) + edge_delay(e, l, m);
            assert!(lhs >= rhs, "violated {e:?} in {}", l.name);
        }
        // Resource usage per modulo row never exceeds capacity.
        let pool = m.resource_pool();
        let mut usage = vec![vec![0u32; pool.len()]; s.ii as usize];
        for (op, placement) in s.assignments.iter().enumerate() {
            for (inst, cycles) in placement {
                for j in 0..*cycles {
                    let row = ((s.times[op] + j) % s.ii) as usize;
                    usage[row][pool.dense_id(*inst)] += 1;
                }
            }
        }
        for row in &usage {
            for (i, &u) in row.iter().enumerate() {
                assert!(u <= 1, "instance {i} multiply reserved");
            }
        }
    }

    #[test]
    fn copy_loop_achieves_ii_one() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let s = sched(&l, &m);
        assert_eq!(s.ii, 1);
        assert_valid(&l, &m, &s);
        // Load latency 3 ⇒ the store sits ≥ 3 cycles later ⇒ ≥ 4 stages.
        assert!(s.stage_count >= 4, "stage_count = {}", s.stage_count);
    }

    #[test]
    fn reduction_loop_hits_recmii() {
        let mut b = LoopBuilder::new("red");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let s = sched(&l, &m);
        assert_eq!(s.ii, 4);
        assert_eq!(s.recmii, 4);
        assert_valid(&l, &m, &s);
    }

    #[test]
    fn mem_bound_loop_hits_resmii() {
        let mut b = LoopBuilder::new("mem");
        let x = b.array("x", ScalarType::F64, 256);
        let y = b.array("y", ScalarType::F64, 256);
        let mut acc = Vec::new();
        for o in 0..5 {
            acc.push(b.load(x, 1, o));
        }
        let mut s = acc[0];
        for &a in &acc[1..] {
            s = b.fadd(s, a);
        }
        b.store(y, 1, 0, s);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let sc = sched(&l, &m);
        assert_eq!(sc.resmii, 3); // 6 mem ops / 2 units
        assert_eq!(sc.ii, 3);
        assert_valid(&l, &m, &sc);
    }

    #[test]
    fn divide_loop_respects_non_pipelined_unit() {
        let mut b = LoopBuilder::new("div");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let d = b.fdiv(lx, ly);
        b.store(y, 1, 0, d);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let s = sched(&l, &m);
        // One divide occupying an FP unit 32 cycles, 2 FP units ⇒ ResMII 32
        // (bin packing puts the 32-cycle reservation on one unit).
        assert_eq!(s.resmii, 32);
        assert_valid(&l, &m, &s);
    }

    #[test]
    fn figure1_baseline_modulo_schedule() {
        // The paper's Figure 1(c): dot product, 3 slots, unit latency,
        // II = 2 (4 ops / 3 slots, reduction cycle gives RecMII 1).
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        let l = b.finish();
        let m = MachineConfig::figure1();
        let s = sched(&l, &m);
        assert_eq!(s.resmii, 2);
        assert_eq!(s.ii, 2);
        assert_valid(&l, &m, &s);
    }

    #[test]
    fn memory_recurrence_schedules_at_recmii() {
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 2, n);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let s = sched(&l, &m);
        assert_eq!(s.ii, 4);
        assert_valid(&l, &m, &s);
    }

    #[test]
    fn big_loop_schedules_and_validates() {
        let mut b = LoopBuilder::new("big");
        let x = b.array("x", ScalarType::F64, 4096);
        let y = b.array("y", ScalarType::F64, 4096);
        let z = b.array("z", ScalarType::F64, 4096);
        let mut vals = Vec::new();
        for o in 0..6 {
            let lx = b.load(x, 1, o);
            let ly = b.load(y, 1, o);
            let m1 = b.fmul(lx, ly);
            let a1 = b.fadd(m1, lx);
            vals.push(a1);
        }
        for (o, v) in vals.iter().enumerate() {
            b.store(z, 1, o as i64, *v);
        }
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let s = sched(&l, &m);
        assert_valid(&l, &m, &s);
        assert_eq!(s.ii, 9); // 18 mem ops on 2 units
    }

    #[test]
    fn ii_per_original_scales() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let s = sched(&l, &m);
        assert_eq!(s.ii_per_original(2), 0.5);
    }
}
