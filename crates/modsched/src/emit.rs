//! Flat code emission: prologue / kernel / epilogue.
//!
//! A modulo schedule is a recipe; real code generation lays it out as the
//! classic three-part software pipeline (Rau's "code generation schema"):
//! a **prologue** that fills the pipeline one stage at a time, a **kernel**
//! of `II` VLIW rows executed `n − SC + 1` times with all `SC` stages in
//! flight, and an **epilogue** that drains the remaining iterations. On
//! the paper's machine the kernel is guarded by stage predicates over
//! rotating registers, so prologue and epilogue can also be expressed as
//! predicated kernel copies; this module emits the explicit (unpredicated)
//! layout, which is also what modulo variable expansion needs.

use crate::sched::Schedule;
use sv_ir::{Loop, OpId};
use std::fmt;

/// One issue row: the operation instances launched in a single cycle.
/// `iteration_offset` identifies which loop iteration the instance belongs
/// to — absolute from the start in the prologue, relative to the kernel's
/// running base in the kernel, and counted back from the last iteration in
/// the epilogue.
pub type Row = Vec<(OpId, u64)>;

/// The flat three-part layout of a modulo schedule.
#[derive(Debug, Clone)]
pub struct FlatListing {
    /// Initiation interval the layout repeats at.
    pub ii: u32,
    /// Stage count `SC`.
    pub stage_count: u32,
    /// `(SC − 1) · II` fill rows; entries carry absolute iteration numbers
    /// (0-based from the first iteration).
    pub prologue: Vec<Row>,
    /// `II` steady-state rows; entries carry the *stage* of the op, i.e.
    /// at kernel execution `t` the instance belongs to iteration
    /// `t + (SC − 1) − stage`.
    pub kernel: Vec<Row>,
    /// `(SC − 1) · II + drain` rows; entries count iterations back from
    /// the last (`0` = final iteration).
    pub epilogue: Vec<Row>,
    /// `Some(n)` when the layout was emitted for a short trip `n < SC`:
    /// the pipeline never fills, so *all* `n` iterations live in the
    /// prologue (absolute iteration numbers), the kernel executes zero
    /// times and the epilogue is empty. `None` is the general layout,
    /// valid for any `n ≥ SC`.
    pub truncated_for: Option<u64>,
}

impl FlatListing {
    /// How many times the kernel executes for `n` iterations:
    /// `n − SC + 1` for the general layout, zero for a truncated one.
    pub fn kernel_executions(&self, n: u64) -> u64 {
        match self.truncated_for {
            Some(t) => {
                assert_eq!(t, n, "truncated layout reused for a different trip");
                0
            }
            None => {
                let sc = u64::from(self.stage_count);
                assert!(n >= sc, "general flat layout needs n >= stage_count");
                n - sc + 1
            }
        }
    }

    /// Total operation instances the layout executes for `n` iterations
    /// (`n ≥ SC` for the general layout, `n == truncated_for` otherwise):
    /// prologue + kernel executions + epilogue.
    pub fn instances_for(&self, n: u64) -> u64 {
        let per_kernel: u64 = self.kernel.iter().map(|r| r.len() as u64).sum();
        let fixed: u64 = self
            .prologue
            .iter()
            .chain(&self.epilogue)
            .map(|r| r.len() as u64)
            .sum();
        fixed + per_kernel * self.kernel_executions(n)
    }
}

/// Lay out `schedule` as prologue / kernel / epilogue.
///
/// ```
/// use sv_analysis::DepGraph;
/// use sv_ir::{LoopBuilder, ScalarType};
/// use sv_machine::MachineConfig;
/// use sv_modsched::{emit_flat, modulo_schedule};
///
/// let mut b = LoopBuilder::new("copy");
/// let x = b.array("x", ScalarType::F64, 64);
/// let y = b.array("y", ScalarType::F64, 64);
/// let lx = b.load(x, 1, 0);
/// b.store(y, 1, 0, lx);
/// let l = b.finish();
/// let m = MachineConfig::paper_default();
/// let g = DepGraph::build(&l);
/// let s = modulo_schedule(&l, &g, &m)?;
/// let flat = emit_flat(&l, &s);
/// assert_eq!(flat.kernel.len(), s.ii as usize);
/// // Over n iterations the layout launches each op exactly n times.
/// let n = 100;
/// assert_eq!(flat.instances_for(n), n * l.ops().len() as u64);
/// # Ok::<(), sv_modsched::ScheduleError>(())
/// ```
///
/// # Panics
///
/// Panics when the schedule does not belong to `l`.
pub fn emit_flat(l: &Loop, schedule: &Schedule) -> FlatListing {
    assert_eq!(schedule.times.len(), l.ops.len(), "schedule/loop mismatch");
    let ii = schedule.ii;
    let sc = schedule.stage_count;

    // Kernel: op at flat time σ sits in row σ mod II at stage σ / II.
    let mut kernel: Vec<Row> = vec![Vec::new(); ii as usize];
    for op in &l.ops {
        let t = schedule.times[op.id.index()];
        kernel[(t % ii) as usize].push((op.id, u64::from(t / ii)));
    }
    for row in &mut kernel {
        row.sort_unstable_by_key(|&(op, _)| op);
    }

    // Prologue: cycles 0 .. (SC−1)·II; instance (op, j) issues at
    // j·II + σ(op).
    let fill_cycles = u64::from(sc - 1) * u64::from(ii);
    let mut prologue: Vec<Row> = vec![Vec::new(); fill_cycles as usize];
    for j in 0..u64::from(sc - 1) {
        for op in &l.ops {
            let c = j * u64::from(ii) + u64::from(schedule.times[op.id.index()]);
            if c < fill_cycles {
                prologue[c as usize].push((op.id, j));
            }
        }
    }

    // Epilogue: with the last kernel execution covering the final
    // iteration's stage 0, the remaining instances issue over the next
    // (SC−1)·II cycles (plus latency drain, which needs no issue rows).
    // Instance (op, back) with back = iterations-before-last belongs in
    // epilogue cycle σ(op) − (back + 1)·II, for σ(op) ≥ (back + 1)·II.
    let mut epilogue: Vec<Row> = vec![Vec::new(); fill_cycles as usize];
    for back in 0..u64::from(sc - 1) {
        for op in &l.ops {
            let t = u64::from(schedule.times[op.id.index()]);
            let offset = (back + 1) * u64::from(ii);
            if t >= offset {
                epilogue[(t - offset) as usize].push((op.id, back));
            }
        }
    }
    for row in prologue.iter_mut().chain(&mut epilogue) {
        row.sort_unstable_by_key(|&(op, _)| op);
    }

    FlatListing { ii, stage_count: sc, prologue, kernel, epilogue, truncated_for: None }
}

/// Lay out `schedule` for exactly `n` iterations.
///
/// For `n ≥ SC` this is [`emit_flat`] — the general prologue / kernel /
/// epilogue layout. For `n < SC` the pipeline never reaches steady state:
/// the prologue/epilogue of the general layout would together launch
/// `SC − 1` copies of every op (over-filling a pipeline that only has `n`
/// iterations to run), so a **truncated** layout is emitted instead — all
/// `n` iterations issue from the prologue at their natural offsets
/// `j·II + σ(op)` over `(n−1)·II + length` rows, the kernel rows are kept
/// (for inspection; they execute zero times) and the epilogue is empty.
/// `n = 0` yields an empty prologue.
///
/// # Panics
///
/// Panics when the schedule does not belong to `l`.
pub fn emit_flat_for(l: &Loop, schedule: &Schedule, n: u64) -> FlatListing {
    if n >= u64::from(schedule.stage_count) {
        return emit_flat(l, schedule);
    }
    assert_eq!(schedule.times.len(), l.ops.len(), "schedule/loop mismatch");
    let ii = schedule.ii;
    let rows = if n == 0 {
        0
    } else {
        (n - 1) * u64::from(ii) + u64::from(schedule.length)
    };
    let mut prologue: Vec<Row> = vec![Vec::new(); rows as usize];
    for j in 0..n {
        for op in &l.ops {
            let c = j * u64::from(ii) + u64::from(schedule.times[op.id.index()]);
            prologue[c as usize].push((op.id, j));
        }
    }
    for row in &mut prologue {
        row.sort_unstable_by_key(|&(op, _)| op);
    }
    let mut kernel: Vec<Row> = vec![Vec::new(); ii as usize];
    for op in &l.ops {
        let t = schedule.times[op.id.index()];
        kernel[(t % ii) as usize].push((op.id, u64::from(t / ii)));
    }
    for row in &mut kernel {
        row.sort_unstable_by_key(|&(op, _)| op);
    }
    FlatListing {
        ii,
        stage_count: schedule.stage_count,
        prologue,
        kernel,
        epilogue: Vec::new(),
        truncated_for: Some(n),
    }
}

impl fmt::Display for FlatListing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let row = |f: &mut fmt::Formatter<'_>, r: &Row| -> fmt::Result {
            if r.is_empty() {
                writeln!(f, "  (nop)")
            } else {
                let ops: Vec<String> =
                    r.iter().map(|(op, j)| format!("{op}[{j}]")).collect();
                writeln!(f, "  {}", ops.join("  "))
            }
        };
        if let Some(n) = self.truncated_for {
            writeln!(f, "truncated layout for {n} iteration(s) (n < SC):")?;
        }
        writeln!(f, "prologue ({} rows):", self.prologue.len())?;
        for r in &self.prologue {
            row(f, r)?;
        }
        writeln!(f, "kernel (II = {}):", self.ii)?;
        for r in &self.kernel {
            row(f, r)?;
        }
        writeln!(f, "epilogue ({} rows):", self.epilogue.len())?;
        for r in &self.epilogue {
            row(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::modulo_schedule;
    use sv_analysis::DepGraph;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;
    use std::collections::HashSet;

    fn flat_for(l: &Loop) -> (Schedule, FlatListing) {
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, &m).unwrap();
        let f = emit_flat(l, &s);
        (s, f)
    }

    use sv_ir::Loop;

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("sample");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let m1 = b.fmul(lx, lx);
        let a = b.fadd(m1, lx);
        b.store(y, 1, 0, a);
        b.finish()
    }

    /// Enumerate every (op, iteration) instance the layout launches over
    /// `n` iterations and check it is exactly each op once per iteration.
    fn coverage(l: &Loop, f: &FlatListing, n: u64) {
        let sc = u64::from(f.stage_count);
        assert!(n >= sc);
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        for row in &f.prologue {
            for &(op, j) in row {
                assert!(seen.insert((op.0, j)), "duplicate {op} iter {j} (prologue)");
            }
        }
        for t in 0..(n - sc + 1) {
            for row in &f.kernel {
                for &(op, stage) in row {
                    let j = t + (sc - 1) - stage;
                    assert!(seen.insert((op.0, j)), "duplicate {op} iter {j} (kernel)");
                }
            }
        }
        for row in &f.epilogue {
            for &(op, back) in row {
                let j = n - 1 - back;
                assert!(seen.insert((op.0, j)), "duplicate {op} iter {j} (epilogue)");
            }
        }
        assert_eq!(seen.len() as u64, n * l.ops.len() as u64);
        assert_eq!(f.instances_for(n), n * l.ops.len() as u64);
    }

    #[test]
    fn layout_covers_every_instance_exactly_once() {
        let l = sample();
        let (_, f) = flat_for(&l);
        let sc = u64::from(f.stage_count);
        for n in [sc, sc + 5, sc + 29] {
            coverage(&l, &f, n);
        }
    }

    #[test]
    fn kernel_rows_hold_all_ops() {
        let l = sample();
        let (s, f) = flat_for(&l);
        let total: usize = f.kernel.iter().map(|r| r.len()).sum();
        assert_eq!(total, l.ops.len());
        assert_eq!(f.kernel.len(), s.ii as usize);
    }

    #[test]
    fn prologue_and_epilogue_are_mirrored_in_size() {
        let l = sample();
        let (s, f) = flat_for(&l);
        let fill = ((s.stage_count - 1) * s.ii) as usize;
        assert_eq!(f.prologue.len(), fill);
        assert_eq!(f.epilogue.len(), fill);
        // Prologue + epilogue together hold SC−1 copies of every op.
        let count: usize = f
            .prologue
            .iter()
            .chain(&f.epilogue)
            .map(|r| r.len())
            .sum();
        assert_eq!(count, (s.stage_count as usize - 1) * l.ops.len());
    }

    #[test]
    fn rows_respect_issue_width() {
        let l = sample();
        let m = MachineConfig::paper_default();
        let (_, f) = flat_for(&l);
        for row in f.prologue.iter().chain(&f.kernel).chain(&f.epilogue) {
            assert!(row.len() <= m.issue_width as usize);
        }
    }

    /// Truncated layouts must cover each of the `n` iterations exactly
    /// once, entirely from the prologue.
    fn truncated_coverage(l: &Loop, s: &Schedule, n: u64) {
        let f = emit_flat_for(l, s, n);
        assert_eq!(f.truncated_for, Some(n));
        assert!(f.epilogue.is_empty());
        assert_eq!(f.kernel_executions(n), 0);
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        for (c, row) in f.prologue.iter().enumerate() {
            for &(op, j) in row {
                assert!(j < n, "iteration {j} out of range at row {c}");
                let sigma = u64::from(s.times[op.index()]);
                assert_eq!(c as u64, j * u64::from(s.ii) + sigma, "{op} misplaced");
                assert!(seen.insert((op.0, j)), "duplicate {op} iter {j}");
            }
        }
        assert_eq!(seen.len() as u64, n * l.ops.len() as u64);
        assert_eq!(f.instances_for(n), n * l.ops.len() as u64);
        if n > 0 {
            let rows = (n - 1) * u64::from(s.ii) + u64::from(s.length);
            assert_eq!(f.prologue.len() as u64, rows);
            assert!(!f.prologue.last().unwrap().is_empty(), "trailing nop row");
        } else {
            assert!(f.prologue.is_empty());
        }
    }

    #[test]
    fn truncated_layouts_for_short_trips() {
        let l = sample();
        let (s, _) = flat_for(&l);
        assert!(s.stage_count >= 2, "sample must pipeline across stages");
        // Zero-trip, single-iteration, and the largest short trip n = SC−1.
        for n in [0, 1, u64::from(s.stage_count) - 1] {
            truncated_coverage(&l, &s, n);
        }
    }

    #[test]
    fn emit_flat_for_long_trips_is_the_general_layout() {
        let l = sample();
        let (s, general) = flat_for(&l);
        let f = emit_flat_for(&l, &s, u64::from(s.stage_count));
        assert_eq!(f.truncated_for, None);
        assert_eq!(f.prologue.len(), general.prologue.len());
        assert_eq!(f.epilogue.len(), general.epilogue.len());
        assert_eq!(
            f.kernel_executions(u64::from(s.stage_count) + 7),
            8,
            "n − SC + 1 kernel executions"
        );
    }

    #[test]
    fn display_shows_all_sections() {
        let l = sample();
        let (_, f) = flat_for(&l);
        let text = f.to_string();
        assert!(text.contains("prologue"));
        assert!(text.contains("kernel (II ="));
        assert!(text.contains("epilogue"));
    }
}
