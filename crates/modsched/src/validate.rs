//! Structural validation of modulo schedules.
//!
//! Lives in `sv-modsched` (rather than the simulator) so the compilation
//! driver in `sv-core` can validate every schedule at the pass boundary
//! that produced it, without a dependency cycle through `sv-sim`. The
//! simulator re-exports these names for back-compatibility.

use crate::mii::edge_delay;
use crate::sched::Schedule;
use std::collections::HashMap;
use std::fmt;
use sv_analysis::DepGraph;
use sv_ir::{Loop, OpId};
use sv_machine::{MachineConfig, ResourceClass};

/// A schedule defect found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A dependence `src → dst` is not satisfied by the issue times.
    DependenceViolated {
        /// Producer.
        src: OpId,
        /// Consumer.
        dst: OpId,
        /// Required separation in cycles.
        needed: i64,
        /// Actual separation.
        actual: i64,
    },
    /// A resource instance is reserved by two operations in the same
    /// kernel row.
    ResourceConflict {
        /// Human-readable instance name.
        instance: String,
        /// Kernel row (cycle mod II).
        row: u32,
    },
    /// An operation's assignment does not cover its resource requirements.
    AssignmentMismatch {
        /// The offending operation.
        op: OpId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DependenceViolated { src, dst, needed, actual } => write!(
                f,
                "dependence {src}→{dst} violated: needs {needed} cycles, has {actual}"
            ),
            ValidationError::ResourceConflict { instance, row } => {
                write!(f, "resource {instance} doubly reserved in kernel row {row}")
            }
            ValidationError::AssignmentMismatch { op } => {
                write!(f, "{op} assignment does not match its requirements")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check that a modulo schedule respects every dependence edge
/// (`σ(dst) + II·distance ≥ σ(src) + delay`) and never oversubscribes a
/// resource instance in any kernel row, and that each operation's
/// functional-unit assignment covers exactly its opcode's requirements.
///
/// # Errors
///
/// Returns the first defect found.
pub fn validate_schedule(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    s: &Schedule,
) -> Result<(), ValidationError> {
    for e in g.edges() {
        if e.src == e.dst {
            continue;
        }
        let needed = edge_delay(e, l, m);
        let actual = i64::from(s.times[e.dst.index()])
            + i64::from(s.ii) * i64::from(e.distance)
            - i64::from(s.times[e.src.index()]);
        if actual < needed {
            return Err(ValidationError::DependenceViolated {
                src: e.src,
                dst: e.dst,
                needed,
                actual,
            });
        }
    }

    // Per-(row, instance) occupancy.
    let pool = m.resource_pool();
    let mut used: HashMap<(u32, usize), OpId> = HashMap::new();
    for (i, placement) in s.assignments.iter().enumerate() {
        let op = OpId(i as u32);
        // The multiset of classes must match the requirements.
        let mut required: Vec<(ResourceClass, u32)> = m
            .requirements(l.ops[i].opcode)
            .iter()
            .map(|r| (r.class, r.cycles))
            .collect();
        for (inst, cycles) in placement {
            let pos = required
                .iter()
                .position(|&(c, cy)| c == inst.class && cy == *cycles)
                .ok_or(ValidationError::AssignmentMismatch { op })?;
            required.swap_remove(pos);
            for j in 0..*cycles {
                let row = (s.times[i] + j) % s.ii;
                let key = (row, pool.dense_id(*inst));
                if used.insert(key, op).is_some() {
                    return Err(ValidationError::ResourceConflict {
                        instance: inst.to_string(),
                        row,
                    });
                }
            }
        }
        if !required.is_empty() {
            return Err(ValidationError::AssignmentMismatch { op });
        }
    }
    Ok(())
}
