//! Exact modulo-schedule feasibility: a complete decision procedure for
//! "does loop `l` admit a modulo schedule at initiation interval `ii` on
//! machine `m`?" — the primitive under the optimal-II oracle.
//!
//! The search exploits the classic decomposition of a modulo schedule into
//! *residues* and *stages*: an issue time `t = s·II + r` with `r ∈ [0, II)`.
//! Resource legality depends only on the residues (the modulo reservation
//! table repeats every II cycles), while dependence legality, with residues
//! fixed, reduces to integer difference constraints on the stages
//! `s_v − s_u ≥ ⌈(delay − II·dist − (r_v − r_u)) / II⌉`, decidable by
//! positive-cycle detection. The DFS therefore enumerates residues (plus
//! explicit unit choices only for classes that carry multi-cycle
//! reservations, e.g. a non-pipelined divide), prunes partial assignments
//! whose constraint subgraph already contains a positive cycle, and on
//! success recovers concrete times by a longest-path stage solve. Unit
//! symmetry is broken by trying only one instance per distinct occupancy
//! pattern, which keeps the procedure complete.
//!
//! Feasibility here is *structural* — dependences and resources under the
//! emitter's loop-overhead convention (back branch pinned to the kernel's
//! last row, induction update to row 0), exactly what [`crate::sched`]
//! enforces. Register pressure is reported on the returned [`Schedule`] but
//! never gates feasibility, mirroring the driver, which accepts
//! over-pressure schedules rather than failing compilation.

use crate::mii::{compute_recmii, compute_resmii, edge_delay};
use crate::sched::{compute_heights, Schedule};
use sv_analysis::{strongly_connected_components, DepGraph};
use sv_ir::{Loop, OpId, RegClass};
use sv_machine::{MachineConfig, ResourceClass, ResourcePool};

/// Result of one exact feasibility probe at a fixed II.
#[derive(Debug, Clone)]
pub enum ExactOutcome {
    /// A schedule exists; here is a witness.
    Feasible(Box<Schedule>),
    /// No schedule exists at this II (complete search closed).
    Infeasible,
    /// The node budget ran out before the search closed; undecided.
    Budget,
}

/// Deterministic work counter shared across probes: one unit per residue
/// attempt. Hitting zero aborts the search with [`ExactOutcome::Budget`].
#[derive(Debug, Clone)]
pub struct ProbeBudget {
    remaining: u64,
    /// Nodes spent since construction (monotone; survives exhaustion).
    pub spent: u64,
}

impl ProbeBudget {
    /// A budget of `n` residue attempts.
    pub fn new(n: u64) -> ProbeBudget {
        ProbeBudget { remaining: n, spent: 0 }
    }

    /// Consume one unit; `false` once exhausted.
    pub fn step(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.spent += 1;
        true
    }

    /// Units left.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

/// How a resource class is modelled during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassMode {
    /// Only 1-cycle reservations touch this class: instances are fully
    /// interchangeable, so per-row counting is exact.
    Counting,
    /// Some reservation holds an instance for several consecutive rows
    /// (non-pipelined divide): instances need identity and windows.
    Tracked,
}

struct Edge {
    src: usize,
    dst: usize,
    delay: i64,
    dist: i64,
}

struct Search<'a> {
    ii: u32,
    pool: &'a ResourcePool,
    caps: Vec<u32>,
    mode: Vec<ClassMode>,
    /// Scheduling order (recurrence members first, then height).
    order: Vec<usize>,
    /// Per-op reservation lists.
    reqs: Vec<Vec<sv_machine::Reservation>>,
    /// All non-self dependence edges.
    edges: Vec<Edge>,
    /// Counting classes: occupancy count per (class slot, row).
    counts: Vec<Vec<u32>>,
    /// Tracked classes: per instance (dense id), occupied rows.
    occ: Vec<Vec<u8>>,
    /// Chosen residue per op (`u32::MAX` = unassigned).
    residue: Vec<u32>,
    /// Tracked-class instance picks per op: `(dense id, cycles)`.
    picks: Vec<Vec<(usize, u32)>>,
    /// Per-op tracked-class demand `(class slot, cycles)`, for the
    /// fragmentation prune.
    tracked_sizes: Vec<Vec<(usize, u32)>>,
    /// Symmetry group per op, for ops not on any dependence cycle. Such
    /// ops are pure resource tokens (a stage absorbs any residue), so ops
    /// with identical reservation signatures are interchangeable: the
    /// search only enumerates non-decreasing residue sequences per group.
    sym_group: Vec<Option<usize>>,
    /// Current residue floor per symmetry group.
    group_floor: Vec<u32>,
    /// Member ops per symmetry group.
    group_members: Vec<Vec<usize>>,
}

const UNASSIGNED: u32 = u32::MAX;

/// Decide whether `l` admits a modulo schedule at exactly `ii` on `m`.
///
/// Complete and sound within `budget`: [`ExactOutcome::Infeasible`] is a
/// proof, [`ExactOutcome::Feasible`] carries a validated witness schedule,
/// and [`ExactOutcome::Budget`] means the search was cut short and decided
/// nothing.
pub fn exact_schedule(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    ii: u32,
    budget: &mut ProbeBudget,
) -> ExactOutcome {
    let n = l.ops.len();
    // Self-edges are honored purely by the II (they constrain no residue):
    // delay − II·distance must be ≤ 0 or no schedule exists at this II.
    for e in g.edges() {
        if e.src == e.dst && edge_delay(e, l, m) - i64::from(ii) * i64::from(e.distance) > 0 {
            return ExactOutcome::Infeasible;
        }
    }

    let pool = m.resource_pool();
    let reqs: Vec<Vec<sv_machine::Reservation>> =
        l.ops.iter().map(|o| m.requirements(o.opcode)).collect();
    let overhead = m.loop_overhead();

    // Classify classes: tracked when any reservation (op or overhead)
    // holds an instance for more than one cycle.
    let mut mode = vec![ClassMode::Counting; ResourceClass::ALL.len()];
    for rs in reqs.iter().chain(overhead.iter()) {
        for r in rs {
            if r.cycles > 1 {
                mode[class_slot(r.class)] = ClassMode::Tracked;
            }
        }
    }

    let caps: Vec<u32> = ResourceClass::ALL.iter().map(|&c| pool.capacity(c)).collect();
    let mut counts = vec![vec![0u32; ii as usize]; ResourceClass::ALL.len()];
    let mut occ = vec![vec![0u8; ii as usize]; pool.len()];

    // Pre-reserve the loop-control overhead exactly as the iterative
    // scheduler does: back branch in the kernel's last row, induction
    // update in row 0. Overhead reservations are all single-cycle today,
    // but route tracked classes through instance occupancy regardless.
    for (idx, rs) in overhead.iter().enumerate() {
        let row = if idx == 0 { ii - 1 } else { 0 };
        for r in rs {
            let slot = class_slot(r.class);
            if caps[slot] == 0 {
                return ExactOutcome::Infeasible;
            }
            match mode[slot] {
                ClassMode::Counting => {
                    if counts[slot][row as usize] >= caps[slot] {
                        return ExactOutcome::Infeasible;
                    }
                    counts[slot][row as usize] += 1;
                }
                ClassMode::Tracked => {
                    let Some(inst) = pool
                        .alternatives(r.class)
                        .iter()
                        .map(|i| pool.dense_id(*i))
                        .find(|&i| window_free(&occ[i], row, r.cycles, ii))
                    else {
                        return ExactOutcome::Infeasible;
                    };
                    occupy(&mut occ[inst], row, r.cycles, ii, 1);
                }
            }
        }
    }

    // Any op whose reservations cannot fit this II at all (zero capacity,
    // or a window longer than the II) makes the probe trivially infeasible.
    for rs in &reqs {
        for r in rs {
            if caps[class_slot(r.class)] == 0 || r.cycles > ii {
                return ExactOutcome::Infeasible;
            }
        }
    }

    // Order: every op that touches a tracked class first (their mutual
    // packing conflicts must surface before loosely-constrained counting
    // ops interleave — otherwise the search rediscovers the same
    // tracked-class conflict once per placement of the irrelevant ops in
    // between), rigid multi-cycle reservations before single-cycle ones,
    // then recurrence members, then height — the most constrained ops
    // bind the search early so dead branches die fast.
    let heights = compute_heights(l, g, m, ii);
    let sccs = strongly_connected_components(g);
    let max_cycles =
        |i: usize| reqs[i].iter().map(|r| r.cycles).max().unwrap_or(0);
    let touches_tracked = |i: usize| {
        reqs[i].iter().any(|r| mode[class_slot(r.class)] == ClassMode::Tracked)
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(touches_tracked(i)),
            std::cmp::Reverse(max_cycles(i)),
            std::cmp::Reverse(sccs.in_cycle(OpId(i as u32), g)),
            std::cmp::Reverse(heights[i]),
            i,
        )
    });

    let tracked_sizes: Vec<Vec<(usize, u32)>> = reqs
        .iter()
        .map(|rs| {
            rs.iter()
                .filter(|r| mode[class_slot(r.class)] == ClassMode::Tracked)
                .map(|r| (class_slot(r.class), r.cycles))
                .collect()
        })
        .collect();

    // Symmetry groups: non-cycle ops with identical reservation
    // signatures (the k-unrolled scalar copies, for instance) are
    // interchangeable, so canonical non-decreasing residue order per
    // group is complete.
    let mut signatures: Vec<Vec<(usize, u32)>> = Vec::new();
    let mut sym_group: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        if sccs.in_cycle(OpId(i as u32), g) {
            continue;
        }
        let sig: Vec<(usize, u32)> =
            reqs[i].iter().map(|r| (class_slot(r.class), r.cycles)).collect();
        let gid = match signatures.iter().position(|s| *s == sig) {
            Some(gid) => gid,
            None => {
                signatures.push(sig);
                signatures.len() - 1
            }
        };
        sym_group[i] = Some(gid);
    }
    let group_floor = vec![0u32; signatures.len()];
    let mut group_members: Vec<Vec<usize>> = vec![Vec::new(); signatures.len()];
    for (i, gid) in sym_group.iter().enumerate() {
        if let Some(gid) = gid {
            group_members[*gid].push(i);
        }
    }

    let edges: Vec<Edge> = g
        .edges()
        .iter()
        .filter(|e| e.src != e.dst)
        .map(|e| Edge {
            src: e.src.index(),
            dst: e.dst.index(),
            delay: edge_delay(e, l, m),
            dist: i64::from(e.distance),
        })
        .collect();
    let mut search = Search {
        ii,
        pool: &pool,
        caps,
        mode,
        order,
        reqs,
        edges,
        counts,
        occ,
        residue: vec![UNASSIGNED; n],
        picks: vec![Vec::new(); n],
        tracked_sizes,
        sym_group,
        group_floor,
        group_members,
    };

    // The overhead rows may already make the remaining tracked demand
    // unpackable.
    for slot in 0..ResourceClass::ALL.len() {
        if search.mode[slot] == ClassMode::Tracked && !search.frag_ok(slot, usize::MAX, 0) {
            return ExactOutcome::Infeasible;
        }
    }

    match search.place(0, budget) {
        Place::Found => {
            let times = search.solve_times();
            ExactOutcome::Feasible(Box::new(build_schedule(
                l, g, m, ii, times, &search,
            )))
        }
        Place::Exhausted => ExactOutcome::Infeasible,
        Place::Budget => ExactOutcome::Budget,
    }
}

enum Place {
    Found,
    Exhausted,
    Budget,
}

impl Search<'_> {
    fn place(&mut self, oi: usize, budget: &mut ProbeBudget) -> Place {
        if oi == self.order.len() {
            return Place::Found;
        }
        let op = self.order[oi];
        // Interchangeable ops only ever take residues at or above their
        // group's floor (canonical order over identical tokens).
        let start = self.sym_group[op].map_or(0, |gid| self.group_floor[gid]);
        for r in start..self.ii {
            if !budget.step() {
                return Place::Budget;
            }
            // Raising the floor to `r` confines every unplaced member of
            // the group to rows `r..ii`; if their demand no longer fits
            // the free capacity there, no larger `r` can fit it either.
            if !self.group_tail_ok(op, r) {
                break;
            }
            let saved = self.sym_group[op].map(|gid| {
                let old = self.group_floor[gid];
                self.group_floor[gid] = r;
                (gid, old)
            });
            let out = self.assign(op, r, 0, oi, budget);
            if let Some((gid, old)) = saved {
                if matches!(out, Place::Exhausted) {
                    self.group_floor[gid] = old;
                }
            }
            match out {
                Place::Found => return Place::Found,
                Place::Budget => return Place::Budget,
                Place::Exhausted => {}
            }
        }
        Place::Exhausted
    }

    /// Reserve `op`'s resources at residue `r`, one reservation at a time
    /// (tracked classes branch over distinct-occupancy instances), then
    /// check dependence consistency and recurse to the next op.
    fn assign(
        &mut self,
        op: usize,
        r: u32,
        res_idx: usize,
        oi: usize,
        budget: &mut ProbeBudget,
    ) -> Place {
        if res_idx == self.reqs[op].len() {
            self.residue[op] = r;
            let out = if self.consistent() {
                self.place(oi + 1, budget)
            } else {
                Place::Exhausted
            };
            if matches!(out, Place::Exhausted) {
                self.residue[op] = UNASSIGNED;
            }
            return out;
        }
        let req = self.reqs[op][res_idx];
        let slot = class_slot(req.class);
        match self.mode[slot] {
            ClassMode::Counting => {
                if self.counts[slot][r as usize] >= self.caps[slot] {
                    return Place::Exhausted;
                }
                self.counts[slot][r as usize] += 1;
                let out = self.assign(op, r, res_idx + 1, oi, budget);
                if matches!(out, Place::Exhausted) {
                    self.counts[slot][r as usize] -= 1;
                }
                out
            }
            ClassMode::Tracked => {
                // Identical machines: trying one instance per distinct
                // occupancy pattern preserves completeness.
                let alts: Vec<usize> = self
                    .pool
                    .alternatives(req.class)
                    .iter()
                    .map(|i| self.pool.dense_id(*i))
                    .collect();
                let mut tried: Vec<usize> = Vec::with_capacity(alts.len());
                for inst in alts {
                    if !window_free(&self.occ[inst], r, req.cycles, self.ii) {
                        continue;
                    }
                    if tried.iter().any(|&t| self.occ[t] == self.occ[inst]) {
                        continue;
                    }
                    tried.push(inst);
                    occupy(&mut self.occ[inst], r, req.cycles, self.ii, 1);
                    self.picks[op].push((inst, req.cycles));
                    // Fragmentation prune: the placement just carved the
                    // class's free windows; bail out if what is left can no
                    // longer hold the remaining demand.
                    let out = if self.frag_ok(slot, op, res_idx + 1) {
                        self.assign(op, r, res_idx + 1, oi, budget)
                    } else {
                        Place::Exhausted
                    };
                    if matches!(out, Place::Exhausted) {
                        self.picks[op].pop();
                        occupy(&mut self.occ[inst], r, req.cycles, self.ii, 0);
                    } else {
                        return out;
                    }
                }
                Place::Exhausted
            }
        }
    }

    /// Pigeonhole-with-fragmentation prune for one tracked class: every
    /// unplaced reservation of `cycles` ≥ `c` needs a free window of at
    /// least `c` consecutive rows on some instance, and a maximal free run
    /// of length `g` holds at most `⌊g/c⌋` such windows. If, for any
    /// demand size `c`, the reservations of size ≥ `c` outnumber the
    /// windows available, no completion of this partial assignment exists.
    ///
    /// `cur_op`'s reservations before `next_res` are already placed; ops
    /// with an assigned residue are fully placed.
    fn frag_ok(&self, slot: usize, cur_op: usize, next_res: usize) -> bool {
        // Remaining demand sizes for this class.
        let mut sizes: Vec<u32> = Vec::new();
        for op in 0..self.residue.len() {
            if op == cur_op {
                for (ri, req) in self.reqs[op].iter().enumerate() {
                    if class_slot(req.class) == slot && ri >= next_res {
                        sizes.push(req.cycles);
                    }
                }
            } else if self.residue[op] == UNASSIGNED {
                for &(s, c) in &self.tracked_sizes[op] {
                    if s == slot {
                        sizes.push(c);
                    }
                }
            }
        }
        if sizes.is_empty() {
            return true;
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Maximal cyclic free runs across this class's instances.
        let mut runs: Vec<u32> = Vec::new();
        let class = ResourceClass::ALL[slot];
        for inst in self.pool.alternatives(class) {
            let occ = &self.occ[self.pool.dense_id(*inst)];
            let ii = self.ii as usize;
            if occ.iter().all(|&o| o == 0) {
                runs.push(self.ii);
                continue;
            }
            // Walk from some occupied row so cyclic runs do not split.
            let start = occ.iter().position(|&o| o != 0).expect("not all free");
            let mut len = 0u32;
            for j in 0..ii {
                if occ[(start + j) % ii] == 0 {
                    len += 1;
                } else if len > 0 {
                    runs.push(len);
                    len = 0;
                }
            }
            if len > 0 {
                runs.push(len);
            }
        }
        // For each distinct size `c` (descending), all demand of size ≥ c
        // — the full prefix of equal-or-larger entries — must fit the
        // windows of width c.
        let mut i = 0;
        while i < sizes.len() {
            let c = sizes[i];
            let mut j = i + 1;
            while j < sizes.len() && sizes[j] == c {
                j += 1;
            }
            let windows: u64 = runs.iter().map(|&g| u64::from(g / c)).sum();
            if (j as u64) > windows {
                return false;
            }
            i = j;
        }
        true
    }

    /// Canonical-order pigeonhole for one symmetry group: placing `op` at
    /// residue `r` raises the group's floor to `r`, so every still-unplaced
    /// member (`op` included) must start in rows `r..ii`. Per resource
    /// class, each start claims at least one free cell at its own row —
    /// exactly one per single-cycle reservation — so the group's remaining
    /// starts cannot exceed the free capacity of the region. Multi-cycle
    /// reservations may wrap below the floor, so only their starting cell
    /// is counted (the fragmentation prune covers the rest of their bulk).
    fn group_tail_ok(&self, op: usize, r: u32) -> bool {
        let Some(gid) = self.sym_group[op] else {
            return true;
        };
        let unplaced = self.group_members[gid]
            .iter()
            .filter(|&&o| self.residue[o] == UNASSIGNED)
            .count() as u64;
        // Distinct class slots in the signature, with reservation counts.
        let mut slots: Vec<(usize, u64)> = Vec::with_capacity(self.reqs[op].len());
        for req in &self.reqs[op] {
            let slot = class_slot(req.class);
            match slots.iter_mut().find(|(s, _)| *s == slot) {
                Some((_, c)) => *c += 1,
                None => slots.push((slot, 1)),
            }
        }
        for (slot, per_member) in slots {
            let free: u64 = match self.mode[slot] {
                ClassMode::Counting => (r..self.ii)
                    .map(|row| {
                        u64::from(self.caps[slot] - self.counts[slot][row as usize])
                    })
                    .sum(),
                ClassMode::Tracked => {
                    let class = ResourceClass::ALL[slot];
                    self.pool
                        .alternatives(class)
                        .iter()
                        .map(|i| {
                            let occ = &self.occ[self.pool.dense_id(*i)];
                            (r..self.ii).filter(|&row| occ[row as usize] == 0).count()
                                as u64
                        })
                        .sum()
                }
            };
            if unplaced * per_member > free {
                return false;
            }
        }
        true
    }

    /// Stage difference constraints among assigned ops admit a solution iff
    /// their constraint graph has no positive-weight cycle (longest-path
    /// relaxation converges).
    fn consistent(&self) -> bool {
        let n = self.residue.len();
        let ii = i64::from(self.ii);
        let mut dist = vec![0i64; n];
        for _ in 0..=n {
            let mut changed = false;
            for e in &self.edges {
                if self.residue[e.src] == UNASSIGNED || self.residue[e.dst] == UNASSIGNED {
                    continue;
                }
                let w = stage_weight(e, &self.residue, ii);
                if dist[e.src] + w > dist[e.dst] {
                    dist[e.dst] = dist[e.src] + w;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }

    /// Longest-path stage solve over the full assignment, then
    /// `t = stage·II + residue`.
    fn solve_times(&self) -> Vec<u32> {
        let n = self.residue.len();
        let ii = i64::from(self.ii);
        let mut stage = vec![0i64; n];
        loop {
            let mut changed = false;
            for e in &self.edges {
                let w = stage_weight(e, &self.residue, ii);
                if stage[e.src] + w > stage[e.dst] {
                    stage[e.dst] = stage[e.src] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (0..n)
            .map(|i| u32::try_from(stage[i] * ii + i64::from(self.residue[i])).expect("time fits"))
            .collect()
    }
}

/// The stage-difference constraint one edge imposes once residues are
/// fixed: `s_dst − s_src ≥ ⌈(delay − II·dist − (r_dst − r_src)) / II⌉`.
fn stage_weight(e: &Edge, residue: &[u32], ii: i64) -> i64 {
    let dr = i64::from(residue[e.dst]) - i64::from(residue[e.src]);
    let num = e.delay - ii * e.dist - dr;
    // Ceiling division for any sign of the numerator (ii > 0).
    (num + ii - 1).div_euclid(ii)
}

fn class_slot(c: ResourceClass) -> usize {
    ResourceClass::ALL.iter().position(|&x| x == c).expect("known class")
}

fn window_free(occ: &[u8], t: u32, cycles: u32, ii: u32) -> bool {
    if cycles > ii {
        return false;
    }
    (0..cycles).all(|j| occ[((t + j) % ii) as usize] == 0)
}

fn occupy(occ: &mut [u8], t: u32, cycles: u32, ii: u32, v: u8) {
    for j in 0..cycles {
        occ[((t + j) % ii) as usize] = v;
    }
}

/// Materialize a full [`Schedule`] from the witness: concrete per-op
/// resource instances (counting classes get a deterministic per-row
/// assignment; tracked classes keep the DFS picks) plus the same derived
/// metrics the iterative scheduler reports.
fn build_schedule(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    ii: u32,
    times: Vec<u32>,
    search: &Search<'_>,
) -> Schedule {
    let n = l.ops.len();
    let pool = m.resource_pool();
    // Per (instance, row) usage map for materializing counting classes;
    // seed it with the overhead rows and the tracked picks.
    let mut used = vec![vec![false; ii as usize]; pool.len()];
    let overhead = m.loop_overhead();
    for (idx, rs) in overhead.iter().enumerate() {
        let row = if idx == 0 { ii - 1 } else { 0 };
        for r in rs {
            let inst = pool
                .alternatives(r.class)
                .iter()
                .map(|i| pool.dense_id(*i))
                .find(|&i| (0..r.cycles).all(|j| !used[i][((row + j) % ii) as usize]))
                .expect("overhead fit was verified during the search");
            for j in 0..r.cycles {
                used[inst][((row + j) % ii) as usize] = true;
            }
        }
    }
    for picks in &search.picks {
        for &(inst, cycles) in picks {
            // Row recovered below from the op's time; mark lazily there.
            let _ = (inst, cycles);
        }
    }

    let mut assignments: Vec<Vec<(sv_machine::ResourceInstance, u32)>> = vec![Vec::new(); n];
    // Tracked picks first (their instances are fixed), then counting
    // reservations in op order, each on the first instance free at the row.
    for op in 0..n {
        let row = times[op] % ii;
        let mut tracked_iter = search.picks[op].iter();
        for req in &search.reqs[op] {
            let slot = class_slot(req.class);
            match search.mode[slot] {
                ClassMode::Tracked => {
                    let &(inst, cycles) = tracked_iter.next().expect("pick per tracked req");
                    for j in 0..cycles {
                        used[inst][((row + j) % ii) as usize] = true;
                    }
                    assignments[op].push((pool.instances()[inst], cycles));
                }
                ClassMode::Counting => {
                    let inst = pool
                        .alternatives(req.class)
                        .iter()
                        .map(|i| pool.dense_id(*i))
                        .find(|&i| !used[i][row as usize])
                        .expect("counting capacity was verified during the search");
                    used[inst][row as usize] = true;
                    assignments[op].push((pool.instances()[inst], req.cycles));
                }
            }
        }
    }

    let length = times.iter().copied().max().unwrap_or(0) + 1;
    let stage_count = (length - 1) / ii + 1;
    let pressure = crate::pressure::max_live(l, g, m, &times, ii);
    let mve = crate::pressure::mve_factor(l, g, m, &times, ii);
    let ok = RegClass::ALL
        .iter()
        .enumerate()
        .all(|(i, &c)| pressure[i] <= m.regs.size(c))
        && stage_count <= m.regs.predicates;
    Schedule {
        ii,
        resmii: compute_resmii(l, m),
        recmii: compute_recmii(l, g, m),
        times,
        assignments,
        length,
        stage_count,
        max_live: pressure,
        mve_factor: mve,
        register_pressure_ok: ok,
        iis_tried: vec![ii],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulo_schedule;
    use crate::validate::validate_schedule;
    use sv_ir::{LoopBuilder, ScalarType};

    fn probe(l: &Loop, m: &MachineConfig, ii: u32) -> ExactOutcome {
        let g = DepGraph::build(l);
        let mut b = ProbeBudget::new(5_000_000);
        exact_schedule(l, &g, m, ii, &mut b)
    }

    fn copy_loop() -> Loop {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        b.finish()
    }

    #[test]
    fn copy_loop_feasible_at_one() {
        let l = copy_loop();
        let m = MachineConfig::paper_default();
        let ExactOutcome::Feasible(s) = probe(&l, &m, 1) else {
            panic!("copy loop must schedule at II=1");
        };
        assert_eq!(s.ii, 1);
        let g = DepGraph::build(&l);
        validate_schedule(&l, &g, &m, &s).expect("witness validates");
    }

    #[test]
    fn reduction_infeasible_below_recmii() {
        let mut b = LoopBuilder::new("red");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        // RecMII = 4 (self edge, fp latency 4): II 3 must be proven out.
        assert!(matches!(probe(&l, &m, 3), ExactOutcome::Infeasible));
        assert!(matches!(probe(&l, &m, 4), ExactOutcome::Feasible(_)));
    }

    #[test]
    fn mem_bound_infeasible_below_resmii() {
        // 5 loads + 1 store on 2 mem units: ResMII 3 is tight.
        let mut b = LoopBuilder::new("mem");
        let x = b.array("x", ScalarType::F64, 256);
        let y = b.array("y", ScalarType::F64, 256);
        let mut acc = Vec::new();
        for o in 0..5 {
            acc.push(b.load(x, 1, o));
        }
        let mut s = acc[0];
        for &a in &acc[1..] {
            s = b.fadd(s, a);
        }
        b.store(y, 1, 0, s);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert!(matches!(probe(&l, &m, 2), ExactOutcome::Infeasible));
        let ExactOutcome::Feasible(s) = probe(&l, &m, 3) else {
            panic!("must schedule at ResMII");
        };
        let g = DepGraph::build(&l);
        validate_schedule(&l, &g, &m, &s).expect("witness validates");
    }

    #[test]
    fn non_pipelined_divide_tracked_instances() {
        // Two independent divides on 2 fp units: each blocks its unit for
        // 32 cycles; II=32 works only if they take different units — the
        // tracked-instance branching must find that.
        let mut b = LoopBuilder::new("div2");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let z = b.array("z", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let d1 = b.fdiv(lx, ly);
        let d2 = b.fdiv(ly, lx);
        b.store(z, 1, 0, d1);
        b.store(z, 1, 1, d2);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let ExactOutcome::Feasible(s) = probe(&l, &m, 32) else {
            panic!("two divides fit two units at II=32");
        };
        let g = DepGraph::build(&l);
        validate_schedule(&l, &g, &m, &s).expect("witness validates");
        assert!(matches!(probe(&l, &m, 31), ExactOutcome::Infeasible));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let l = copy_loop();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let mut b = ProbeBudget::new(0);
        assert!(matches!(
            exact_schedule(&l, &g, &m, 1, &mut b),
            ExactOutcome::Budget
        ));
    }

    #[test]
    fn agrees_with_iterative_scheduler_on_suite_shapes() {
        // Wherever the iterative scheduler achieves an II, the exact probe
        // must agree that II is feasible (soundness cross-check).
        let mut b = LoopBuilder::new("mix");
        let x = b.array("x", ScalarType::F64, 256);
        let y = b.array("y", ScalarType::F64, 256);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 1);
        let mu = b.fmul(lx, ly);
        let ad = b.fadd(mu, lx);
        b.store(y, 1, 0, ad);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).expect("schedulable");
        let ExactOutcome::Feasible(e) = probe(&l, &m, s.ii) else {
            panic!("probe must confirm the iterative scheduler's II");
        };
        assert_eq!(e.ii, s.ii);
    }
}
