//! Rotating-register allocation for modulo schedules.
//!
//! The paper's compilation flow (Figure 3) ends with register allocation;
//! its machine provides *rotating* register files (and the authors extend
//! Trimaran with rotating **vector** registers). In a rotating file, a
//! value written to virtual register `r` in iteration `j` lands in
//! physical register `(base_r + j) mod F`; a consumer reading the value
//! from `d` iterations back names `(base_r + j − d) mod F` through its
//! offset syntax. Allocation therefore reduces to giving every
//! value-producing operation a *base* such that no two values alias while
//! both live.
//!
//! Two values collide when their lifetime intervals, rotated by their base
//! difference, overlap — following Rau, Lee, Tirumalai and Schlansker's
//! formulation ("Register Allocation for Software Pipelined Loops",
//! PLDI 1992), we allocate each value a span of
//! `⌈lifetime / II⌉` consecutive rotating registers and place spans with
//! best-fit on a circular occupancy map, which those authors found within
//! one register of optimal almost always.

use crate::sched::Schedule;
use sv_analysis::DepGraph;
use sv_ir::{Loop, OpId, RegClass};
use sv_machine::MachineConfig;
use std::fmt;

/// A register assignment for one scheduled loop.
#[derive(Debug, Clone)]
pub struct RegisterAssignment {
    /// Rotating base register per operation (`None` for ops that define no
    /// value), within the op's register class file.
    pub base: Vec<Option<u32>>,
    /// Registers used per class, in [`RegClass::ALL`] order.
    pub used: [u32; 4],
}

impl RegisterAssignment {
    /// The physical register holding `op`'s value from iteration `j`, in a
    /// file of `file_size` rotating registers.
    pub fn physical(&self, op: OpId, j: u64, file_size: u32) -> Option<u32> {
        self.base[op.index()]
            .map(|b| ((u64::from(b) + j) % u64::from(file_size)) as u32)
    }
}

/// Allocation failure: a register file is too small for the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// The class that overflowed.
    pub class: RegClass,
    /// Registers that would have been needed.
    pub needed: u32,
    /// The file's size.
    pub available: u32,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register file {} too small: need {}, have {}",
            self.class, self.needed, self.available
        )
    }
}

impl std::error::Error for AllocError {}

/// Lifetime of a value in cycles, from definition to last register read
/// (`σ(use) + II·distance`), at least the producer latency.
fn lifetime(l: &Loop, g: &DepGraph, m: &MachineConfig, s: &Schedule, op: &sv_ir::Operation) -> u64 {
    let start = i64::from(s.times[op.id.index()]);
    let mut end = start + i64::from(m.latency(op.opcode)).max(1);
    for e in g.succ_edges(op.id) {
        if e.is_mem {
            continue;
        }
        let read = i64::from(s.times[e.dst.index()]) + i64::from(s.ii) * i64::from(e.distance);
        end = end.max(read + 1); // the value must survive through the read
    }
    if l.live_outs.iter().any(|lo| lo.op == op.id) {
        end = end.max(start + i64::from(s.ii));
    }
    (end - start).max(1) as u64
}

/// Allocate rotating registers for every value of `l` under `s`.
///
/// ```
/// use sv_analysis::DepGraph;
/// use sv_ir::{LoopBuilder, RegClass, ScalarType};
/// use sv_machine::MachineConfig;
/// use sv_modsched::{allocate_rotating, modulo_schedule};
///
/// let mut b = LoopBuilder::new("copy");
/// let x = b.array("x", ScalarType::F64, 64);
/// let y = b.array("y", ScalarType::F64, 64);
/// let lx = b.load(x, 1, 0);
/// b.store(y, 1, 0, lx);
/// let l = b.finish();
/// let m = MachineConfig::paper_default();
/// let g = DepGraph::build(&l);
/// let s = modulo_schedule(&l, &g, &m)?;
/// let regs = allocate_rotating(&l, &g, &m, &s).unwrap();
/// // The loaded f64 lives for the load latency: several rotating copies.
/// let fp = RegClass::ALL.iter().position(|&c| c == RegClass::ScalarFp).unwrap();
/// assert!(regs.used[fp] >= 3);
/// # Ok::<(), sv_modsched::ScheduleError>(())
/// ```
///
/// # Errors
///
/// Returns [`AllocError`] when some class needs more registers than the
/// machine's file provides.
pub fn allocate_rotating(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    s: &Schedule,
) -> Result<RegisterAssignment, AllocError> {
    let mut base = vec![None; l.ops.len()];
    let mut used = [0u32; 4];

    for (slot, &class) in RegClass::ALL.iter().enumerate() {
        let file = m.regs.size(class);
        // Spans (in rotating registers) of this class's values, widest
        // first — the classic best-fit order.
        let mut spans: Vec<(usize, u32)> = l
            .ops
            .iter()
            .filter(|o| o.defines_value() && o.opcode.def_class() == class)
            .map(|o| {
                let span = lifetime(l, g, m, s, o).div_ceil(u64::from(s.ii)) as u32;
                (o.id.index(), span)
            })
            .collect();
        spans.sort_by_key(|&(i, w)| (std::cmp::Reverse(w), i));

        // Circular occupancy over the file: a span of width w starting at
        // base b occupies b..b+w (mod file). Because every value rotates at
        // the same rate, non-overlap of the static spans is sufficient.
        let total: u32 = spans.iter().map(|&(_, w)| w).sum();
        if total > file {
            return Err(AllocError { class, needed: total, available: file });
        }
        // Contiguous first-fit: since all spans rotate together, packing
        // them back to back is conflict-free and uses exactly `total`
        // registers.
        let mut cursor = 0u32;
        for (i, w) in spans {
            base[i] = Some(cursor);
            cursor += w;
        }
        used[slot] = cursor;
    }
    Ok(RegisterAssignment { base, used })
}

/// Check an assignment: no two values of the same class may occupy the
/// same physical register in any cycle of the steady state. Returns the
/// offending op pair if any.
pub fn validate_assignment(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    s: &Schedule,
    a: &RegisterAssignment,
) -> Option<(OpId, OpId)> {
    // In steady state, value (op, j) is live over absolute cycles
    // [j·II + σ(op), j·II + σ(op) + life). Two values of the same class
    // collide if some pair of live instances maps to the same physical
    // register. With everything rotating at one register per iteration,
    // it suffices to check static span overlap.
    let ops: Vec<&sv_ir::Operation> =
        l.ops.iter().filter(|o| o.defines_value()).collect();
    for (x, a_op) in ops.iter().enumerate() {
        for b_op in ops.iter().skip(x + 1) {
            if a_op.opcode.def_class() != b_op.opcode.def_class() {
                continue;
            }
            let (Some(ba), Some(bb)) =
                (a.base[a_op.id.index()], a.base[b_op.id.index()])
            else {
                continue;
            };
            let wa = lifetime(l, g, m, s, a_op).div_ceil(u64::from(s.ii)) as u32;
            let wb = lifetime(l, g, m, s, b_op).div_ceil(u64::from(s.ii)) as u32;
            // Static circular overlap test.
            let file = m.regs.size(a_op.opcode.def_class());
            let overlap = |s1: u32, w1: u32, s2: u32, w2: u32| -> bool {
                // Unroll the circle: intervals [s, s+w) mod file.
                for o1 in [0, file] {
                    let (a0, a1) = (s1 + o1, s1 + o1 + w1);
                    let (b0, b1) = (s2, s2 + w2);
                    if a0 < b1 && b0 < a1 {
                        return true;
                    }
                }
                false
            };
            if overlap(ba, wa, bb, wb) || overlap(bb, wb, ba, wa) {
                return Some((a_op.id, b_op.id));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::modulo_schedule;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;

    fn alloc_for(l: &Loop, m: &MachineConfig) -> (Schedule, RegisterAssignment, DepGraph) {
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, m).unwrap();
        let a = allocate_rotating(l, &g, m, &s).unwrap();
        (s, a, g)
    }

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("sample");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let m1 = b.fmul(lx, lx);
        let a = b.fadd(m1, lx);
        b.store(y, 1, 0, a);
        b.finish()
    }

    #[test]
    fn allocation_validates() {
        let l = sample();
        let m = MachineConfig::paper_default();
        let (s, a, g) = alloc_for(&l, &m);
        assert_eq!(validate_assignment(&l, &g, &m, &s, &a), None);
        // Stores get no register; value producers do.
        assert!(a.base[3].is_none());
        assert!(a.base[0].is_some());
    }

    #[test]
    fn usage_matches_maxlive_estimate() {
        let l = sample();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        let a = allocate_rotating(&l, &g, &m, &s).unwrap();
        // Contiguous packing uses exactly the MaxLive estimate's register
        // count (same ceil(lifetime/II) spans, +1 per span for surviving
        // through the read cycle at most).
        let fp_slot = RegClass::ALL.iter().position(|&c| c == RegClass::ScalarFp).unwrap();
        assert!(a.used[fp_slot] >= s.max_live[fp_slot]);
        assert!(a.used[fp_slot] <= s.max_live[fp_slot] + 3);
    }

    #[test]
    fn physical_register_rotates_per_iteration() {
        let l = sample();
        let m = MachineConfig::paper_default();
        let (_, a, _) = alloc_for(&l, &m);
        let file = m.regs.scalar_fp;
        let p0 = a.physical(sv_ir::OpId(0), 0, file).unwrap();
        let p1 = a.physical(sv_ir::OpId(0), 1, file).unwrap();
        assert_eq!((p0 + 1) % file, p1);
    }

    #[test]
    fn tiny_file_overflows() {
        let l = sample();
        let mut m = MachineConfig::paper_default();
        m.regs.scalar_fp = 2;
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        // The schedule may flag pressure, and allocation must refuse.
        let e = allocate_rotating(&l, &g, &m, &s).unwrap_err();
        assert_eq!(e.class, RegClass::ScalarFp);
        assert!(e.needed > e.available);
    }

    #[test]
    fn workload_schedules_allocate_on_the_paper_machine() {
        let m = MachineConfig::paper_default();
        for suite in sv_workloads::all_benchmarks().iter().take(3) {
            for l in &suite.loops {
                let g = DepGraph::build(l);
                let s = modulo_schedule(l, &g, &m).unwrap();
                let a = allocate_rotating(l, &g, &m, &s)
                    .map_err(|e| format!("{}: {e}", l.name))
                    .unwrap();
                assert_eq!(validate_assignment(l, &g, &m, &s, &a), None, "{}", l.name);
            }
        }
    }
}
