//! # sv-modsched — iterative modulo scheduling
//!
//! A from-scratch implementation of Rau's iterative modulo scheduling
//! (HPL-94-115), the software pipeliner the paper layers selective
//! vectorization under:
//!
//! * **ResMII** — the resource-constrained lower bound on the initiation
//!   interval, computed by the ordered greedy bin-packing of the paper's
//!   Figure 2 (most-constrained operations first, least-used alternative
//!   chosen by high-water mark with a sum-of-squares tie-break). The
//!   [`Bins`] type is shared with the selective-vectorization
//!   partitioner in `sv-core`, which uses the same cost machinery
//!   incrementally.
//! * **RecMII** — the recurrence-constrained lower bound, from the maximum
//!   cycle ratio of the dependence graph (binary search + Bellman-Ford
//!   positive-cycle detection on `delay − II·distance` weights).
//! * **Scheduling** — height-priority list scheduling into a modulo
//!   reservation table with Rau's force-place-and-evict backtracking and a
//!   scheduling budget, escalating II on failure; stage count, schedule
//!   length and a MaxLive register-pressure estimate come out the other
//!   end.
//!
//! ```
//! use sv_modsched::modulo_schedule;
//! use sv_machine::MachineConfig;
//! use sv_analysis::DepGraph;
//! use sv_ir::{LoopBuilder, ScalarType};
//!
//! let mut b = LoopBuilder::new("copy");
//! let x = b.array("x", ScalarType::F64, 64);
//! let y = b.array("y", ScalarType::F64, 64);
//! let lx = b.load(x, 1, 0);
//! b.store(y, 1, 0, lx);
//! let l = b.finish();
//! let m = MachineConfig::paper_default();
//! let g = DepGraph::build(&l);
//! let s = modulo_schedule(&l, &g, &m).unwrap();
//! // Two memory ops on two load/store units: II = 1.
//! assert_eq!(s.ii, 1);
//! ```

mod binpack;
mod emit;
mod exact;
mod mii;
mod pressure;
mod regalloc;
mod sched;
mod validate;

pub use binpack::{Bins, Placement};
pub use emit::{emit_flat, emit_flat_for, FlatListing, Row};
pub use exact::{exact_schedule, ExactOutcome, ProbeBudget};
pub use mii::{compute_mii, compute_recmii, compute_resmii, edge_delay};
pub use pressure::{max_live, mve_factor};
pub use regalloc::{allocate_rotating, validate_assignment, AllocError, RegisterAssignment};
pub use sched::{modulo_schedule, modulo_schedule_with, Schedule, ScheduleConfig, ScheduleError};
pub use validate::{validate_schedule, ValidationError};
