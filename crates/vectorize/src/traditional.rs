//! Traditional (Allen–Kennedy) vectorization: loop distribution with typed
//! fusion and scalar expansion (paper §4.1, the "traditional" technique).
//!
//! The loop's dependence-graph condensation is walked in topological order;
//! each strongly connected component is *vector* (every member legal and
//! profitable) or *scalar*, and components are greedily fused into the
//! earliest compatible loop — the loop-fusion mitigation the paper applies
//! to keep the number of distributed loops down. Values flowing between
//! distributed loops are scalar-expanded through memory temporaries; the
//! extra stores and loads compete for the machine's memory units, which is
//! a large part of why distribution loses on ILP machines.

use crate::error::TransformError;
use crate::neighbor::apply_neighbor_rule;
use crate::transform::try_transform;
use sv_analysis::{strongly_connected_components, vectorizable_ops, DepGraph};
use sv_ir::{
    ArrayDecl, ArrayFill, ArrayId, CarriedInit, Loop, MemRef, OpId, OpKind, Opcode,
    Operand, Operation,
};
use sv_machine::MachineConfig;
use std::collections::HashMap;

/// One distributed loop: its scalar form and, for vector loops, the
/// vectorized form (the scalar form doubles as the remainder/cleanup loop).
#[derive(Debug, Clone)]
pub struct DistLoop {
    /// The distributed loop before vectorization (`iter_scale == 1`).
    pub scalar_form: Loop,
    /// The vectorized loop (`iter_scale == vl`) for vector-typed loops.
    pub vectorized: Option<Loop>,
}

impl DistLoop {
    /// The loop that actually executes the bulk iterations.
    pub fn main_loop(&self) -> &Loop {
        self.vectorized.as_ref().unwrap_or(&self.scalar_form)
    }

    /// True for vector loops.
    pub fn is_vector(&self) -> bool {
        self.vectorized.is_some()
    }
}

/// The output of the traditional vectorizer: a sequence of loops executed
/// back to back per invocation of the original loop.
#[derive(Debug, Clone)]
pub struct DistributedLoops {
    /// The distributed loops in execution order.
    pub loops: Vec<DistLoop>,
    /// Number of scalar-expansion temporaries created.
    pub expansion_arrays: usize,
}

/// Distribute and vectorize `src` in the classic style.
///
/// ```
/// use sv_ir::{LoopBuilder, ScalarType};
/// use sv_machine::MachineConfig;
/// use sv_vectorize::traditional_vectorize;
///
/// // Mixed loop: vectorizable multiply feeding a sequential reduction.
/// let mut b = LoopBuilder::new("dot");
/// let x = b.array("x", ScalarType::F64, 64);
/// let lx = b.load(x, 1, 0);
/// let sq = b.fmul(lx, lx);
/// b.reduce_add(sq);
/// let l = b.finish();
///
/// let d = traditional_vectorize(&l, &MachineConfig::paper_default());
/// // Distribution: a vector loop and a scalar reduction loop, linked by
/// // a scalar-expansion temporary.
/// assert_eq!(d.loops.len(), 2);
/// assert!(d.loops[0].is_vector());
/// assert_eq!(d.expansion_arrays, 1);
/// ```
pub fn traditional_vectorize(src: &Loop, m: &MachineConfig) -> DistributedLoops {
    match try_traditional_vectorize(src, m) {
        Ok(d) => d,
        Err(e) => std::panic::panic_any(e.to_string()),
    }
}

/// Fallible [`traditional_vectorize`]: distribution failures surface as a
/// [`TransformError`] instead of an unwind.
///
/// # Errors
///
/// Returns an error when a distributed loop fails IR verification or the
/// per-loop vectorization of a vector loop fails (both internal bugs,
/// reported with a dump of the offending loop).
pub fn try_traditional_vectorize(
    src: &Loop,
    m: &MachineConfig,
) -> Result<DistributedLoops, TransformError> {
    let g = DepGraph::build(src);
    let sccs = strongly_connected_components(&g);
    let statuses = vectorizable_ops(src, &g, m.vector_length);
    let part = apply_neighbor_rule(src, &g, &statuses);

    let comps = sccs.components();
    let n_comps = comps.len();
    let comp_vector: Vec<bool> = comps
        .iter()
        .map(|c| c.iter().all(|op| part[op.index()]))
        .collect();

    // Typed greedy fusion: place each component (topological order) in the
    // earliest loop of its type that is not earlier than any loop holding a
    // predecessor component.
    let mut loop_of_comp = vec![usize::MAX; n_comps];
    let mut loop_types: Vec<bool> = Vec::new();
    for c in 0..n_comps {
        let mut minpos = 0usize;
        for op in &comps[c] {
            for e in g.pred_edges(*op) {
                let pc = sccs.component_of(e.src) as usize;
                if pc != c {
                    minpos = minpos.max(loop_of_comp[pc]);
                }
            }
        }
        let slot = (minpos..loop_types.len()).find(|&i| loop_types[i] == comp_vector[c]);
        let idx = match slot {
            Some(i) => i,
            None => {
                loop_types.push(comp_vector[c]);
                loop_types.len() - 1
            }
        };
        loop_of_comp[c] = idx;
    }
    let n_loops = loop_types.len();
    let loop_of_op =
        |op: OpId| -> usize { loop_of_comp[sccs.component_of(op) as usize] };

    // Crossing register-dataflow uses need scalar expansion. Collect the
    // producers and the maximum carried distance each is read at.
    let mut expansion: HashMap<u32, u32> = HashMap::new(); // producer -> max d
    for op in &src.ops {
        for (p, d) in op.def_uses() {
            if p != op.id && loop_of_op(p) != loop_of_op(op.id) {
                let e = expansion.entry(p.0).or_insert(0);
                *e = (*e).max(d);
            }
        }
    }
    let mut producers: Vec<u32> = expansion.keys().copied().collect();
    producers.sort_unstable();

    // Extended array table shared by every distributed loop.
    let mut arrays = src.arrays.clone();
    let mut temp_array: HashMap<u32, (ArrayId, i64)> = HashMap::new(); // producer -> (array, pad)
    for &p in &producers {
        let op = &src.ops[p as usize];
        let pad = i64::from(expansion[&p]) + i64::from(m.vector_length);
        let fill = match op.carried_init {
            CarriedInit::Zero => ArrayFill::Zero,
            CarriedInit::One => ArrayFill::One,
            CarriedInit::PosInf => ArrayFill::PosInf,
            CarriedInit::NegInf => ArrayFill::NegInf,
        };
        let id = ArrayId(arrays.len() as u32);
        arrays.push(ArrayDecl {
            name: format!("expand{p}"),
            ty: op.opcode.ty,
            len: src.trip.count + pad as u64 + u64::from(m.vector_length),
            base_align: u64::from(m.vector_length) * op.opcode.ty.size_bytes(),
            iteration_private: false,
            fill,
        });
        temp_array.insert(p, (id, pad));
    }

    // Build each distributed loop.
    let mut out_loops = Vec::with_capacity(n_loops);
    for li in 0..n_loops {
        let members: Vec<usize> = (0..src.ops.len())
            .filter(|&i| loop_of_op(OpId(i as u32)) == li)
            .collect();
        let mut l = Loop::new(format!("{}.d{li}", src.name));
        l.arrays = arrays.clone();
        l.live_ins = src.live_ins.clone();
        l.trip = src.trip;
        l.invocations = src.invocations;
        l.allow_reassoc = src.allow_reassoc;

        // Loads for values produced in earlier loops, one per (producer,
        // distance) used here.
        let mut incoming: Vec<(u32, u32)> = Vec::new();
        for &i in &members {
            for (p, d) in src.ops[i].def_uses() {
                if p.index() != i && loop_of_op(p) != li && !incoming.contains(&(p.0, d)) {
                    incoming.push((p.0, d));
                }
            }
        }
        incoming.sort_unstable();
        let mut load_id: HashMap<(u32, u32), OpId> = HashMap::new();
        for &(p, d) in &incoming {
            let (arr, pad) = temp_array[&p];
            let id = l.push_op(Operation {
                id: OpId(0),
                opcode: Opcode::scalar(OpKind::Load, src.ops[p as usize].opcode.ty),
                operands: vec![],
                mem: Some(MemRef::scalar(arr, 1, pad - i64::from(d))),
                is_reduction: false,
                carried_init: CarriedInit::Zero,
            });
            load_id.insert((p, d), id);
        }

        // The member operations, with operands remapped. Ids are known up
        // front (loads first, then members in order) so carried *forward*
        // references within a recurrence component resolve too.
        let mut new_id: HashMap<u32, OpId> = HashMap::new();
        for (pos, &i) in members.iter().enumerate() {
            new_id.insert(i as u32, OpId((l.ops.len() + pos) as u32));
        }
        for &i in &members {
            let op = &src.ops[i];
            let operands: Vec<Operand> = op
                .operands
                .iter()
                .map(|o| match *o {
                    Operand::Def { op: p, distance } => {
                        if p.index() == i || loop_of_op(p) == li {
                            Operand::Def { op: new_id[&p.0], distance }
                        } else {
                            Operand::def(load_id[&(p.0, distance)])
                        }
                    }
                    other => other,
                })
                .collect();
            l.push_op(Operation {
                id: OpId(0),
                opcode: op.opcode,
                operands,
                mem: op.mem,
                is_reduction: op.is_reduction,
                carried_init: op.carried_init,
            });
        }

        // Stores of values consumed by later loops.
        for &p in &producers {
            if loop_of_op(OpId(p)) != li {
                continue;
            }
            let (arr, pad) = temp_array[&p];
            l.push_op(Operation {
                id: OpId(0),
                opcode: Opcode::scalar(OpKind::Store, src.ops[p as usize].opcode.ty),
                operands: vec![Operand::def(new_id[&p])],
                mem: Some(MemRef::scalar(arr, 1, pad)),
                is_reduction: false,
                carried_init: CarriedInit::Zero,
            });
        }

        // Live-outs whose producer lives here.
        for lo in &src.live_outs {
            if loop_of_op(lo.op) == li {
                l.live_outs.push(sv_ir::LiveOut {
                    name: lo.name.clone(),
                    op: new_id[&lo.op.0],
                    horizontal: lo.horizontal,
                    combine: lo.combine,
                });
            }
        }

        if let Err(e) = l.verify() {
            return Err(TransformError::InvalidOutput {
                transform: "traditional",
                error: e,
                dump: l.to_string(),
            });
        }
        out_loops.push(l);
    }

    // Vectorize the vector loops, keeping the scalar form for cleanup.
    let mut loops: Vec<DistLoop> = Vec::with_capacity(out_loops.len());
    for (li, l) in out_loops.into_iter().enumerate() {
        let vectorized = if loop_types[li] {
            let all = vec![true; l.ops.len()];
            Some(try_transform(&l, m, &all)?.looop)
        } else {
            None
        };
        loops.push(DistLoop { scalar_form: l, vectorized });
    }

    Ok(DistributedLoops { loops, expansion_arrays: producers.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType, VectorForm};
    use sv_machine::AlignmentPolicy;

    fn machine() -> MachineConfig {
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        m
    }

    fn dot_product() -> Loop {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        b.finish()
    }

    #[test]
    fn dot_product_distributes_into_vector_and_scalar() {
        let d = traditional_vectorize(&dot_product(), &machine());
        assert_eq!(d.loops.len(), 2);
        assert!(d.loops[0].is_vector());
        assert!(!d.loops[1].is_vector());
        assert_eq!(d.expansion_arrays, 1);
        // Vector loop: 2 vloads + vmul + vstore(T) = 4 vector ops.
        let v = d.loops[0].main_loop();
        assert_eq!(v.iter_scale, 2);
        assert_eq!(v.ops.len(), 4);
        assert!(v.ops.iter().all(|o| o.opcode.form == VectorForm::Vector));
        // Scalar loop: load(T) + reduce.
        let s = d.loops[1].main_loop();
        assert_eq!(s.iter_scale, 1);
        assert_eq!(s.ops.len(), 2);
        assert_eq!(s.live_outs.len(), 1);
    }

    #[test]
    fn fully_vectorizable_loop_stays_single() {
        let mut b = LoopBuilder::new("axpy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let a = b.live_in("a", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let ax = b.fmul_li(a, lx);
        let ly = b.load(y, 1, 0);
        let s = b.fadd(ax, ly);
        b.store(y, 1, 0, s);
        let l = b.finish();
        let d = traditional_vectorize(&l, &machine());
        assert_eq!(d.loops.len(), 1);
        assert!(d.loops[0].is_vector());
        assert_eq!(d.expansion_arrays, 0);
    }

    #[test]
    fn fully_sequential_loop_stays_single_scalar() {
        let mut b = LoopBuilder::new("seq");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 1, n);
        let l = b.finish();
        let d = traditional_vectorize(&l, &machine());
        assert_eq!(d.loops.len(), 1);
        assert!(!d.loops[0].is_vector());
        assert_eq!(d.loops[0].main_loop().iter_scale, 1);
        assert_eq!(d.loops[0].main_loop().ops.len(), 3);
    }

    #[test]
    fn fusion_groups_compatible_components() {
        // Two independent vectorizable chains + one recurrence: should fuse
        // into one vector loop and one scalar loop.
        let mut b = LoopBuilder::new("fuse");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let z = b.array("z", ScalarType::F64, 64);
        let w = b.array("w", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let nx = b.fneg(lx);
        b.store(y, 1, 0, nx);
        let lz = b.load(z, 1, 0);
        let nz = b.fabs(lz);
        b.store(w, 1, 0, nz);
        let la = b.load(x, 1, 32);
        b.recurrence(OpKind::Mul, ScalarType::F64, la);
        let l = b.finish();
        let d = traditional_vectorize(&l, &machine());
        assert_eq!(d.loops.len(), 2);
    }

    #[test]
    fn carried_forward_reference_within_one_loop() {
        // A recurrence whose carried read appears *before* the producer in
        // program order (as the expression frontend emits for
        // `t = 0.9*t + u`): remapping must resolve the forward id.
        let mut b = LoopBuilder::new("iir");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        // Hole-style carried read: a copy of the (later) add's value.
        let hole = OpId(b.as_loop().ops().len() as u32 + 2);
        let carried = b.push(
            Opcode::scalar(OpKind::Copy, ScalarType::F64),
            vec![Operand::carried(hole, 1)],
            None,
            false,
        );
        let scaled = b.fmul(lx, carried);
        let t = b.fadd(scaled, lx);
        assert_eq!(t, hole);
        b.store(y, 1, 0, t);
        let l = b.finish();
        let d = traditional_vectorize(&l, &machine());
        // The whole recurrence lands in one scalar loop; it must simply
        // not panic and must verify (checked inside the vectorizer).
        assert!(d.loops.iter().any(|dl| !dl.is_vector()));
    }

    #[test]
    fn expansion_load_offset_respects_distance() {
        // Consumer reads the producer's value from 2 iterations back,
        // across the distribution boundary.
        let mut b = LoopBuilder::new("carry");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let v = b.fneg(lx);
        // A sequential consumer: recurrence mixing v from 2 back.
        let id = OpId(b.as_loop().ops.len() as u32);
        b.push(
            Opcode::scalar(OpKind::Add, ScalarType::F64),
            vec![Operand::carried(id, 1), Operand::carried(v, 2)],
            None,
            false,
        );
        let r = id;
        b.store(y, 1, 0, r);
        let l = b.finish();
        let d = traditional_vectorize(&l, &machine());
        assert!(d.expansion_arrays >= 1);
        // Find the expansion load in a scalar loop and check its offset is
        // pad - 2 with pad = 2 + vl.
        let scalar_loop = d
            .loops
            .iter()
            .find(|dl| !dl.is_vector())
            .map(|dl| dl.main_loop())
            .unwrap();
        let load = scalar_loop
            .ops
            .iter()
            .find(|o| {
                o.opcode.kind == OpKind::Load
                    && scalar_loop.arrays[o.mem_ref().array.0 as usize]
                        .name
                        .starts_with("expand")
            })
            .expect("expansion load");
        assert_eq!(load.mem_ref().offset, 2); // pad 4 - distance 2
    }
}
