//! The paper's profitability guard for the non-selective vectorizers.
//!
//! On the evaluated machine, scalar↔vector communication is so expensive
//! that the paper improves its traditional and full vectorizers with one
//! rule: "an operation is not vectorized unless it has at least one
//! vectorizable predecessor or successor. Doing otherwise is clearly
//! unfavorable." (With selective vectorization such cases fall out of the
//! cost model automatically.)

use sv_analysis::{DepGraph, VecStatus};
use sv_ir::Loop;

/// Restrict a legality vector to operations with at least one legal
/// dataflow neighbour (register-edge predecessor or successor). Returns the
/// vector-partition assignment for the full vectorizer.
pub fn apply_neighbor_rule(l: &Loop, g: &DepGraph, statuses: &[VecStatus]) -> Vec<bool> {
    assert_eq!(statuses.len(), l.ops.len());
    l.ops
        .iter()
        .map(|op| {
            if !statuses[op.id.index()].is_vectorizable() {
                return false;
            }
            let has_legal_neighbor = g
                .pred_edges(op.id)
                .chain(g.succ_edges(op.id))
                .filter(|e| !e.is_mem)
                .any(|e| {
                    let other = if e.src == op.id { e.dst } else { e.src };
                    other != op.id && statuses[other.index()].is_vectorizable()
                });
            has_legal_neighbor
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_analysis::vectorizable_ops;
    use sv_ir::{LoopBuilder, ScalarType};

    #[test]
    fn isolated_legal_op_is_not_vectorized() {
        // A copy loop where the loaded value feeds only a non-vectorizable
        // recurrence: the load has no legal dataflow neighbour.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let r = b.recurrence(sv_ir::OpKind::Mul, ScalarType::F64, lx);
        b.store(y, 1, 0, r);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let st = vectorizable_ops(&l, &g, 2);
        let part = apply_neighbor_rule(&l, &g, &st);
        assert!(st[lx.index()].is_vectorizable());
        assert!(!part[lx.index()], "isolated load must stay scalar");
        assert!(!part[r.index()]);
    }

    #[test]
    fn connected_legal_ops_are_vectorized() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(y, 1, 0, n);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let st = vectorizable_ops(&l, &g, 2);
        let part = apply_neighbor_rule(&l, &g, &st);
        assert_eq!(part, vec![true, true, true]);
    }
}
