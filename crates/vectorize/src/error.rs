//! Typed failure modes for the vectorizing transformations.
//!
//! Every reachable failure of [`crate::try_transform`],
//! [`crate::try_widened_window_transform`] and
//! [`crate::try_traditional_vectorize`] is one of these variants, so the
//! compilation driver in `sv-core` can attach pass provenance and degrade
//! gracefully instead of unwinding. The panicking wrappers
//! ([`crate::transform`] &c.) raise the `Display` form of the same value.

use std::fmt;
use sv_ir::{OpId, VerifyError};

/// Why a vectorizing transformation could not produce a valid loop.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The partition vector's length does not match the loop's op count.
    PartitionMismatch {
        /// Ops in the loop.
        expected: usize,
        /// Entries in the partition.
        got: usize,
    },
    /// The machine's vector length cannot support vectorization.
    VectorLengthTooSmall {
        /// The offending vector length.
        vl: u32,
    },
    /// A memory operation in the vector partition is not unit stride.
    NotUnitStride {
        /// The offending operation.
        op: OpId,
        /// Its stride.
        stride: i64,
    },
    /// A carried use feeding a vector consumer has a distance that is not
    /// a multiple of the vector length, so lanes would cross iterations.
    MisalignedCarriedUse {
        /// The vector-partition consumer.
        consumer: OpId,
        /// The producer of the carried value.
        producer: OpId,
        /// The carried distance.
        distance: u32,
        /// The vector length it must divide by.
        vl: u32,
    },
    /// The partitioned operations form a distance-0 dependence cycle
    /// (through inserted communication), so no emission order exists.
    DependenceCycle,
    /// The transformation emitted a loop the IR verifier rejects — an
    /// internal bug; `dump` carries the offending loop's textual form.
    InvalidOutput {
        /// Which transformation produced the loop.
        transform: &'static str,
        /// The verifier's complaint.
        error: VerifyError,
        /// `Display` dump of the rejected loop (re-parseable).
        dump: String,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::PartitionMismatch { expected, got } => write!(
                f,
                "partition/loop mismatch: loop has {expected} ops, partition has {got}"
            ),
            TransformError::VectorLengthTooSmall { vl } => {
                write!(f, "vector length must be >= 2, machine has {vl}")
            }
            TransformError::NotUnitStride { op, stride } => write!(
                f,
                "vector memory op {op} must be unit stride, has stride {stride}"
            ),
            TransformError::MisalignedCarriedUse { consumer, producer, distance, vl } => {
                write!(
                    f,
                    "vector consumer {consumer} carried use of {producer} at \
                     distance {distance} must align with vl {vl}"
                )
            }
            TransformError::DependenceCycle => {
                write!(f, "distance-0 dependence cycle in transform")
            }
            TransformError::InvalidOutput { transform, error, dump } => {
                write!(f, "{transform} transform produced an invalid loop: {error}\n{dump}")
            }
        }
    }
}

impl std::error::Error for TransformError {}
