//! Partition-driven loop transformation (paper §3.3).

use crate::error::TransformError;
use std::collections::{BTreeSet, HashMap};
use sv_ir::{
    ArrayDecl, CarriedInit, Loop, MemRef, OpId, OpKind, Opcode, Operand, Operation,
    ScalarType, VectorForm,
};
use sv_machine::{AlignmentPolicy, CommModel, MachineConfig};

/// The result of transforming a loop under a scalar/vector partition.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The transformed loop (`iter_scale` multiplied by the vector length).
    pub looop: Loop,
    /// For each source op in the vector partition: the op that carries its
    /// *value* in the transformed loop (the merge for misaligned vector
    /// loads, else the vector op itself). `None` for stores and scalar ops.
    pub vector_value_of: Vec<Option<OpId>>,
    /// For each source op in the scalar partition: its `k` lane copies.
    pub scalar_copies: Vec<Vec<OpId>>,
    /// Number of transfer operations (communication through memory).
    pub transfer_ops: usize,
    /// Number of merge operations inserted for misaligned vector refs.
    pub merge_ops: usize,
}

/// Symbolic identity of a transformed-loop operation before ids exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    /// Vector version of source op.
    Vec(u32),
    /// Realignment merge after a misaligned vector load.
    MergeLoad(u32),
    /// Realignment merge before a misaligned vector store.
    MergeStore(u32),
    /// Scalar copy `(op, lane)`.
    Lane(u32, u32),
    /// Scalar→vector transfer: store of `(producer, lane)`.
    TStore(u32, u32),
    /// Scalar→vector transfer: the vector load of `producer`'s lanes.
    TVLoad(u32),
    /// Vector→scalar transfer: the vector store of `producer`'s value.
    TVStore(u32),
    /// Vector→scalar transfer: scalar load of `(producer, lane)`.
    TLoad(u32, u32),
    /// Free-communication gather of `producer`'s lanes into a vector.
    Pack(u32),
    /// Free-communication extraction of `(producer, lane)`.
    Extract(u32, u32),
}

impl Key {
    /// Deterministic emission preference (used to break ties in the
    /// topological sort): roughly program order of the source op, with
    /// merges-before-stores and transfers after their producers.
    fn sort_key(self) -> (u32, u8, u32) {
        match self {
            Key::MergeStore(i) => (i, 0, 0),
            Key::Vec(i) => (i, 1, 0),
            Key::Lane(i, j) => (i, 1, j),
            Key::MergeLoad(i) => (i, 2, 0),
            Key::TStore(p, j) => (p, 3, j),
            Key::TVStore(p) => (p, 3, 0),
            Key::Pack(p) => (p, 3, 0),
            Key::TVLoad(p) => (p, 4, 0),
            Key::TLoad(p, j) => (p, 4, j),
            Key::Extract(p, j) => (p, 4, j),
        }
    }
}

#[derive(Debug, Clone)]
enum NOperand {
    Key { key: Key, distance: u32 },
    Plain(Operand),
}

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    opcode: Opcode,
    operands: Vec<NOperand>,
    mem: Option<MemRef>,
    is_reduction: bool,
    carried_init: CarriedInit,
}

struct Builder<'a> {
    src: &'a Loop,
    m: &'a MachineConfig,
    part: &'a [bool],
    k: u32,
    nodes: Vec<Node>,
    index: HashMap<Key, usize>,
    arrays: Vec<ArrayDecl>,
    comm_array: HashMap<u32, sv_ir::ArrayId>,
    /// Value-carrying key per vector-partition source op.
    value_key: Vec<Option<Key>>,
    /// Extra intra-iteration ordering constraints (communication slots:
    /// the stores feeding a transfer load must precede it).
    order_edges: Vec<(Key, Key)>,
}

/// Transform `src` for machine `m` under `part` (`true` = vector
/// partition). Non-vectorizable operations must be `false`; memory
/// operations in the vector partition must be unit-stride and vector
/// consumers' carried uses must be multiples of the vector length (both
/// guaranteed by `sv-analysis` legality, asserted here).
///
/// Passing an all-`false` partition produces the paper's *baseline*: the
/// loop unrolled by the vector length with base+offset addressing.
///
/// ```
/// use sv_ir::{LoopBuilder, ScalarType};
/// use sv_machine::MachineConfig;
/// use sv_vectorize::transform;
///
/// let mut b = LoopBuilder::new("copy");
/// let x = b.array("x", ScalarType::F64, 64);
/// let y = b.array("y", ScalarType::F64, 64);
/// let lx = b.load(x, 1, 0);
/// b.store(y, 1, 0, lx);
/// let l = b.finish();
///
/// let m = MachineConfig::paper_default();
/// // Vectorize everything: one vector load + merge + merge + vector store.
/// let t = transform(&l, &m, &[true, true]);
/// assert_eq!(t.looop.iter_scale, 2);
/// assert_eq!(t.merge_ops, 2); // misaligned by default on the paper machine
/// ```
///
/// # Panics
///
/// Panics when the partition violates legality or indexes a different loop.
/// [`try_transform`] reports the same conditions as a [`TransformError`]
/// instead.
pub fn transform(src: &Loop, m: &MachineConfig, part: &[bool]) -> Transformed {
    match try_transform(src, m, part) {
        Ok(t) => t,
        Err(e) => std::panic::panic_any(e.to_string()),
    }
}

/// Structural preconditions mirroring the transformer's internal
/// invariants, checked up front so an illegal partition surfaces as a
/// typed error rather than an unwind.
fn check_partition(src: &Loop, m: &MachineConfig, part: &[bool]) -> Result<(), TransformError> {
    if part.len() != src.ops.len() {
        return Err(TransformError::PartitionMismatch {
            expected: src.ops.len(),
            got: part.len(),
        });
    }
    let k = m.vector_length;
    if k < 2 {
        return Err(TransformError::VectorLengthTooSmall { vl: k });
    }
    for (i, op) in src.ops.iter().enumerate() {
        if !part[i] {
            continue;
        }
        if let Some(r) = &op.mem {
            if r.stride != 1 {
                return Err(TransformError::NotUnitStride { op: op.id, stride: r.stride });
            }
        }
        for (slot, o) in op.operands.iter().enumerate() {
            if let Operand::Def { op: p, distance: d } = *o {
                // A reduction's accumulator self-reference becomes the
                // vector partial-sum recurrence; everything else must keep
                // whole vector iterations apart.
                if p.index() == i && op.is_reduction && slot == 0 {
                    continue;
                }
                if d % k != 0 {
                    return Err(TransformError::MisalignedCarriedUse {
                        consumer: op.id,
                        producer: p,
                        distance: d,
                        vl: k,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Fallible [`transform`]: the same transformation, with illegal
/// partitions and invalid outputs reported as a [`TransformError`].
///
/// # Errors
///
/// Returns an error when the partition does not match the loop, violates
/// a legality invariant (stride, carried-use alignment), or the emitted
/// loop fails IR verification (an internal bug, reported with a dump).
pub fn try_transform(
    src: &Loop,
    m: &MachineConfig,
    part: &[bool],
) -> Result<Transformed, TransformError> {
    check_partition(src, m, part)?;
    let k = m.vector_length;

    let mut b = Builder {
        src,
        m,
        part,
        k,
        nodes: Vec::new(),
        index: HashMap::new(),
        arrays: src.arrays.clone(),
        comm_array: HashMap::new(),
        value_key: vec![None; src.ops.len()],
        order_edges: Vec::new(),
    };

    b.create_source_nodes();
    b.fill_operands();
    let (looop, id_of, transfer_ops, merge_ops) = b.emit()?;

    let vector_value_of = (0..src.ops.len())
        .map(|i| {
            if part[i] {
                b_value_key(&looop, &id_of, &b_value(&b, i))
            } else {
                None
            }
        })
        .collect();
    let scalar_copies = (0..src.ops.len())
        .map(|i| {
            if part[i] {
                Vec::new()
            } else {
                (0..k).map(|j| id_of[&Key::Lane(i as u32, j)]).collect()
            }
        })
        .collect();

    Ok(Transformed { looop, vector_value_of, scalar_copies, transfer_ops, merge_ops })
}

fn b_value(b: &Builder<'_>, i: usize) -> Option<Key> {
    b.value_key[i]
}

fn b_value_key(
    _l: &Loop,
    id_of: &HashMap<Key, OpId>,
    key: &Option<Key>,
) -> Option<OpId> {
    key.as_ref().map(|k| id_of[k])
}

impl<'a> Builder<'a> {
    fn misaligned(&self, r: &MemRef) -> bool {
        match self.m.alignment {
            AlignmentPolicy::AssumeAligned => false,
            AlignmentPolicy::AssumeMisaligned => true,
            AlignmentPolicy::UseStatic => {
                let a = &self.src.arrays[r.array.0 as usize];
                let vec_bytes = u64::from(self.k) * a.ty.size_bytes();
                !(a.base_align.is_multiple_of(vec_bytes)
                    && r.offset.rem_euclid(i64::from(self.k)) == 0)
            }
        }
    }

    fn push_node(&mut self, node: Node) {
        let prev = self.index.insert(node.key, self.nodes.len());
        debug_assert!(prev.is_none(), "duplicate node {:?}", node.key);
        self.nodes.push(node);
    }

    /// The transformed memory ref of a source ref at lane `j` (scalar) or
    /// widened over `k` lanes (vector, requires unit stride).
    fn lane_ref(&self, r: &MemRef, j: u32) -> MemRef {
        MemRef {
            array: r.array,
            stride: r.stride * i64::from(self.k),
            offset: r.offset + r.stride * i64::from(j),
            width: 1,
        }
    }

    fn wide_ref(&self, r: &MemRef) -> MemRef {
        assert_eq!(r.stride, 1, "vector memory op must be unit stride");
        MemRef {
            array: r.array,
            stride: i64::from(self.k),
            offset: r.offset,
            width: self.k,
        }
    }

    fn create_source_nodes(&mut self) {
        for (i, op) in self.src.ops.iter().enumerate() {
            let iu = i as u32;
            if self.part[i] {
                let vopc = op.opcode.with_form(VectorForm::Vector);
                match op.opcode.kind {
                    OpKind::Load => {
                        let r = self.wide_ref(op.mem_ref());
                        let mis = self.misaligned(op.mem_ref());
                        self.push_node(Node {
                            key: Key::Vec(iu),
                            opcode: vopc,
                            operands: vec![],
                            mem: Some(r),
                            is_reduction: false,
                            carried_init: op.carried_init,
                        });
                        if mis {
                            self.push_node(Node {
                                key: Key::MergeLoad(iu),
                                opcode: Opcode::vector(OpKind::Merge, op.opcode.ty),
                                operands: vec![NOperand::Key {
                                    key: Key::Vec(iu),
                                    distance: 0,
                                }],
                                mem: None,
                                is_reduction: false,
                                carried_init: op.carried_init,
                            });
                            self.value_key[i] = Some(Key::MergeLoad(iu));
                        } else {
                            self.value_key[i] = Some(Key::Vec(iu));
                        }
                    }
                    OpKind::Store => {
                        let r = self.wide_ref(op.mem_ref());
                        let mis = self.misaligned(op.mem_ref());
                        if mis {
                            self.push_node(Node {
                                key: Key::MergeStore(iu),
                                opcode: Opcode::vector(OpKind::Merge, op.opcode.ty),
                                operands: vec![], // filled in pass 2
                                mem: None,
                                is_reduction: false,
                                carried_init: CarriedInit::Zero,
                            });
                        }
                        self.push_node(Node {
                            key: Key::Vec(iu),
                            opcode: vopc,
                            operands: vec![], // filled in pass 2
                            mem: Some(r),
                            is_reduction: false,
                            carried_init: CarriedInit::Zero,
                        });
                    }
                    _ => {
                        self.push_node(Node {
                            key: Key::Vec(iu),
                            opcode: vopc,
                            operands: vec![],
                            mem: None,
                            is_reduction: op.is_reduction,
                            carried_init: op.carried_init,
                        });
                        self.value_key[i] = Some(Key::Vec(iu));
                    }
                }
            } else {
                for j in 0..self.k {
                    let mem = op.mem.as_ref().map(|r| self.lane_ref(r, j));
                    self.push_node(Node {
                        key: Key::Lane(iu, j),
                        opcode: op.opcode,
                        operands: vec![],
                        mem,
                        is_reduction: false,
                        carried_init: op.carried_init,
                    });
                }
            }
        }
    }

    fn comm_array_for(&mut self, p: u32, ty: ScalarType) -> sv_ir::ArrayId {
        if let Some(&a) = self.comm_array.get(&p) {
            return a;
        }
        let id = sv_ir::ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: format!("comm{p}"),
            ty,
            len: u64::from(self.k),
            base_align: u64::from(self.k) * ty.size_bytes(),
            iteration_private: true,
            fill: sv_ir::ArrayFill::Zero,
        });
        self.comm_array.insert(p, id);
        id
    }

    /// Zero-cost pack of `p`'s lanes (free communication model).
    fn ensure_pack(&mut self, p: u32) -> Key {
        if self.index.contains_key(&Key::Pack(p)) {
            return Key::Pack(p);
        }
        let src_op = &self.src.ops[p as usize];
        self.push_node(Node {
            key: Key::Pack(p),
            opcode: Opcode::vector(OpKind::Pack, src_op.opcode.ty),
            operands: (0..self.k)
                .map(|j| NOperand::Key { key: Key::Lane(p, j), distance: 0 })
                .collect(),
            mem: None,
            is_reduction: false,
            carried_init: src_op.carried_init,
        });
        Key::Pack(p)
    }

    /// Zero-cost lane extraction of `p`'s vector value (free model).
    fn ensure_extract(&mut self, p: u32, lane: u32) -> Key {
        if self.index.contains_key(&Key::Extract(p, lane)) {
            return Key::Extract(p, lane);
        }
        let src_op = &self.src.ops[p as usize];
        let vkey = self.value_key[p as usize].expect("vector producer has a value");
        self.push_node(Node {
            key: Key::Extract(p, lane),
            opcode: Opcode::scalar(OpKind::Extract, src_op.opcode.ty),
            operands: vec![
                NOperand::Key { key: vkey, distance: 0 },
                NOperand::Plain(Operand::ConstI(i64::from(lane))),
            ],
            mem: None,
            is_reduction: false,
            carried_init: src_op.carried_init,
        });
        Key::Extract(p, lane)
    }

    /// Scalar→vector transfer of producer `p`'s lanes; returns the key of
    /// the vector load carrying the transferred value.
    fn ensure_s2v(&mut self, p: u32) -> Key {
        assert_eq!(
            self.m.comm,
            CommModel::ThroughMemory,
            "explicit transfers exist only under the through-memory model"
        );
        if self.index.contains_key(&Key::TVLoad(p)) {
            return Key::TVLoad(p);
        }
        let src_op = &self.src.ops[p as usize];
        let ty = src_op.opcode.ty;
        let init = src_op.carried_init;
        let arr = self.comm_array_for(p, ty);
        for j in 0..self.k {
            self.push_node(Node {
                key: Key::TStore(p, j),
                opcode: Opcode::scalar(OpKind::Store, ty),
                operands: vec![NOperand::Key { key: Key::Lane(p, j), distance: 0 }],
                mem: Some(MemRef { array: arr, stride: 0, offset: i64::from(j), width: 1 }),
                is_reduction: false,
                carried_init: CarriedInit::Zero,
            });
        }
        self.push_node(Node {
            key: Key::TVLoad(p),
            opcode: Opcode::vector(OpKind::Load, ty),
            operands: vec![],
            mem: Some(MemRef { array: arr, stride: 0, offset: 0, width: self.k }),
            is_reduction: false,
            carried_init: init,
        });
        for j in 0..self.k {
            self.order_edges.push((Key::TStore(p, j), Key::TVLoad(p)));
        }
        Key::TVLoad(p)
    }

    /// Vector→scalar transfer; returns nothing (lane loads are addressed
    /// directly as `Key::TLoad(p, lane)`).
    fn ensure_v2s(&mut self, p: u32) {
        assert_eq!(
            self.m.comm,
            CommModel::ThroughMemory,
            "explicit transfers exist only under the through-memory model"
        );
        if self.index.contains_key(&Key::TVStore(p)) {
            return;
        }
        let src_op = &self.src.ops[p as usize];
        let ty = src_op.opcode.ty;
        let init = src_op.carried_init;
        let arr = self.comm_array_for(p, ty);
        let vkey = self.value_key[p as usize].expect("vector producer has a value");
        self.push_node(Node {
            key: Key::TVStore(p),
            opcode: Opcode::vector(OpKind::Store, ty),
            operands: vec![NOperand::Key { key: vkey, distance: 0 }],
            mem: Some(MemRef { array: arr, stride: 0, offset: 0, width: self.k }),
            is_reduction: false,
            carried_init: CarriedInit::Zero,
        });
        for j in 0..self.k {
            self.push_node(Node {
                key: Key::TLoad(p, j),
                opcode: Opcode::scalar(OpKind::Load, ty),
                operands: vec![],
                mem: Some(MemRef { array: arr, stride: 0, offset: i64::from(j), width: 1 }),
                is_reduction: false,
                carried_init: init,
            });
            self.order_edges.push((Key::TVStore(p), Key::TLoad(p, j)));
        }
    }

    fn map_operand_vector(&mut self, consumer: usize, slot: usize, o: &Operand) -> NOperand {
        let op = &self.src.ops[consumer];
        match *o {
            Operand::Def { op: p, distance: d } => {
                if p.index() == consumer && op.is_reduction && slot == 0 {
                    // Vector partial sums: self-reference at distance 1.
                    return NOperand::Key { key: Key::Vec(consumer as u32), distance: 1 };
                }
                if self.part[p.index()] {
                    assert_eq!(
                        d % self.k,
                        0,
                        "vector consumer carried use must align with vl"
                    );
                    let key = self.value_key[p.index()].expect("producer value");
                    NOperand::Key { key, distance: d / self.k }
                } else if self.m.comm == CommModel::Free {
                    // Idealized machine: operands move between register
                    // files without instructions (Figure 1's assumption);
                    // a zero-cost pack carries the lanes.
                    assert_eq!(d % self.k, 0, "carried use must align with vl");
                    let key = self.ensure_pack(p.0);
                    NOperand::Key { key, distance: d / self.k }
                } else {
                    assert_eq!(d % self.k, 0, "carried use must align with vl");
                    let key = self.ensure_s2v(p.0);
                    NOperand::Key { key, distance: d / self.k }
                }
            }
            Operand::Iv { scale, offset } => NOperand::Plain(Operand::Iv {
                scale: scale * i64::from(self.k),
                offset,
            }),
            other => NOperand::Plain(other),
        }
    }

    fn map_operand_scalar(&mut self, _consumer: usize, j: u32, o: &Operand) -> NOperand {
        match *o {
            Operand::Def { op: p, distance: d } => {
                let k = i64::from(self.k);
                let jp = (i64::from(j) - i64::from(d)).rem_euclid(k) as u32;
                let dd = (i64::from(d) - i64::from(j) + i64::from(jp)) / k;
                let dd = u32::try_from(dd).expect("non-negative transformed distance");
                if self.part[p.index()] {
                    if self.m.comm == CommModel::Free {
                        // Idealized: a zero-cost extract reads lane `jp`.
                        let key = self.ensure_extract(p.0, jp);
                        NOperand::Key { key, distance: dd }
                    } else {
                        self.ensure_v2s(p.0);
                        NOperand::Key { key: Key::TLoad(p.0, jp), distance: dd }
                    }
                } else {
                    NOperand::Key { key: Key::Lane(p.0, jp), distance: dd }
                }
            }
            Operand::Iv { scale, offset } => NOperand::Plain(Operand::Iv {
                scale: scale * i64::from(self.k),
                offset: offset + scale * i64::from(j),
            }),
            other => NOperand::Plain(other),
        }
    }

    fn fill_operands(&mut self) {
        for i in 0..self.src.ops.len() {
            let op = self.src.ops[i].clone();
            let iu = i as u32;
            if self.part[i] {
                let mapped: Vec<NOperand> = op
                    .operands
                    .iter()
                    .enumerate()
                    .map(|(slot, o)| self.map_operand_vector(i, slot, o))
                    .collect();
                if op.opcode.kind == OpKind::Store {
                    if self.index.contains_key(&Key::MergeStore(iu)) {
                        let mi = self.index[&Key::MergeStore(iu)];
                        self.nodes[mi].operands = mapped;
                        let vi = self.index[&Key::Vec(iu)];
                        self.nodes[vi].operands =
                            vec![NOperand::Key { key: Key::MergeStore(iu), distance: 0 }];
                    } else {
                        let vi = self.index[&Key::Vec(iu)];
                        self.nodes[vi].operands = mapped;
                    }
                } else if op.opcode.kind != OpKind::Load {
                    let vi = self.index[&Key::Vec(iu)];
                    self.nodes[vi].operands = mapped;
                }
            } else {
                for j in 0..self.k {
                    let mapped: Vec<NOperand> = op
                        .operands
                        .iter()
                        .map(|o| self.map_operand_scalar(i, j, o))
                        .collect();
                    let li = self.index[&Key::Lane(iu, j)];
                    self.nodes[li].operands = mapped;
                }
            }
        }
    }

    /// The original iteration in which `node` accesses memory relative to
    /// its lane structure, as a pairwise ordering aid. Scalar lanes order
    /// by `(lane, source op index)` — exactly the original execution
    /// order; anything involving a vector access (unit stride by
    /// legality) orders by `(−original offset, source op index)`, the
    /// original time of the conflicting element.
    fn mem_order_before(&self, a: usize, b: usize) -> bool {
        let (na, nb) = (&self.nodes[a], &self.nodes[b]);
        let lane_of = |k: Key| match k {
            Key::Lane(i, j) => Some((j, i)),
            _ => None,
        };
        let orig_of = |k: Key| match k {
            Key::Lane(i, _) | Key::Vec(i) => i,
            Key::TStore(p, _) | Key::TVLoad(p) | Key::TVStore(p) | Key::TLoad(p, _) => p,
            Key::MergeLoad(i) | Key::MergeStore(i) | Key::Pack(i) | Key::Extract(i, _) => i,
        };
        match (lane_of(na.key), lane_of(nb.key)) {
            (Some(ka), Some(kb)) => ka < kb,
            _ => {
                let off = |k: Key| {
                    let op = &self.src.ops[orig_of(k) as usize];
                    op.mem_ref().offset
                };
                let (oa, ob) = (off(na.key), off(nb.key));
                // Larger original offset touches the conflicting element
                // in an earlier original iteration.
                (std::cmp::Reverse(oa), orig_of(na.key))
                    < (std::cmp::Reverse(ob), orig_of(nb.key))
            }
        }
    }

    /// Kahn topological sort on distance-0 edges — register dataflow plus
    /// intra-iteration memory dependences — then emit the loop.
    fn emit(&self) -> Result<(Loop, HashMap<Key, OpId>, usize, usize), TransformError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge = |succs: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, p: usize, i: usize| {
            if p != i && !succs[p].contains(&i) {
                succs[p].push(i);
                indegree[i] += 1;
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            for o in &node.operands {
                if let NOperand::Key { key, distance: 0 } = o {
                    let p = self.index[key];
                    add_edge(&mut succs, &mut indegree, p, i);
                }
            }
        }
        for (from, to) in &self.order_edges {
            add_edge(&mut succs, &mut indegree, self.index[from], self.index[to]);
        }
        // Intra-iteration memory dependences between lanes/vectors of the
        // transformed loop: conflicting same-cycle accesses must keep the
        // original access order, or unrolled recurrences read stale data.
        let mem_nodes: Vec<usize> = (0..n)
            .filter(|&i| {
                self.nodes[i].mem.is_some()
                    && !self.arrays[self.nodes[i].mem.unwrap().array.0 as usize]
                        .iteration_private
            })
            .collect();
        for (xi, &a) in mem_nodes.iter().enumerate() {
            for &b in &mem_nodes[xi + 1..] {
                let (ra, rb) = (self.nodes[a].mem.unwrap(), self.nodes[b].mem.unwrap());
                if ra.array != rb.array {
                    continue;
                }
                let a_store = self.nodes[a].opcode.kind == OpKind::Store;
                let b_store = self.nodes[b].opcode.kind == OpKind::Store;
                if !a_store && !b_store {
                    continue;
                }
                let conflicts_now = sv_analysis::mem_dependences(&ra, &rb, 4)
                    .iter()
                    .chain(sv_analysis::mem_dependences(&rb, &ra, 4).iter())
                    .any(|d| matches!(d, sv_analysis::Distance::Exact(0))
                        || matches!(d, sv_analysis::Distance::Star));
                if !conflicts_now {
                    continue;
                }
                if self.mem_order_before(a, b) {
                    add_edge(&mut succs, &mut indegree, a, b);
                } else {
                    add_edge(&mut succs, &mut indegree, b, a);
                }
            }
        }
        let mut ready: BTreeSet<((u32, u8, u32), usize)> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| (self.nodes[i].key.sort_key(), i))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&(sk, i)) = ready.iter().next() {
            ready.remove(&(sk, i));
            order.push(i);
            for &s in &succs[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.insert((self.nodes[s].key.sort_key(), s));
                }
            }
        }
        if order.len() != n {
            return Err(TransformError::DependenceCycle);
        }

        let mut looop = Loop::new(format!("{}.x{}", self.src.name, self.k));
        looop.arrays = self.arrays.clone();
        looop.live_ins = self.src.live_ins.clone();
        looop.trip = self.src.trip;
        looop.invocations = self.src.invocations;
        looop.allow_reassoc = self.src.allow_reassoc;
        looop.iter_scale = self.src.iter_scale * self.k;
        looop.vector_width = self.k;

        let mut id_of: HashMap<Key, OpId> = HashMap::with_capacity(n);
        for &i in &order {
            id_of.insert(self.nodes[i].key, OpId(looop.ops.len() as u32));
            // Operands resolved in a second pass once every id exists
            // (carried refs may point forward).
            looop.push_op(Operation {
                id: OpId(0),
                opcode: self.nodes[i].opcode,
                operands: Vec::new(),
                mem: self.nodes[i].mem,
                is_reduction: self.nodes[i].is_reduction,
                carried_init: self.nodes[i].carried_init,
            });
        }
        for (pos, &i) in order.iter().enumerate() {
            let ops: Vec<Operand> = self.nodes[i]
                .operands
                .iter()
                .map(|o| match o {
                    NOperand::Key { key, distance } => Operand::Def {
                        op: id_of[key],
                        distance: *distance,
                    },
                    NOperand::Plain(p) => *p,
                })
                .collect();
            looop.ops[pos].operands = ops;
        }

        // Live-outs.
        for lo in &self.src.live_outs {
            let p = lo.op;
            let new = if self.part[p.index()] {
                let key = self.value_key[p.index()].expect("live-out producer");
                let horizontal = if self.src.ops[p.index()].is_reduction {
                    Some(self.src.ops[p.index()].opcode.kind)
                } else {
                    None
                };
                sv_ir::LiveOut {
                    name: lo.name.clone(),
                    op: id_of[&key],
                    horizontal,
                    combine: lo.combine,
                }
            } else {
                sv_ir::LiveOut {
                    name: lo.name.clone(),
                    op: id_of[&Key::Lane(p.0, self.k - 1)],
                    horizontal: None,
                    combine: lo.combine,
                }
            };
            looop.live_outs.push(new);
        }

        if let Err(e) = looop.verify() {
            return Err(TransformError::InvalidOutput {
                transform: "selective",
                error: e,
                dump: looop.to_string(),
            });
        }

        let transfer_ops = self
            .nodes
            .iter()
            .filter(|nd| {
                matches!(
                    nd.key,
                    Key::TStore(..) | Key::TVLoad(_) | Key::TVStore(_) | Key::TLoad(..)
                )
            })
            .count();
        let merge_ops = self
            .nodes
            .iter()
            .filter(|nd| matches!(nd.key, Key::MergeLoad(_) | Key::MergeStore(_)))
            .count();
        Ok((looop, id_of, transfer_ops, merge_ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::LoopBuilder;

    fn daxpy() -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let a = b.live_in("a", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let ax = b.fmul_li(a, lx);
        let s = b.fadd(ax, ly);
        b.store(y, 1, 0, s);
        b.finish()
    }

    #[test]
    fn all_scalar_partition_unrolls() {
        let l = daxpy();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let t = transform(&l, &m, &vec![false; l.ops.len()]);
        assert_eq!(t.looop.ops.len(), l.ops.len() * 2);
        assert_eq!(t.looop.iter_scale, 2);
        assert_eq!(t.transfer_ops, 0);
        assert_eq!(t.merge_ops, 0);
        assert!(t.looop.ops.iter().all(|o| o.opcode.form == VectorForm::Scalar));
        // Lane 1's loads address offset 1.
        let lane1_loads: Vec<_> = t
            .looop
            .ops
            .iter()
            .filter(|o| o.opcode.kind == OpKind::Load && o.mem_ref().offset == 1)
            .collect();
        assert_eq!(lane1_loads.len(), 2);
        assert!(lane1_loads.iter().all(|o| o.mem_ref().stride == 2));
    }

    #[test]
    fn all_vector_partition_aligned() {
        let l = daxpy();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let t = transform(&l, &m, &vec![true; l.ops.len()]);
        assert_eq!(t.looop.ops.len(), l.ops.len());
        assert!(t.looop.ops.iter().all(|o| o.opcode.form == VectorForm::Vector));
        assert_eq!(t.transfer_ops, 0);
        let wide = t.looop.ops[0].mem_ref();
        assert_eq!((wide.stride, wide.width), (2, 2));
    }

    #[test]
    fn misaligned_policy_inserts_merges() {
        let l = daxpy();
        let m = MachineConfig::paper_default(); // AssumeMisaligned
        let t = transform(&l, &m, &vec![true; l.ops.len()]);
        // 2 loads + 1 store, all misaligned ⇒ 3 merges.
        assert_eq!(t.merge_ops, 3);
        assert_eq!(
            t.looop.ops.iter().filter(|o| o.opcode.kind == OpKind::Merge).count(),
            3
        );
    }

    #[test]
    fn static_alignment_distinguishes_offsets() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let l0 = b.load(x, 1, 0); // aligned (base 16, offset 0)
        let l1 = b.load(y, 1, 1); // misaligned offset
        let s = b.fadd(l0, l1);
        b.store(x, 1, 2, s); // offset 2 is aligned for vl=2
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::UseStatic;
        let t = transform(&l, &m, &vec![true; l.ops.len()]);
        assert_eq!(t.merge_ops, 1);
    }

    #[test]
    fn cross_partition_transfers_are_shared() {
        // One vector producer feeding two scalar consumers: one transfer.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let z = b.array("z", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        let a = b.fabs(lx);
        b.store(y, 1, 0, n);
        b.store(z, 1, 0, a);
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        // Load vector; everything else scalar.
        let mut part = vec![false; l.ops.len()];
        part[lx.index()] = true;
        let t = transform(&l, &m, &part);
        // V→S transfer: 1 vstore + 2 loads = 3 ops, shared by both readers.
        assert_eq!(t.transfer_ops, 3);
        // 1 vload + 3 transfer + (4 scalar ops × 2 lanes) = 12.
        assert_eq!(t.looop.ops.len(), 12);
    }

    #[test]
    fn scalar_to_vector_transfer() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 2, 0); // non-unit stride: must stay scalar
        let n = b.fneg(lx);
        b.store(y, 1, 0, n);
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let mut part = vec![false; l.ops.len()];
        part[n.index()] = true;
        part[2] = true; // the store
        let t = transform(&l, &m, &part);
        // S→V: 2 stores + 1 vload.
        assert_eq!(t.transfer_ops, 3);
        let comm = t.looop.arrays.iter().find(|a| a.iteration_private).unwrap();
        assert_eq!(comm.len, 2);
    }

    #[test]
    fn scalar_reduction_forms_lane_chain() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let s = b.reduce_add(lx);
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let t = transform(&l, &m, &vec![false; l.ops.len()]);
        let lanes = &t.scalar_copies[s.index()];
        assert_eq!(lanes.len(), 2);
        // Lane 1 reads lane 0 intra-iteration; lane 0 reads lane 1 carried.
        let l0 = &t.looop.ops[lanes[0].index()];
        let l1 = &t.looop.ops[lanes[1].index()];
        assert_eq!(l0.operands[0], Operand::carried(*lanes.last().unwrap(), 1));
        assert_eq!(l1.operands[0], Operand::def(lanes[0]));
        // Live-out maps to the last lane.
        assert_eq!(t.looop.live_outs[0].op, lanes[1]);
        assert_eq!(t.looop.live_outs[0].horizontal, None);
    }

    #[test]
    fn vector_reduction_gets_horizontal_liveout() {
        let mut b = LoopBuilder::new("dot");
        b.allow_reassoc(true);
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let s = b.reduce_add(lx);
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let t = transform(&l, &m, &vec![true; l.ops.len()]);
        let lo = &t.looop.live_outs[0];
        assert_eq!(lo.horizontal, Some(OpKind::Add));
        assert_eq!(lo.op, t.vector_value_of[s.index()].unwrap());
        let red = &t.looop.ops[lo.op.index()];
        assert!(red.is_reduction);
        assert_eq!(red.operands[0], Operand::carried(lo.op, 1));
    }

    #[test]
    fn free_comm_produces_no_transfer_ops() {
        let l = daxpy();
        let m = MachineConfig::figure1();
        let mut part = vec![false; l.ops.len()];
        part[0] = true; // one load vectorized, consumers scalar
        let t = transform(&l, &m, &part);
        assert_eq!(t.transfer_ops, 0);
    }

    #[test]
    fn iv_operands_rescale_per_lane() {
        let mut b = LoopBuilder::new("iv");
        let x = b.array("x", ScalarType::I64, 64);
        let iv = b.bin(
            OpKind::Add,
            ScalarType::I64,
            Operand::iv(),
            Operand::ConstI(10),
        );
        b.store(x, 1, 0, iv);
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let t = transform(&l, &m, &vec![false; l.ops.len()]);
        let lanes = &t.scalar_copies[iv.index()];
        let o0 = &t.looop.ops[lanes[0].index()].operands[0];
        let o1 = &t.looop.ops[lanes[1].index()].operands[0];
        assert_eq!(*o0, Operand::Iv { scale: 2, offset: 0 });
        assert_eq!(*o1, Operand::Iv { scale: 2, offset: 1 });
    }

    #[test]
    fn carried_scalar_use_crosses_lanes() {
        // y[i] = x[i] - x[i-1]-value (register-carried, distance 1), all
        // scalar.
        let mut b = LoopBuilder::new("diff");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let d = b.bin(
            OpKind::Sub,
            ScalarType::F64,
            Operand::def(lx),
            Operand::carried(lx, 1),
        );
        b.store(y, 1, 0, d);
        let l = b.finish();
        let mut m = MachineConfig::paper_default();
        m.alignment = AlignmentPolicy::AssumeAligned;
        let t = transform(&l, &m, &vec![false; l.ops.len()]);
        let load_lanes = &t.scalar_copies[lx.index()];
        let sub_lanes = &t.scalar_copies[d.index()];
        // Lane 0's carried operand: lane k-1 at distance 1.
        let s0 = &t.looop.ops[sub_lanes[0].index()];
        assert_eq!(s0.operands[1], Operand::carried(load_lanes[1], 1));
        // Lane 1's carried operand: lane 0 of the same iteration.
        let s1 = &t.looop.ops[sub_lanes[1].index()];
        assert_eq!(s1.operands[1], Operand::def(load_lanes[0]));
    }
}
