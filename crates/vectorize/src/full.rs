//! Full vectorization: vectorize every legal operation, keep the loop
//! intact (paper §4.1, the "full" technique).

use crate::neighbor::apply_neighbor_rule;
use sv_analysis::{vectorizable_ops, DepGraph};
use sv_ir::Loop;

/// The partition the full vectorizer chooses: every operation that is
/// legal for vector length `vl` *and* has at least one legal dataflow
/// neighbour goes to the vector partition; the rest is unrolled scalar.
pub fn full_vectorization_partition(l: &Loop, g: &DepGraph, vl: u32) -> Vec<bool> {
    let statuses = vectorizable_ops(l, g, vl);
    apply_neighbor_rule(l, g, &statuses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    #[test]
    fn dot_product_vectorizes_all_but_reduction() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let m = b.fmul(lx, ly);
        let s = b.reduce_add(m);
        let l = b.finish();
        let g = DepGraph::build(&l);
        let part = full_vectorization_partition(&l, &g, 2);
        assert!(part[lx.index()] && part[ly.index()] && part[m.index()]);
        assert!(!part[s.index()]);
    }
}
