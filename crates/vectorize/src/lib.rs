//! # sv-vectorize — vectorizing loop transformations
//!
//! The code-generation side of the paper: given a *partition* of a loop's
//! operations between scalar and vector resources, [`transform`] produces
//! the transformed loop —
//!
//! * operations in the vector partition become vector opcodes over `k`
//!   original iterations;
//! * scalar operations are emitted `k` times (one per lane) so their work
//!   output matches the vector operations;
//! * explicit scalar↔vector **transfer operations** (stores and loads
//!   through iteration-private communication slots) are generated for every
//!   dataflow edge that crosses the partition, one transfer per operand
//!   regardless of its consumer count;
//! * misaligned vector memory operations are lowered with **merge**
//!   operations on the dedicated merge unit (one per access in steady
//!   state, modeling previous-iteration reuse);
//! * operations are emitted in a dependence-respecting order (the
//!   topological SCC order the paper describes);
//! * the loop's iteration scale is multiplied by `k`; remainder iterations
//!   fall to a cleanup loop built by the pipeline.
//!
//! On top of the transformer, the crate implements the two baseline
//! vectorizers the paper compares against:
//!
//! * [`full_vectorization_partition`] — vectorize *every* legal operation
//!   (subject to the has-a-vectorizable-neighbour profitability rule the
//!   paper applies), keeping the loop intact;
//! * [`traditional_vectorize`] — Allen–Kennedy loop distribution with
//!   typed greedy fusion and scalar expansion through memory.

//!
//! Each transformation comes in two flavours: a panicking one (the
//! historical API, still what the tests' failure-injection harness
//! exercises) and a fallible `try_*` twin returning a [`TransformError`],
//! which the `sv-core` compilation driver uses to degrade gracefully.

mod error;
mod full;
mod neighbor;
mod traditional;
mod transform;
mod widened;

pub use error::TransformError;
pub use full::full_vectorization_partition;
pub use neighbor::apply_neighbor_rule;
pub use traditional::{traditional_vectorize, try_traditional_vectorize, DistributedLoops};
pub use transform::{transform, try_transform, Transformed};
pub use widened::{try_widened_window_transform, widened_window_transform};
