//! Widened scheduling windows — the paper's §6 future-work extension.
//!
//! Instead of unrolling by exactly the vector length and splitting
//! *operations* between partitions, unroll by a larger factor `u` and
//! assign *whole iterations*: iterations `u·i .. u·i+k` execute as one
//! vector instance, iterations `u·i+k .. u·i+u` as scalar lanes. Because
//! each original iteration runs entirely on one set of resources, **no
//! scalar↔vector communication is ever needed** — the extension's selling
//! point. The drawback the paper calls out is alignment: with `u` not a
//! multiple of `k`, the vector references alternate alignment from
//! iteration to iteration and must always be treated as misaligned.
//!
//! The transformation applies only to loops with no loop-carried
//! dependences shorter than the window (the paper's "in the absence of
//! loop-carried dependences"): every operation legally vectorizable, no
//! carried register operands, and no carried memory dependence of
//! distance < `u`.

use crate::error::TransformError;
use sv_analysis::{vectorizable_ops, DepGraph};
use sv_ir::{
    CarriedInit, Loop, MemRef, OpId, OpKind, Opcode, Operand, Operation, VectorForm,
};
use sv_machine::MachineConfig;

/// The widened-window transform of `src` with unroll factor `unroll`
/// (`unroll > vector_length`), or `None` when the loop is ineligible.
///
/// The result covers `unroll` original iterations per loop iteration:
/// one vector instance of every operation (iterations `0..k` of the
/// window) followed by `unroll − k` scalar instances, with no transfer
/// operations. Vector memory references are lowered as misaligned (merge
/// on the merge unit) because the window size breaks alignment, per the
/// paper's analysis.
pub fn widened_window_transform(
    src: &Loop,
    m: &MachineConfig,
    unroll: u32,
) -> Option<Loop> {
    match try_widened_window_transform(src, m, unroll) {
        Ok(r) => r,
        Err(e) => std::panic::panic_any(e.to_string()),
    }
}

/// Fallible [`widened_window_transform`]: `Ok(None)` when the loop is
/// ineligible, `Err` when the emitted loop fails IR verification (an
/// internal bug, reported with a dump).
///
/// # Errors
///
/// Returns [`TransformError::InvalidOutput`] if the transformed loop does
/// not verify.
pub fn try_widened_window_transform(
    src: &Loop,
    m: &MachineConfig,
    unroll: u32,
) -> Result<Option<Loop>, TransformError> {
    let k = m.vector_length;
    assert!(unroll > k, "window must exceed the vector length");
    let g = DepGraph::build(src);

    // Eligibility: fully data parallel at window granularity.
    let statuses = vectorizable_ops(src, &g, k);
    if !statuses.iter().all(|s| s.is_vectorizable()) {
        return Ok(None);
    }
    for op in &src.ops {
        if op.def_uses().any(|(_, d)| d >= 1) {
            return Ok(None); // carried register state crosses window lanes
        }
    }
    if g.edges().iter().any(|e| e.is_mem && (e.star || (1..unroll).contains(&e.distance))) {
        return Ok(None); // a carried memory dependence shorter than the window
    }

    let mut out = Loop::new(format!("{}.w{unroll}", src.name));
    out.arrays = src.arrays.clone();
    out.live_ins = src.live_ins.clone();
    out.trip = src.trip;
    out.invocations = src.invocations;
    out.allow_reassoc = src.allow_reassoc;
    out.iter_scale = src.iter_scale * unroll;
    out.vector_width = k;

    // Vector instances first (window lanes 0..k), in program order.
    let mut vec_id = vec![OpId(0); src.ops.len()];
    for op in &src.ops {
        let mut mem = None;
        let mut merged_value: Option<OpId> = None;
        if let Some(r) = &op.mem {
            debug_assert_eq!(r.stride, 1, "vectorizable refs are unit stride");
            mem = Some(MemRef {
                array: r.array,
                stride: i64::from(unroll),
                offset: r.offset,
                width: k,
            });
        }
        let vopc = op.opcode.with_form(VectorForm::Vector);
        match op.opcode.kind {
            OpKind::Load => {
                let load = out.push_op(Operation {
                    id: OpId(0),
                    opcode: vopc,
                    operands: vec![],
                    mem,
                    is_reduction: false,
                    carried_init: op.carried_init,
                });
                // Misaligned by construction: realign on the merge unit.
                let merge = out.push_op(Operation {
                    id: OpId(0),
                    opcode: Opcode::vector(OpKind::Merge, op.opcode.ty),
                    operands: vec![Operand::def(load)],
                    mem: None,
                    is_reduction: false,
                    carried_init: op.carried_init,
                });
                merged_value = Some(merge);
            }
            OpKind::Store => {
                let value = map_vec(&op.operands[0], &vec_id);
                let merge = out.push_op(Operation {
                    id: OpId(0),
                    opcode: Opcode::vector(OpKind::Merge, op.opcode.ty),
                    operands: vec![value],
                    mem: None,
                    is_reduction: false,
                    carried_init: CarriedInit::Zero,
                });
                out.push_op(Operation {
                    id: OpId(0),
                    opcode: vopc,
                    operands: vec![Operand::def(merge)],
                    mem,
                    is_reduction: false,
                    carried_init: CarriedInit::Zero,
                });
            }
            _ => {
                let operands = op
                    .operands
                    .iter()
                    .map(|o| map_vec_iv(o, &vec_id, unroll, 0))
                    .collect();
                let id = out.push_op(Operation {
                    id: OpId(0),
                    opcode: vopc,
                    operands,
                    mem: None,
                    is_reduction: false,
                    carried_init: op.carried_init,
                });
                merged_value = Some(id);
            }
        }
        if let Some(v) = merged_value {
            vec_id[op.id.index()] = v;
        }
    }

    // Scalar instances for window lanes k..unroll, iteration-major.
    let mut lane_id = vec![vec![OpId(0); src.ops.len()]; (unroll - k) as usize];
    for lane in k..unroll {
        let li = (lane - k) as usize;
        for op in &src.ops {
            let mem = op.mem.as_ref().map(|r| MemRef {
                array: r.array,
                stride: r.stride * i64::from(unroll),
                offset: r.offset + r.stride * i64::from(lane),
                width: 1,
            });
            let operands = op
                .operands
                .iter()
                .map(|o| match *o {
                    Operand::Def { op: p, distance } => {
                        debug_assert_eq!(distance, 0);
                        Operand::def(lane_id[li][p.index()])
                    }
                    Operand::Iv { scale, offset } => Operand::Iv {
                        scale: scale * i64::from(unroll),
                        offset: offset + scale * i64::from(lane),
                    },
                    other => other,
                })
                .collect();
            let id = out.push_op(Operation {
                id: OpId(0),
                opcode: op.opcode,
                operands,
                mem,
                is_reduction: false,
                carried_init: op.carried_init,
            });
            if op.defines_value() {
                lane_id[li][op.id.index()] = id;
            }
        }
    }

    for lo in &src.live_outs {
        out.live_outs.push(sv_ir::LiveOut {
            name: lo.name.clone(),
            op: lane_id[(unroll - k - 1) as usize][lo.op.index()],
            horizontal: None,
            combine: lo.combine,
        });
    }

    if let Err(e) = out.verify() {
        return Err(TransformError::InvalidOutput {
            transform: "widened-window",
            error: e,
            dump: out.to_string(),
        });
    }
    Ok(Some(out))
}

fn map_vec(o: &Operand, vec_id: &[OpId]) -> Operand {
    match *o {
        Operand::Def { op, distance } => {
            debug_assert_eq!(distance, 0);
            Operand::def(vec_id[op.index()])
        }
        other => other,
    }
}

fn map_vec_iv(o: &Operand, vec_id: &[OpId], unroll: u32, lane_base: i64) -> Operand {
    match *o {
        Operand::Def { .. } => map_vec(o, vec_id),
        Operand::Iv { scale, offset } => Operand::Iv {
            scale: scale * i64::from(unroll),
            offset: offset + scale * lane_base,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    fn axpy() -> Loop {
        let mut b = LoopBuilder::new("axpy");
        b.trip(99);
        let x = b.array("x", ScalarType::F64, 512);
        let y = b.array("y", ScalarType::F64, 512);
        let a = b.live_in("a", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let ax = b.fmul_li(a, lx);
        let s = b.fadd(ax, ly);
        b.store(y, 1, 0, s);
        b.finish()
    }

    #[test]
    fn widened_axpy_structure() {
        let m = MachineConfig::paper_default();
        let w = widened_window_transform(&axpy(), &m, 3).expect("eligible");
        assert_eq!(w.iter_scale, 3);
        // Vector instances: 2 vloads + 2 merges + vmul + vadd + merge +
        // vstore = 8; scalar lane: 5 ops × 1 lane = 5.
        assert_eq!(w.ops.len(), 13);
        // No communication ops: every load/store addresses a program array.
        assert!(w.arrays.iter().all(|a| !a.iteration_private));
        // Vector refs advance 3 elements per iteration, cover 2.
        let vload = w.ops.iter().find(|o| o.opcode.is_vector() && o.mem.is_some()).unwrap();
        assert_eq!((vload.mem_ref().stride, vload.mem_ref().width), (3, 2));
        // Scalar lane refs sit at window offset 2.
        let slload = w
            .ops
            .iter()
            .find(|o| !o.opcode.is_vector() && o.opcode.kind == OpKind::Load)
            .unwrap();
        assert_eq!(slload.mem_ref().offset, 2);
    }

    #[test]
    fn reductions_are_ineligible() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert!(widened_window_transform(&l, &m, 3).is_none());
    }

    #[test]
    fn short_memory_recurrences_are_ineligible() {
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 2, n); // distance 2 < window 3
        let l = b.finish();
        let m = MachineConfig::paper_default();
        assert!(widened_window_transform(&l, &m, 3).is_none());
        // Distance ≥ the window is fine.
        let mut b = LoopBuilder::new("rec4");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 4, n);
        let l = b.finish();
        assert!(widened_window_transform(&l, &m, 3).is_some());
    }
}
