//! Additional loop-transformer behaviour tests, including vector length 4.

use sv_ir::{Loop, LoopBuilder, OpKind, Operand, ScalarType, VectorForm};
use sv_machine::{AlignmentPolicy, MachineConfig};
use sv_vectorize::{full_vectorization_partition, traditional_vectorize, transform};

fn aligned_machine(vl: u32) -> MachineConfig {
    let mut m = MachineConfig::paper_default();
    m.alignment = AlignmentPolicy::AssumeAligned;
    m.vector_length = vl;
    m
}

fn daxpy() -> Loop {
    let mut b = LoopBuilder::new("daxpy");
    let x = b.array("x", ScalarType::F64, 128);
    let y = b.array("y", ScalarType::F64, 128);
    let a = b.live_in("a", ScalarType::F64);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let ax = b.fmul_li(a, lx);
    let s = b.fadd(ax, ly);
    b.store(y, 1, 0, s);
    b.finish()
}

#[test]
fn vl4_unroll_produces_four_lanes() {
    let l = daxpy();
    let m = aligned_machine(4);
    let t = transform(&l, &m, &vec![false; l.ops.len()]);
    assert_eq!(t.looop.iter_scale, 4);
    assert_eq!(t.looop.ops.len(), l.ops.len() * 4);
    // Lane 3 loads x[4i+3].
    let lanes = &t.scalar_copies[0];
    assert_eq!(lanes.len(), 4);
    let last = &t.looop.ops[lanes[3].index()];
    assert_eq!((last.mem_ref().stride, last.mem_ref().offset), (4, 3));
}

#[test]
fn vl4_vectorization_widens_refs() {
    let l = daxpy();
    let m = aligned_machine(4);
    let t = transform(&l, &m, &vec![true; l.ops.len()]);
    assert_eq!(t.looop.ops.len(), l.ops.len());
    let vload = &t.looop.ops[0];
    assert_eq!((vload.mem_ref().stride, vload.mem_ref().width), (4, 4));
}

#[test]
fn vl4_transfers_have_four_lane_stores() {
    let l = daxpy();
    let mut m = aligned_machine(4);
    m.alignment = AlignmentPolicy::AssumeAligned;
    // Vectorize only the multiply: its scalar operand (load x) needs an
    // S→V transfer of 4 stores + 1 vload; its consumer (add) a V→S
    // transfer of 1 vstore + 4 loads.
    let mut part = vec![false; l.ops.len()];
    part[2] = true;
    let t = transform(&l, &m, &part);
    assert_eq!(t.transfer_ops, (4 + 1) * 2);
    let comm = t.looop.arrays.iter().filter(|a| a.iteration_private).count();
    assert_eq!(comm, 2);
}

#[test]
fn misaligned_store_chains_merge_before_store() {
    let l = daxpy();
    let m = MachineConfig::paper_default(); // AssumeMisaligned
    let t = transform(&l, &m, &vec![true; l.ops.len()]);
    let vstore = t
        .looop
        .ops
        .iter()
        .find(|o| o.opcode.kind == OpKind::Store)
        .expect("vector store");
    // The store's value operand is a merge.
    let (src, _) = vstore.operands[0].def_op().unwrap();
    assert_eq!(t.looop.ops[src.index()].opcode.kind, OpKind::Merge);
}

#[test]
fn carried_distance_two_vector_consumer() {
    // u[i] = x[i] * x-value-from-2-back: distance 2 == VL, so the consumer
    // can be vectorized reading the producer's previous vector.
    let mut b = LoopBuilder::new("carry2");
    let x = b.array("x", ScalarType::F64, 128);
    let u = b.array("u", ScalarType::F64, 128);
    let lx = b.load(x, 1, 0);
    let mu = b.bin(
        OpKind::Mul,
        ScalarType::F64,
        Operand::def(lx),
        Operand::carried(lx, 2),
    );
    b.store(u, 1, 0, mu);
    let l = b.finish();
    let m = aligned_machine(2);
    let t = transform(&l, &m, &vec![true; l.ops.len()]);
    let vmul = t.vector_value_of[mu.index()].unwrap();
    let op = &t.looop.ops[vmul.index()];
    // The carried operand becomes distance 1 in transformed iterations.
    assert!(op
        .operands
        .iter()
        .any(|o| matches!(o.def_op(), Some((_, 1)))));
}

#[test]
fn traditional_expansion_array_matches_producer_init() {
    // A multiplicative recurrence's value crossing a distribution boundary
    // must pre-fill its expansion array with ones, not zeros.
    let mut b = LoopBuilder::new("mulrec");
    let x = b.array("x", ScalarType::F64, 128);
    let y = b.array("y", ScalarType::F64, 128);
    let lx = b.load(x, 1, 0);
    let r = b.recurrence(OpKind::Mul, ScalarType::F64, lx);
    // A parallel consumer reads r from 1 iteration back, forcing expansion
    // once the loop distributes.
    let c = b.bin(
        OpKind::Add,
        ScalarType::F64,
        Operand::def(lx),
        Operand::carried(r, 2),
    );
    b.store(y, 1, 0, c);
    let l = b.finish();
    let m = aligned_machine(2);
    let d = traditional_vectorize(&l, &m);
    // The recurrence is op %1, so its temporary is named `expand1`; the
    // load's temporary (if any) keeps the additive zero fill.
    let expand = d
        .loops
        .iter()
        .flat_map(|dl| dl.scalar_form.arrays.iter())
        .find(|a| a.name == "expand1")
        .expect("expansion array for the recurrence");
    assert_eq!(expand.fill, sv_ir::ArrayFill::One);
}

#[test]
fn full_partition_respects_neighbor_rule_transitively() {
    // load → recurrence → store: the load's only consumer is sequential,
    // the store's only producer is sequential ⇒ nothing vectorizes, and
    // full == baseline structure.
    let mut b = LoopBuilder::new("isolated");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let r = b.recurrence(OpKind::Add, ScalarType::F64, lx);
    b.store(y, 1, 0, r);
    let l = b.finish();
    let g = sv_analysis::DepGraph::build(&l);
    let part = full_vectorization_partition(&l, &g, 2);
    assert!(part.iter().all(|&v| !v));
    let m = aligned_machine(2);
    let t = transform(&l, &m, &part);
    assert!(t.looop.ops.iter().all(|o| o.opcode.form == VectorForm::Scalar));
}

#[test]
fn transform_preserves_trip_metadata() {
    let mut l = daxpy();
    l.trip = sv_ir::TripCount::known(96);
    l.invocations = 7;
    l.allow_reassoc = true;
    let m = aligned_machine(2);
    let t = transform(&l, &m, &vec![true; l.ops.len()]);
    assert_eq!(t.looop.trip, l.trip);
    assert_eq!(t.looop.invocations, 7);
    assert!(t.looop.allow_reassoc);
    assert_eq!(t.looop.executed_iterations(), 48);
    assert_eq!(t.looop.remainder_iterations(), 0);
}
