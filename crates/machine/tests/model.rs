//! Machine-model behaviour tests beyond the inline unit tests.

use sv_ir::{OpKind, Opcode, ScalarType};
use sv_machine::{
    AlignmentPolicy, CommModel, MachineConfig, ResourceClass, ResourceModel,
    TransferDirection,
};

#[test]
fn paper_default_matches_table1_resources() {
    let m = MachineConfig::paper_default();
    let pool = m.resource_pool();
    assert_eq!(pool.capacity(ResourceClass::Issue), 6);
    assert_eq!(pool.capacity(ResourceClass::Int), 4);
    assert_eq!(pool.capacity(ResourceClass::Fp), 2);
    assert_eq!(pool.capacity(ResourceClass::Mem), 2);
    assert_eq!(pool.capacity(ResourceClass::Branch), 1);
    assert_eq!(pool.capacity(ResourceClass::Vector), 1);
    assert_eq!(pool.capacity(ResourceClass::Merge), 1);
    assert_eq!(pool.capacity(ResourceClass::VectorIssue), 0); // unlimited
    assert_eq!(pool.capacity(ResourceClass::Select), 1);
    assert_eq!(pool.len(), 18);
    assert_eq!(m.alignment, AlignmentPolicy::AssumeMisaligned);
    assert_eq!(m.comm, CommModel::ThroughMemory);
    assert_eq!(m.model, ResourceModel::Full);
}

#[test]
fn scalar_copy_routes_by_type() {
    let m = MachineConfig::paper_default();
    let icopy = m.requirements(Opcode::scalar(OpKind::Copy, ScalarType::I64));
    assert!(icopy.iter().any(|r| r.class == ResourceClass::Int));
    let fcopy = m.requirements(Opcode::scalar(OpKind::Copy, ScalarType::F64));
    assert!(fcopy.iter().any(|r| r.class == ResourceClass::Fp));
}

#[test]
fn vector_copy_routes_to_vector_unit() {
    let m = MachineConfig::paper_default();
    let vcopy = m.requirements(Opcode::vector(OpKind::Copy, ScalarType::F64));
    assert!(vcopy.iter().any(|r| r.class == ResourceClass::Vector));
}

#[test]
fn integer_divide_reserves_full_latency() {
    let m = MachineConfig::paper_default();
    let idiv = m.requirements(Opcode::scalar(OpKind::Div, ScalarType::I64));
    let int = idiv.iter().find(|r| r.class == ResourceClass::Int).unwrap();
    assert_eq!(int.cycles, 36);
}

#[test]
fn pipelined_divide_option() {
    let mut m = MachineConfig::paper_default();
    m.non_pipelined_divide = false;
    let fdiv = m.requirements(Opcode::scalar(OpKind::Div, ScalarType::F64));
    let fp = fdiv.iter().find(|r| r.class == ResourceClass::Fp).unwrap();
    assert_eq!(fp.cycles, 1);
    // Latency stays 32 either way.
    assert_eq!(m.latency(Opcode::scalar(OpKind::Div, ScalarType::F64)), 32);
}

#[test]
fn sqrt_shares_divide_latency() {
    let m = MachineConfig::paper_default();
    assert_eq!(
        m.latency(Opcode::scalar(OpKind::Sqrt, ScalarType::F64)),
        m.latency(Opcode::scalar(OpKind::Div, ScalarType::F64))
    );
    assert_eq!(
        m.latency(Opcode::scalar(OpKind::Sqrt, ScalarType::I64)),
        m.latency(Opcode::scalar(OpKind::Div, ScalarType::I64))
    );
}

#[test]
fn pack_and_extract_are_free() {
    let m = MachineConfig::paper_default();
    for opc in [
        Opcode::vector(OpKind::Pack, ScalarType::F64),
        Opcode::scalar(OpKind::Extract, ScalarType::F64),
    ] {
        assert!(m.requirements(opc).is_empty());
        assert_eq!(m.latency(opc), 0);
    }
}

#[test]
fn transfer_sequences_scale_with_vector_length() {
    for k in [2u32, 4, 8] {
        let s2v = CommModel::ThroughMemory.transfer_opcodes(
            TransferDirection::ScalarToVector,
            ScalarType::F64,
            k,
        );
        assert_eq!(s2v.len() as u32, k + 1);
        let v2s = CommModel::ThroughMemory.transfer_opcodes(
            TransferDirection::VectorToScalar,
            ScalarType::I64,
            k,
        );
        assert_eq!(v2s.len() as u32, k + 1);
        // All transfer instructions are memory operations: they compete
        // with the loop's own loads/stores, the paper's key cost point.
        assert!(s2v.iter().chain(&v2s).all(|o| o.kind.is_mem()));
    }
}

#[test]
fn figure1_toy_counts_only_issue_slots() {
    let m = MachineConfig::figure1();
    // Four scalar ops on 3 slots can never beat ceil(4/3) = 2 rows; the
    // requirements confirm scalar ops need exactly one issue slot.
    for kind in [OpKind::Load, OpKind::Store, OpKind::Mul, OpKind::Add] {
        let reqs = m.requirements(Opcode::scalar(kind, ScalarType::F64));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].class, ResourceClass::Issue);
        assert_eq!(reqs[0].cycles, 1);
    }
    assert!(m.loop_overhead().is_empty());
    assert_eq!(m.loop_setup_cycles, 0);
}

#[test]
fn overhead_uses_branch_and_int() {
    let m = MachineConfig::paper_default();
    let oh = m.loop_overhead();
    assert_eq!(oh.len(), 2);
    assert!(oh[0].iter().any(|r| r.class == ResourceClass::Branch));
    assert!(oh[1].iter().any(|r| r.class == ResourceClass::Int));
    assert!(oh.iter().all(|reqs| reqs.iter().any(|r| r.class == ResourceClass::Issue)));
}
