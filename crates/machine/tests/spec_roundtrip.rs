//! Spec round-trip property tests: `from_spec(to_spec(m)) == m` for the
//! builtins and a seeded population of randomized configurations, plus
//! canonical-hash invariance under spec reformatting.

use sv_machine::{AlignmentPolicy, CommModel, MachineConfig, ResourceModel};

/// Minimal deterministic generator (SplitMix64 — same recurrence the
/// workspace's `sv_workloads::SmallRng` uses; duplicated here because
/// `sv-machine` sits below `sv-workloads` in the crate graph).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next() % u64::from(hi - lo + 1)) as u32
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A randomized but structurally valid machine configuration.
fn random_machine(seed: u64) -> MachineConfig {
    let mut r = Rng(seed);
    let mut m = MachineConfig::paper_default();
    m.name = format!("rand-{seed}");
    m.issue_width = r.range(1, 16);
    m.int_units = r.range(1, 8);
    m.fp_units = r.range(1, 8);
    m.mem_units = r.range(1, 8);
    m.branch_units = r.range(1, 4);
    m.vector_units = r.range(1, 4);
    m.merge_units = r.range(0, 4);
    m.select_units = r.range(0, 4);
    m.vector_issue_limit = if r.flag() { Some(r.range(1, 4)) } else { None };
    m.vector_length = 2 << r.range(0, 3); // 2, 4, 8, 16
    m.lat.int_alu = r.range(1, 4);
    m.lat.int_mul = r.range(1, 8);
    m.lat.int_div = r.range(1, 64);
    m.lat.fp_alu = r.range(1, 8);
    m.lat.fp_mul = r.range(1, 8);
    m.lat.fp_div = r.range(1, 64);
    m.lat.load = r.range(1, 8);
    m.lat.store = r.range(1, 4);
    m.lat.branch = r.range(1, 4);
    m.lat.merge = r.range(1, 4);
    m.lat.select = r.range(1, 4);
    m.regs.scalar_int = r.range(16, 256);
    m.regs.scalar_fp = r.range(16, 256);
    m.regs.vector_int = r.range(8, 128);
    m.regs.vector_fp = r.range(8, 128);
    m.regs.predicates = r.range(8, 128);
    m.comm = if r.flag() { CommModel::ThroughMemory } else { CommModel::Free };
    m.alignment = match r.range(0, 2) {
        0 => AlignmentPolicy::AssumeMisaligned,
        1 => AlignmentPolicy::AssumeAligned,
        _ => AlignmentPolicy::UseStatic,
    };
    m.model = if r.flag() { ResourceModel::Full } else { ResourceModel::SlotsOnly };
    m.count_loop_overhead = r.flag();
    m.non_pipelined_divide = r.flag();
    m.loop_setup_cycles = u64::from(r.range(0, 32));
    m
}

#[test]
fn builtins_round_trip_through_canonical_spec() {
    for m in [MachineConfig::paper_default(), MachineConfig::figure1()] {
        let back = MachineConfig::from_spec(&m.to_spec()).expect("canonical spec parses");
        assert_eq!(back, m, "round-trip law violated for builtin `{}`", m.name);
        assert_eq!(back.canonical_hash(), m.canonical_hash());
    }
}

#[test]
fn randomized_configs_round_trip_through_canonical_spec() {
    for seed in 0..100u64 {
        let m = random_machine(seed);
        let text = m.to_spec();
        let back = MachineConfig::from_spec(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical spec must parse: {e}\n{text}"));
        assert_eq!(back, m, "seed {seed}: from_spec(to_spec(m)) != m");
        // Canonicalization is idempotent, so equal configs always render
        // byte-identical canonical text (and hash identically).
        assert_eq!(back.to_spec(), text, "seed {seed}");
        assert_eq!(back.canonical_hash(), m.canonical_hash(), "seed {seed}");
    }
}

#[test]
fn example_spec_files_parse_with_defaulted_select_and_round_trip() {
    // Backward compatibility: every committed spec file predating (or not
    // mentioning) the `select_units` / `lat.select` keys must still parse,
    // receive the paper defaults for them, and satisfy the round-trip law.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/machines");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/machines must exist")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            matches!(p.extension().and_then(|e| e.to_str()), Some("spec") | Some("mspec"))
        })
        .collect();
    paths.sort();
    assert!(paths.len() >= 6, "expected the committed machine specs in {dir:?}");
    let defaults = MachineConfig::paper_default();
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let m = MachineConfig::from_spec(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if !text.contains("select_units") {
            assert_eq!(m.select_units, defaults.select_units, "{}", path.display());
        }
        if !text.contains("lat.select") {
            assert_eq!(m.lat.select, defaults.lat.select, "{}", path.display());
        }
        let back = MachineConfig::from_spec(&m.to_spec())
            .unwrap_or_else(|e| panic!("{}: canonical spec must parse: {e}", path.display()));
        assert_eq!(back, m, "round-trip law violated for {}", path.display());
    }
}

#[test]
fn distinct_randomized_configs_hash_distinctly() {
    let mut hashes = std::collections::HashSet::new();
    for seed in 0..100u64 {
        hashes.insert(random_machine(seed).canonical_hash().0);
    }
    // Names differ per seed, so all 100 must be distinct.
    assert_eq!(hashes.len(), 100);
}

#[test]
fn reformatted_spec_texts_parse_equal_and_hash_equal() {
    for seed in 0..20u64 {
        let m = random_machine(seed);
        let canonical = m.to_spec();
        // Reformat: reverse key order, sprinkle comments and whitespace.
        let mut lines: Vec<String> = canonical
            .lines()
            .map(|l| format!("   {} # reformatted", l.replace(" = ", "=")))
            .collect();
        lines.reverse();
        let ugly = format!("# header comment\n\n{}\n\n# trailing\n", lines.join("\n"));
        let back = MachineConfig::from_spec(&ugly)
            .unwrap_or_else(|e| panic!("seed {seed}: reformatted spec must parse: {e}"));
        assert_eq!(back, m, "seed {seed}: formatting must not change the parse");
        assert_eq!(back.canonical_hash(), m.canonical_hash(), "seed {seed}");
    }
}
