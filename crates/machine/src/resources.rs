//! Compiler-visible resource classes and instances.

use std::fmt;

/// A class of identical machine resources.
///
/// Each class has a per-cycle capacity (its instance count); an operation
/// reserves one instance of each class it requires, for one or more cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceClass {
    /// Instruction issue slot (one per instruction per cycle).
    Issue,
    /// Scalar integer unit.
    Int,
    /// Scalar floating-point unit.
    Fp,
    /// Load/store unit — shared between scalar and vector memory
    /// operations, as on the paper's machine.
    Mem,
    /// Branch unit (loop back-branch).
    Branch,
    /// Vector arithmetic unit (shared int/fp).
    Vector,
    /// Vector merge unit (realignment of misaligned vector memory ops).
    Merge,
    /// Artificial class limiting total vector instructions per cycle; used
    /// by the Figure 1 toy machine ("one vector instruction each cycle").
    VectorIssue,
    /// Conditional-move (select) unit — shared between scalar and vector
    /// select operations, like [`ResourceClass::Mem`] is for memory ops.
    Select,
}

impl ResourceClass {
    /// All classes, in a fixed display order.
    pub const ALL: [ResourceClass; 9] = [
        ResourceClass::Issue,
        ResourceClass::Int,
        ResourceClass::Fp,
        ResourceClass::Mem,
        ResourceClass::Branch,
        ResourceClass::Vector,
        ResourceClass::Merge,
        ResourceClass::VectorIssue,
        ResourceClass::Select,
    ];
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceClass::Issue => "issue",
            ResourceClass::Int => "int",
            ResourceClass::Fp => "fp",
            ResourceClass::Mem => "mem",
            ResourceClass::Branch => "branch",
            ResourceClass::Vector => "vector",
            ResourceClass::Merge => "merge",
            ResourceClass::VectorIssue => "vissue",
            ResourceClass::Select => "select",
        };
        write!(f, "{s}")
    }
}

/// One concrete unit of a [`ResourceClass`]: `(class, index)` with
/// `index < capacity(class)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceInstance {
    /// The class this instance belongs to.
    pub class: ResourceClass,
    /// Index within the class.
    pub index: u32,
}

impl fmt::Display for ResourceInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.index)
    }
}

/// A reservation requirement: one instance of `class` for `cycles`
/// consecutive cycles (non-pipelined units reserve for more than one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Required class.
    pub class: ResourceClass,
    /// Consecutive cycles reserved.
    pub cycles: u32,
}

impl Reservation {
    /// A one-cycle reservation of `class`.
    pub fn one(class: ResourceClass) -> Reservation {
        Reservation { class, cycles: 1 }
    }
}

/// The set of resource instances of one machine configuration, in a stable
/// global order, with dense instance ids for fast indexed tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourcePool {
    counts: Vec<(ResourceClass, u32)>,
    /// flat[i] = instance with dense id i
    flat: Vec<ResourceInstance>,
    /// start offset of each class in `flat`, parallel to `counts`
    offsets: Vec<usize>,
}

impl ResourcePool {
    /// Build a pool from `(class, capacity)` pairs; zero-capacity classes
    /// are dropped.
    pub fn new(counts: impl IntoIterator<Item = (ResourceClass, u32)>) -> ResourcePool {
        let counts: Vec<_> = counts.into_iter().filter(|&(_, n)| n > 0).collect();
        let mut flat = Vec::new();
        let mut offsets = Vec::with_capacity(counts.len());
        for &(class, n) in &counts {
            offsets.push(flat.len());
            for index in 0..n {
                flat.push(ResourceInstance { class, index });
            }
        }
        ResourcePool { counts, flat, offsets }
    }

    /// Total number of instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// True when the pool has no instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// All instances in dense-id order.
    #[inline]
    pub fn instances(&self) -> &[ResourceInstance] {
        &self.flat
    }

    /// Dense id of an instance.
    ///
    /// # Panics
    ///
    /// Panics when the instance's class is not in the pool or its index is
    /// out of range.
    pub fn dense_id(&self, inst: ResourceInstance) -> usize {
        let slot = self
            .counts
            .iter()
            .position(|&(c, _)| c == inst.class)
            .expect("resource class not in pool");
        assert!(inst.index < self.counts[slot].1, "instance index out of range");
        self.offsets[slot] + inst.index as usize
    }

    /// The instances of one class (empty when the class has no capacity).
    pub fn alternatives(&self, class: ResourceClass) -> &[ResourceInstance] {
        match self.counts.iter().position(|&(c, _)| c == class) {
            Some(slot) => {
                let start = self.offsets[slot];
                &self.flat[start..start + self.counts[slot].1 as usize]
            }
            None => &[],
        }
    }

    /// The dense-id range of one class's instances (instances of a class
    /// are contiguous, so `alternative_range(c)` zips with
    /// [`ResourcePool::alternatives`]). Empty range when the class has no
    /// capacity.
    pub fn alternative_range(&self, class: ResourceClass) -> std::ops::Range<usize> {
        match self.counts.iter().position(|&(c, _)| c == class) {
            Some(slot) => {
                let start = self.offsets[slot];
                start..start + self.counts[slot].1 as usize
            }
            None => 0..0,
        }
    }

    /// Capacity of a class (0 when absent).
    pub fn capacity(&self, class: ResourceClass) -> u32 {
        self.counts
            .iter()
            .find(|&&(c, _)| c == class)
            .map_or(0, |&(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ResourcePool {
        ResourcePool::new([
            (ResourceClass::Issue, 3),
            (ResourceClass::Mem, 2),
            (ResourceClass::Vector, 0),
            (ResourceClass::Merge, 1),
        ])
    }

    #[test]
    fn zero_capacity_classes_dropped() {
        let p = pool();
        assert_eq!(p.len(), 6);
        assert_eq!(p.capacity(ResourceClass::Vector), 0);
        assert!(p.alternatives(ResourceClass::Vector).is_empty());
    }

    #[test]
    fn dense_ids_are_contiguous_and_stable() {
        let p = pool();
        for (i, inst) in p.instances().iter().enumerate() {
            assert_eq!(p.dense_id(*inst), i);
        }
    }

    #[test]
    fn alternatives_per_class() {
        let p = pool();
        let mems = p.alternatives(ResourceClass::Mem);
        assert_eq!(mems.len(), 2);
        assert!(mems.iter().all(|m| m.class == ResourceClass::Mem));
        assert_eq!(mems[1].index, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_id_checks_range() {
        pool().dense_id(ResourceInstance { class: ResourceClass::Mem, index: 9 });
    }

    #[test]
    fn reservation_one() {
        let r = Reservation::one(ResourceClass::Fp);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.class, ResourceClass::Fp);
    }

    #[test]
    fn display_instance() {
        let i = ResourceInstance { class: ResourceClass::Mem, index: 1 };
        assert_eq!(i.to_string(), "mem.1");
    }
}
