//! Textual machine descriptions.
//!
//! A small `key = value` format so alternative architectures can be swept
//! from files rather than code — the backend-cost-model story of the paper
//! depends on describing the machine precisely, and Trimaran itself is
//! driven by machine-description files. Unspecified keys inherit from
//! [`MachineConfig::paper_default`].
//!
//! ```text
//! # a wider vector machine
//! name = widevec
//! vector_units = 2
//! merge_units = 2
//! vector_length = 4
//! alignment = aligned
//! ```
//!
//! The format is *canonical-izable*: [`MachineConfig::to_spec`] renders
//! any configuration as a spec listing **every** key in a fixed order,
//! and the round-trip law `from_spec(to_spec(m)) == m` holds for every
//! configuration. Two spec texts that differ only in whitespace,
//! comments, or key order therefore normalize to byte-identical canonical
//! text — which is what [`MachineConfig::canonical_hash`] fingerprints,
//! making machine descriptions safe to use in content-addressed cache
//! keys.

use crate::comm::CommModel;
use crate::config::{AlignmentPolicy, MachineConfig, ResourceModel};
use std::fmt::Write as _;
use sv_ir::{CanonicalHash, CanonicalHasher};

/// Schema tag mixed into every [`MachineConfig::canonical_hash`]; bump if
/// the canonical spec rendering ever changes meaning.
const MACHINE_HASH_SCHEMA: &[u8] = b"sv-machine/spec/v1";

/// A malformed machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

impl MachineConfig {
    /// Parse a machine description, starting from
    /// [`MachineConfig::paper_default`] and overriding the listed keys.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for unknown keys, unparsable values, or a
    /// key listed twice (the error names both line numbers — a silent
    /// last-one-wins would make two visually different specs parse equal
    /// for the wrong reason).
    ///
    /// ```
    /// use sv_machine::MachineConfig;
    ///
    /// let m = MachineConfig::from_spec(
    ///     "name = wide\nissue_width = 8\nvector_length = 4\ncomm = free\n",
    /// )
    /// .unwrap();
    /// assert_eq!(m.issue_width, 8);
    /// assert_eq!(m.vector_length, 4);
    /// ```
    pub fn from_spec(text: &str) -> Result<MachineConfig, SpecError> {
        let mut m = MachineConfig::paper_default();
        let mut seen: Vec<(&str, usize)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let Some((key, value)) = stripped.split_once('=') else {
                return Err(SpecError {
                    line,
                    message: format!("expected `key = value`, got `{stripped}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            if let Some(&(_, first)) = seen.iter().find(|(k, _)| *k == key) {
                return Err(SpecError {
                    line,
                    message: format!(
                        "duplicate key `{key}`: first set on line {first}, set again on line {line}"
                    ),
                });
            }
            let err = |message: String| SpecError { line, message };
            let num = |v: &str| -> Result<u32, SpecError> {
                v.parse()
                    .map_err(|_| err(format!("`{v}` is not a number")))
            };
            let flag = |v: &str| -> Result<bool, SpecError> {
                match v {
                    "true" | "yes" | "on" => Ok(true),
                    "false" | "no" | "off" => Ok(false),
                    _ => Err(err(format!("`{v}` is not a boolean"))),
                }
            };
            match key {
                "name" => m.name = value.to_string(),
                "issue_width" => m.issue_width = num(value)?,
                "int_units" => m.int_units = num(value)?,
                "fp_units" => m.fp_units = num(value)?,
                "mem_units" => m.mem_units = num(value)?,
                "branch_units" => m.branch_units = num(value)?,
                "vector_units" => m.vector_units = num(value)?,
                "merge_units" => m.merge_units = num(value)?,
                "select_units" => m.select_units = num(value)?,
                "vector_length" => m.vector_length = num(value)?,
                "vector_issue_limit" => {
                    m.vector_issue_limit =
                        if value == "none" { None } else { Some(num(value)?) }
                }
                "comm" => {
                    m.comm = match value {
                        "through-memory" => CommModel::ThroughMemory,
                        "free" => CommModel::Free,
                        _ => return Err(err(format!("unknown comm model `{value}`"))),
                    }
                }
                "alignment" => {
                    m.alignment = match value {
                        "misaligned" => AlignmentPolicy::AssumeMisaligned,
                        "aligned" => AlignmentPolicy::AssumeAligned,
                        "static" => AlignmentPolicy::UseStatic,
                        _ => return Err(err(format!("unknown alignment `{value}`"))),
                    }
                }
                "model" => {
                    m.model = match value {
                        "full" => ResourceModel::Full,
                        "slots-only" => ResourceModel::SlotsOnly,
                        _ => {
                            return Err(err(format!(
                                "unknown resource model `{value}` (want `full` or `slots-only`)"
                            )))
                        }
                    }
                }
                "count_loop_overhead" => m.count_loop_overhead = flag(value)?,
                "non_pipelined_divide" => m.non_pipelined_divide = flag(value)?,
                "loop_setup_cycles" => m.loop_setup_cycles = u64::from(num(value)?),
                "lat.int_alu" => m.lat.int_alu = num(value)?,
                "lat.int_mul" => m.lat.int_mul = num(value)?,
                "lat.int_div" => m.lat.int_div = num(value)?,
                "lat.fp_alu" => m.lat.fp_alu = num(value)?,
                "lat.fp_mul" => m.lat.fp_mul = num(value)?,
                "lat.fp_div" => m.lat.fp_div = num(value)?,
                "lat.load" => m.lat.load = num(value)?,
                "lat.store" => m.lat.store = num(value)?,
                "lat.branch" => m.lat.branch = num(value)?,
                "lat.merge" => m.lat.merge = num(value)?,
                "lat.select" => m.lat.select = num(value)?,
                "regs.scalar_int" => m.regs.scalar_int = num(value)?,
                "regs.scalar_fp" => m.regs.scalar_fp = num(value)?,
                "regs.vector_int" => m.regs.vector_int = num(value)?,
                "regs.vector_fp" => m.regs.vector_fp = num(value)?,
                "regs.predicates" => m.regs.predicates = num(value)?,
                other => return Err(err(format!("unknown key `{other}`"))),
            }
            seen.push((key, line));
        }
        if m.vector_length < 2 {
            return Err(SpecError {
                line: 0,
                message: "vector_length must be at least 2".into(),
            });
        }
        Ok(m)
    }

    /// Render this configuration as its **canonical spec text**: every
    /// key the parser knows, in one fixed order, one `key = value` per
    /// line. This is the exact inverse of [`MachineConfig::from_spec`]:
    ///
    /// ```
    /// use sv_machine::MachineConfig;
    ///
    /// for m in [MachineConfig::paper_default(), MachineConfig::figure1()] {
    ///     assert_eq!(MachineConfig::from_spec(&m.to_spec()).unwrap(), m);
    /// }
    /// ```
    ///
    /// Because every field is listed, two configurations are equal if and
    /// only if their canonical spec texts are byte-identical — which makes
    /// this rendering the machine's contribution to content-addressed
    /// cache keys (see [`MachineConfig::canonical_hash`]).
    pub fn to_spec(&self) -> String {
        let mut s = String::with_capacity(640);
        let _ = writeln!(s, "name = {}", self.name);
        let _ = writeln!(s, "issue_width = {}", self.issue_width);
        let _ = writeln!(s, "int_units = {}", self.int_units);
        let _ = writeln!(s, "fp_units = {}", self.fp_units);
        let _ = writeln!(s, "mem_units = {}", self.mem_units);
        let _ = writeln!(s, "branch_units = {}", self.branch_units);
        let _ = writeln!(s, "vector_units = {}", self.vector_units);
        let _ = writeln!(s, "merge_units = {}", self.merge_units);
        let _ = writeln!(s, "select_units = {}", self.select_units);
        match self.vector_issue_limit {
            Some(n) => {
                let _ = writeln!(s, "vector_issue_limit = {n}");
            }
            None => s.push_str("vector_issue_limit = none\n"),
        }
        let _ = writeln!(s, "vector_length = {}", self.vector_length);
        let _ = writeln!(s, "lat.int_alu = {}", self.lat.int_alu);
        let _ = writeln!(s, "lat.int_mul = {}", self.lat.int_mul);
        let _ = writeln!(s, "lat.int_div = {}", self.lat.int_div);
        let _ = writeln!(s, "lat.fp_alu = {}", self.lat.fp_alu);
        let _ = writeln!(s, "lat.fp_mul = {}", self.lat.fp_mul);
        let _ = writeln!(s, "lat.fp_div = {}", self.lat.fp_div);
        let _ = writeln!(s, "lat.load = {}", self.lat.load);
        let _ = writeln!(s, "lat.store = {}", self.lat.store);
        let _ = writeln!(s, "lat.branch = {}", self.lat.branch);
        let _ = writeln!(s, "lat.merge = {}", self.lat.merge);
        let _ = writeln!(s, "lat.select = {}", self.lat.select);
        let _ = writeln!(s, "regs.scalar_int = {}", self.regs.scalar_int);
        let _ = writeln!(s, "regs.scalar_fp = {}", self.regs.scalar_fp);
        let _ = writeln!(s, "regs.vector_int = {}", self.regs.vector_int);
        let _ = writeln!(s, "regs.vector_fp = {}", self.regs.vector_fp);
        let _ = writeln!(s, "regs.predicates = {}", self.regs.predicates);
        let _ = writeln!(
            s,
            "comm = {}",
            match self.comm {
                CommModel::ThroughMemory => "through-memory",
                CommModel::Free => "free",
            }
        );
        let _ = writeln!(
            s,
            "alignment = {}",
            match self.alignment {
                AlignmentPolicy::AssumeMisaligned => "misaligned",
                AlignmentPolicy::AssumeAligned => "aligned",
                AlignmentPolicy::UseStatic => "static",
            }
        );
        let _ = writeln!(
            s,
            "model = {}",
            match self.model {
                ResourceModel::Full => "full",
                ResourceModel::SlotsOnly => "slots-only",
            }
        );
        let _ = writeln!(s, "count_loop_overhead = {}", self.count_loop_overhead);
        let _ = writeln!(s, "non_pipelined_divide = {}", self.non_pipelined_divide);
        let _ = writeln!(s, "loop_setup_cycles = {}", self.loop_setup_cycles);
        s
    }

    /// A stable 128-bit fingerprint of this machine description, computed
    /// over the canonical spec text ([`MachineConfig::to_spec`]) behind a
    /// schema tag. Invariant under everything spec parsing normalizes
    /// away (whitespace, comments, key order, defaulted keys) and under
    /// any future `#[derive(Debug)]` churn — unlike a `Debug`-format
    /// fingerprint, which changes whenever a field is added or renamed
    /// even when the described machine did not.
    pub fn canonical_hash(&self) -> CanonicalHash {
        let mut h = CanonicalHasher::new();
        h.section(MACHINE_HASH_SCHEMA);
        h.section(self.to_spec().as_bytes());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_paper_machine() {
        let m = MachineConfig::from_spec("").unwrap();
        assert_eq!(m, MachineConfig::paper_default());
    }

    #[test]
    fn overrides_and_comments() {
        let m = MachineConfig::from_spec(
            "# wider machine\nissue_width = 8 # eight slots\nlat.load = 2\nregs.vector_fp = 96\nalignment = static\n",
        )
        .unwrap();
        assert_eq!(m.issue_width, 8);
        assert_eq!(m.lat.load, 2);
        assert_eq!(m.regs.vector_fp, 96);
        assert_eq!(m.alignment, AlignmentPolicy::UseStatic);
        // Untouched keys keep Table 1 values.
        assert_eq!(m.fp_units, 2);
    }

    #[test]
    fn vector_issue_limit_none_and_some() {
        let m = MachineConfig::from_spec("vector_issue_limit = 1\n").unwrap();
        assert_eq!(m.vector_issue_limit, Some(1));
        let m = MachineConfig::from_spec("vector_issue_limit = none\n").unwrap();
        assert_eq!(m.vector_issue_limit, None);
    }

    #[test]
    fn resource_model_parses_both_ways() {
        let m = MachineConfig::from_spec("model = slots-only\n").unwrap();
        assert_eq!(m.model, ResourceModel::SlotsOnly);
        let m = MachineConfig::from_spec("model = full\n").unwrap();
        assert_eq!(m.model, ResourceModel::Full);
        let e = MachineConfig::from_spec("model = quantum\n").unwrap_err();
        assert!(e.message.contains("quantum"));
    }

    #[test]
    fn errors_carry_line_and_message() {
        let e = MachineConfig::from_spec("issue_width = 6\nbogus_key = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus_key"));
        let e = MachineConfig::from_spec("issue_width six\n").unwrap_err();
        assert!(e.message.contains("key = value"));
        let e = MachineConfig::from_spec("comm = telepathy\n").unwrap_err();
        assert!(e.message.contains("telepathy"));
    }

    #[test]
    fn duplicate_keys_are_rejected_with_both_lines() {
        let e = MachineConfig::from_spec(
            "issue_width = 6\nfp_units = 2\nissue_width = 8\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate key `issue_width`"), "{e}");
        assert!(e.message.contains("line 1"), "must name the first line: {e}");
        assert!(e.message.contains("line 3"), "must name the second line: {e}");
        // Comments and blank lines do not shift the reported numbers.
        let e = MachineConfig::from_spec(
            "# header\n\nlat.load = 2\n# middle\nlat.load = 3\n",
        )
        .unwrap_err();
        assert!(e.message.contains("first set on line 3"), "{e}");
        assert_eq!(e.line, 5);
    }

    #[test]
    fn select_keys_default_and_override() {
        // A spec with no select keys gets the paper defaults — old spec
        // files keep parsing to the machine they always described.
        let m = MachineConfig::from_spec("issue_width = 8\n").unwrap();
        assert_eq!(m.select_units, MachineConfig::paper_default().select_units);
        assert_eq!(m.lat.select, MachineConfig::paper_default().lat.select);
        let m = MachineConfig::from_spec("select_units = 2\nlat.select = 3\n").unwrap();
        assert_eq!(m.select_units, 2);
        assert_eq!(m.lat.select, 3);
    }

    #[test]
    fn duplicate_select_key_errors_with_both_lines() {
        let e = MachineConfig::from_spec(
            "select_units = 1\nfp_units = 2\nselect_units = 2\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate key `select_units`"), "{e}");
        assert!(e.message.contains("line 1"), "{e}");
        assert!(e.message.contains("line 3"), "{e}");
    }

    #[test]
    fn rejects_degenerate_vector_length() {
        let e = MachineConfig::from_spec("vector_length = 1\n").unwrap_err();
        assert!(e.message.contains("at least 2"));
    }

    #[test]
    fn to_spec_round_trips_builtins() {
        for m in [MachineConfig::paper_default(), MachineConfig::figure1()] {
            let text = m.to_spec();
            let back = MachineConfig::from_spec(&text)
                .unwrap_or_else(|e| panic!("canonical spec of `{}` must parse: {e}", m.name));
            assert_eq!(back, m, "round-trip law violated for `{}`", m.name);
            // Canonical text is a fixed point of normalization.
            assert_eq!(back.to_spec(), text);
        }
    }

    #[test]
    fn canonical_hash_ignores_formatting_but_not_values() {
        let a = MachineConfig::from_spec("issue_width = 8\nvector_length = 4\n").unwrap();
        let b = MachineConfig::from_spec(
            "# big machine\n\n  vector_length=4   # 256-bit\nissue_width =  8\n",
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        let c = MachineConfig::from_spec("issue_width = 8\nvector_length = 8\n").unwrap();
        assert_ne!(a.canonical_hash(), c.canonical_hash());
        assert_ne!(
            MachineConfig::paper_default().canonical_hash(),
            MachineConfig::figure1().canonical_hash()
        );
    }
}
