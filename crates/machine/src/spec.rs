//! Textual machine descriptions.
//!
//! A small `key = value` format so alternative architectures can be swept
//! from files rather than code — the backend-cost-model story of the paper
//! depends on describing the machine precisely, and Trimaran itself is
//! driven by machine-description files. Unspecified keys inherit from
//! [`MachineConfig::paper_default`].
//!
//! ```text
//! # a wider vector machine
//! name = widevec
//! vector_units = 2
//! merge_units = 2
//! vector_length = 4
//! alignment = aligned
//! ```

use crate::comm::CommModel;
use crate::config::{AlignmentPolicy, MachineConfig};
use std::fmt;

/// A malformed machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

impl MachineConfig {
    /// Parse a machine description, starting from
    /// [`MachineConfig::paper_default`] and overriding the listed keys.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for unknown keys or unparsable values.
    ///
    /// ```
    /// use sv_machine::MachineConfig;
    ///
    /// let m = MachineConfig::from_spec(
    ///     "name = wide\nissue_width = 8\nvector_length = 4\ncomm = free\n",
    /// )
    /// .unwrap();
    /// assert_eq!(m.issue_width, 8);
    /// assert_eq!(m.vector_length, 4);
    /// ```
    pub fn from_spec(text: &str) -> Result<MachineConfig, SpecError> {
        let mut m = MachineConfig::paper_default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let Some((key, value)) = stripped.split_once('=') else {
                return Err(SpecError {
                    line,
                    message: format!("expected `key = value`, got `{stripped}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let err = |message: String| SpecError { line, message };
            let num = |v: &str| -> Result<u32, SpecError> {
                v.parse()
                    .map_err(|_| err(format!("`{v}` is not a number")))
            };
            let flag = |v: &str| -> Result<bool, SpecError> {
                match v {
                    "true" | "yes" | "on" => Ok(true),
                    "false" | "no" | "off" => Ok(false),
                    _ => Err(err(format!("`{v}` is not a boolean"))),
                }
            };
            match key {
                "name" => m.name = value.to_string(),
                "issue_width" => m.issue_width = num(value)?,
                "int_units" => m.int_units = num(value)?,
                "fp_units" => m.fp_units = num(value)?,
                "mem_units" => m.mem_units = num(value)?,
                "branch_units" => m.branch_units = num(value)?,
                "vector_units" => m.vector_units = num(value)?,
                "merge_units" => m.merge_units = num(value)?,
                "vector_length" => m.vector_length = num(value)?,
                "vector_issue_limit" => {
                    m.vector_issue_limit =
                        if value == "none" { None } else { Some(num(value)?) }
                }
                "comm" => {
                    m.comm = match value {
                        "through-memory" => CommModel::ThroughMemory,
                        "free" => CommModel::Free,
                        _ => return Err(err(format!("unknown comm model `{value}`"))),
                    }
                }
                "alignment" => {
                    m.alignment = match value {
                        "misaligned" => AlignmentPolicy::AssumeMisaligned,
                        "aligned" => AlignmentPolicy::AssumeAligned,
                        "static" => AlignmentPolicy::UseStatic,
                        _ => return Err(err(format!("unknown alignment `{value}`"))),
                    }
                }
                "count_loop_overhead" => m.count_loop_overhead = flag(value)?,
                "non_pipelined_divide" => m.non_pipelined_divide = flag(value)?,
                "loop_setup_cycles" => m.loop_setup_cycles = u64::from(num(value)?),
                "lat.int_alu" => m.lat.int_alu = num(value)?,
                "lat.int_mul" => m.lat.int_mul = num(value)?,
                "lat.int_div" => m.lat.int_div = num(value)?,
                "lat.fp_alu" => m.lat.fp_alu = num(value)?,
                "lat.fp_mul" => m.lat.fp_mul = num(value)?,
                "lat.fp_div" => m.lat.fp_div = num(value)?,
                "lat.load" => m.lat.load = num(value)?,
                "lat.store" => m.lat.store = num(value)?,
                "lat.branch" => m.lat.branch = num(value)?,
                "lat.merge" => m.lat.merge = num(value)?,
                "regs.scalar_int" => m.regs.scalar_int = num(value)?,
                "regs.scalar_fp" => m.regs.scalar_fp = num(value)?,
                "regs.vector_int" => m.regs.vector_int = num(value)?,
                "regs.vector_fp" => m.regs.vector_fp = num(value)?,
                "regs.predicates" => m.regs.predicates = num(value)?,
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        if m.vector_length < 2 {
            return Err(SpecError {
                line: 0,
                message: "vector_length must be at least 2".into(),
            });
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_paper_machine() {
        let m = MachineConfig::from_spec("").unwrap();
        assert_eq!(m, MachineConfig::paper_default());
    }

    #[test]
    fn overrides_and_comments() {
        let m = MachineConfig::from_spec(
            "# wider machine\nissue_width = 8 # eight slots\nlat.load = 2\nregs.vector_fp = 96\nalignment = static\n",
        )
        .unwrap();
        assert_eq!(m.issue_width, 8);
        assert_eq!(m.lat.load, 2);
        assert_eq!(m.regs.vector_fp, 96);
        assert_eq!(m.alignment, AlignmentPolicy::UseStatic);
        // Untouched keys keep Table 1 values.
        assert_eq!(m.fp_units, 2);
    }

    #[test]
    fn vector_issue_limit_none_and_some() {
        let m = MachineConfig::from_spec("vector_issue_limit = 1\n").unwrap();
        assert_eq!(m.vector_issue_limit, Some(1));
        let m = MachineConfig::from_spec("vector_issue_limit = none\n").unwrap();
        assert_eq!(m.vector_issue_limit, None);
    }

    #[test]
    fn errors_carry_line_and_message() {
        let e = MachineConfig::from_spec("issue_width = 6\nbogus_key = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus_key"));
        let e = MachineConfig::from_spec("issue_width six\n").unwrap_err();
        assert!(e.message.contains("key = value"));
        let e = MachineConfig::from_spec("comm = telepathy\n").unwrap_err();
        assert!(e.message.contains("telepathy"));
    }

    #[test]
    fn rejects_degenerate_vector_length() {
        let e = MachineConfig::from_spec("vector_length = 1\n").unwrap_err();
        assert!(e.message.contains("at least 2"));
    }
}
