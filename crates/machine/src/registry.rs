//! A name → machine-description registry.
//!
//! Every layer that accepts "a machine" — the `svd` service, the table
//! binaries, the fuzzer, the load generator — resolves names through one
//! [`MachineRegistry`]: the two builtins (`paper`, `figure1`) plus any
//! number of spec files loaded from a directory. Loaded machines register
//! under the `name` their spec declares, and a name collision (with a
//! builtin or another file) is a hard error rather than a silent
//! shadowing — two callers saying `widevec` must always mean the same
//! bytes in a cache key.

use crate::config::MachineConfig;
use crate::spec::SpecError;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Where a registry entry came from (reported in collision errors and
/// the `machines` service verb).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistrySource {
    /// Compiled-in preset.
    Builtin,
    /// Parsed from a spec file.
    File(PathBuf),
}

impl fmt::Display for RegistrySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistrySource::Builtin => write!(f, "builtin"),
            RegistrySource::File(p) => write!(f, "{}", p.display()),
        }
    }
}

/// Why a registry could not be built or extended.
#[derive(Debug)]
pub enum RegistryError {
    /// A spec directory or file could not be read.
    Io {
        /// What was being read.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// A spec file failed to parse.
    Spec {
        /// The offending file.
        path: PathBuf,
        /// The parser's diagnosis.
        error: SpecError,
    },
    /// Two entries claimed the same name.
    Collision {
        /// The contested name.
        name: String,
        /// The entry already registered under it.
        first: RegistrySource,
        /// The entry that tried to register over it.
        second: RegistrySource,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
            RegistryError::Spec { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            RegistryError::Collision { name, first, second } => write!(
                f,
                "machine name `{name}` registered twice: by {first} and by {second}"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One registered machine.
#[derive(Debug, Clone)]
struct Entry {
    machine: MachineConfig,
    source: RegistrySource,
}

/// The name → machine map (see module docs). Iteration and listings are
/// always in sorted name order, so anything rendered from a registry is
/// deterministic regardless of load order.
#[derive(Debug, Clone, Default)]
pub struct MachineRegistry {
    entries: BTreeMap<String, Entry>,
}

impl MachineRegistry {
    /// A registry with no entries (tests, fully custom deployments).
    pub fn empty() -> MachineRegistry {
        MachineRegistry::default()
    }

    /// The builtin registry: `paper` (Table 1) and `figure1` (the toy
    /// machine of the motivating example).
    pub fn builtin() -> MachineRegistry {
        let mut r = MachineRegistry::empty();
        r.register("paper", MachineConfig::paper_default(), RegistrySource::Builtin)
            .expect("empty registry cannot collide");
        r.register("figure1", MachineConfig::figure1(), RegistrySource::Builtin)
            .expect("builtin names are distinct");
        r
    }

    /// Register one machine under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Collision`] if the name is already taken.
    pub fn register(
        &mut self,
        name: &str,
        machine: MachineConfig,
        source: RegistrySource,
    ) -> Result<(), RegistryError> {
        if let Some(existing) = self.entries.get(name) {
            return Err(RegistryError::Collision {
                name: name.to_string(),
                first: existing.source.clone(),
                second: source,
            });
        }
        self.entries.insert(name.to_string(), Entry { machine, source });
        Ok(())
    }

    /// Load every `*.spec` / `*.mspec` file in `dir` (sorted by file
    /// name), registering each parsed machine under its spec's `name`.
    /// Returns how many machines were added.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory is unreadable,
    /// [`RegistryError::Spec`] naming the file on a parse failure, and
    /// [`RegistryError::Collision`] when a loaded name is already taken
    /// (by a builtin or an earlier file). On error the registry may hold
    /// some of the directory's machines; callers treat any error as fatal.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, RegistryError> {
        let io_err = |path: &Path, error: std::io::Error| RegistryError::Io {
            path: path.to_path_buf(),
            error,
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| io_err(dir, e))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("spec") | Some("mspec")
                )
            })
            .collect();
        paths.sort();
        let mut added = 0;
        for path in paths {
            let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            let machine = MachineConfig::from_spec(&text)
                .map_err(|error| RegistryError::Spec { path: path.clone(), error })?;
            let name = machine.name.clone();
            self.register(&name, machine, RegistrySource::File(path))?;
            added += 1;
        }
        Ok(added)
    }

    /// The machine registered under `name`.
    pub fn get(&self, name: &str) -> Option<&MachineConfig> {
        self.entries.get(name).map(|e| &e.machine)
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// `(name, machine, source)` triples in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MachineConfig, &RegistrySource)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), &e.machine, &e.source))
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no machines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sv-machine-registry-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn builtins_resolve_by_short_name() {
        let r = MachineRegistry::builtin();
        assert_eq!(r.get("paper"), Some(&MachineConfig::paper_default()));
        assert_eq!(r.get("figure1"), Some(&MachineConfig::figure1()));
        assert_eq!(r.names(), vec!["figure1", "paper"]);
        assert!(r.get("micro05-table1").is_none(), "only registered names resolve");
    }

    #[test]
    fn load_dir_registers_under_spec_name() {
        let dir = scratch("load");
        std::fs::write(dir.join("wide.spec"), "name = widevec\nvector_length = 4\n").unwrap();
        std::fs::write(dir.join("toy.mspec"), "name = toy\nissue_width = 2\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a spec").unwrap();
        let mut r = MachineRegistry::builtin();
        assert_eq!(r.load_dir(&dir).unwrap(), 2);
        assert_eq!(r.len(), 4);
        assert_eq!(r.get("widevec").unwrap().vector_length, 4);
        assert_eq!(r.get("toy").unwrap().issue_width, 2);
        let sources: Vec<String> =
            r.iter().map(|(_, _, s)| s.to_string()).collect();
        assert_eq!(sources.iter().filter(|s| *s == "builtin").count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn name_collisions_are_hard_errors() {
        let dir = scratch("collide");
        std::fs::write(dir.join("a.spec"), "name = twin\n").unwrap();
        std::fs::write(dir.join("b.spec"), "name = twin\nissue_width = 8\n").unwrap();
        let mut r = MachineRegistry::empty();
        let e = r.load_dir(&dir).unwrap_err();
        let RegistryError::Collision { name, first, second } = e else {
            panic!("want collision, got {e}");
        };
        assert_eq!(name, "twin");
        assert!(first.to_string().ends_with("a.spec"), "{first}");
        assert!(second.to_string().ends_with("b.spec"), "{second}");
        // Colliding with a builtin name is equally fatal.
        let dir2 = scratch("collide-builtin");
        std::fs::write(dir2.join("p.spec"), "name = paper\n").unwrap();
        let mut r = MachineRegistry::builtin();
        assert!(matches!(
            r.load_dir(&dir2),
            Err(RegistryError::Collision { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn bad_spec_files_name_the_file() {
        let dir = scratch("bad");
        std::fs::write(dir.join("broken.spec"), "nonsense = 1\n").unwrap();
        let mut r = MachineRegistry::empty();
        let e = r.load_dir(&dir).unwrap_err();
        assert!(e.to_string().contains("broken.spec"), "{e}");
        assert!(e.to_string().contains("nonsense"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_io_error() {
        let mut r = MachineRegistry::empty();
        let e = r.load_dir(Path::new("/nonexistent/sv-machines")).unwrap_err();
        assert!(matches!(e, RegistryError::Io { .. }), "{e}");
    }
}
