//! Scalar↔vector operand communication cost model.

use sv_ir::{OpKind, Opcode, ScalarType};

/// Direction of an operand transfer between register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDirection {
    /// A scalar-produced value consumed by vector operations: the `k`
    /// scalar elements are stored and read back with one vector load.
    ScalarToVector,
    /// A vector-produced value consumed by scalar operations: one vector
    /// store followed by `k` scalar loads.
    VectorToScalar,
}

/// How operands move between the scalar and vector register files.
///
/// The paper's machine "does not provide specialized support for
/// communicating operands between scalar and vector functional units.
/// Communication is accomplished through memory using a series of load and
/// store operations" — which compete with the loop's own memory traffic for
/// the load/store units. [`CommModel::Free`] models the idealized machine
/// of Figure 1, where transfers cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// Transfers are free (Figure 1's idealization).
    Free,
    /// Transfers are loads/stores through memory (the evaluated machine).
    ThroughMemory,
}

impl CommModel {
    /// The instruction sequence transferring one `ty`-typed operand in
    /// direction `dir` on a machine with vector length `k`. Empty for
    /// [`CommModel::Free`].
    ///
    /// A particular operand is transferred at most once regardless of its
    /// number of consumers; callers are responsible for that caching, which
    /// both the partitioner's cost accounting and the loop transformer
    /// implement.
    pub fn transfer_opcodes(
        &self,
        dir: TransferDirection,
        ty: ScalarType,
        k: u32,
    ) -> Vec<Opcode> {
        match self {
            CommModel::Free => Vec::new(),
            CommModel::ThroughMemory => {
                let mut ops = Vec::with_capacity(k as usize + 1);
                match dir {
                    TransferDirection::ScalarToVector => {
                        for _ in 0..k {
                            ops.push(Opcode::scalar(OpKind::Store, ty));
                        }
                        ops.push(Opcode::vector(OpKind::Load, ty));
                    }
                    TransferDirection::VectorToScalar => {
                        ops.push(Opcode::vector(OpKind::Store, ty));
                        for _ in 0..k {
                            ops.push(Opcode::scalar(OpKind::Load, ty));
                        }
                    }
                }
                ops
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::VectorForm;

    #[test]
    fn free_model_has_no_ops() {
        for dir in [TransferDirection::ScalarToVector, TransferDirection::VectorToScalar] {
            assert!(CommModel::Free
                .transfer_opcodes(dir, ScalarType::F64, 2)
                .is_empty());
        }
    }

    #[test]
    fn scalar_to_vector_is_k_stores_one_vload() {
        let ops = CommModel::ThroughMemory.transfer_opcodes(
            TransferDirection::ScalarToVector,
            ScalarType::F64,
            2,
        );
        assert_eq!(ops.len(), 3);
        assert_eq!(
            ops.iter().filter(|o| o.kind == OpKind::Store && o.form == VectorForm::Scalar).count(),
            2
        );
        assert_eq!(
            ops.iter().filter(|o| o.kind == OpKind::Load && o.form == VectorForm::Vector).count(),
            1
        );
    }

    #[test]
    fn vector_to_scalar_is_one_vstore_k_loads() {
        let ops = CommModel::ThroughMemory.transfer_opcodes(
            TransferDirection::VectorToScalar,
            ScalarType::F64,
            4,
        );
        assert_eq!(ops.len(), 5);
        assert_eq!(
            ops.iter().filter(|o| o.kind == OpKind::Load && o.form == VectorForm::Scalar).count(),
            4
        );
    }
}
