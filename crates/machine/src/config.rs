//! Machine configuration: Table 1 of the paper, plus the Figure 1 toy.

use crate::comm::CommModel;
use crate::resources::{Reservation, ResourceClass, ResourcePool};
use sv_ir::{OpKind, Opcode, RegClass, ScalarType, VectorForm};

/// Operation latencies in cycles (paper Table 1; stores, merges and copies
/// are single-cycle, the convention in Trimaran's HPL-PD descriptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Integer ALU (add/sub/min/max/neg/abs/copy).
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide.
    pub int_div: u32,
    /// Floating-point ALU.
    pub fp_alu: u32,
    /// Floating-point multiply.
    pub fp_mul: u32,
    /// Floating-point divide (and square root).
    pub fp_div: u32,
    /// Load.
    pub load: u32,
    /// Store (cycles until a subsequent load can observe the value).
    pub store: u32,
    /// Branch.
    pub branch: u32,
    /// Vector merge (realignment).
    pub merge: u32,
    /// Select (conditional move). Pass-through data movement like a copy
    /// or merge, so single-cycle on the paper machine.
    pub select: u32,
}

impl Latencies {
    /// Paper Table 1 latencies.
    pub fn paper() -> Latencies {
        Latencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 36,
            fp_alu: 4,
            fp_mul: 4,
            fp_div: 32,
            load: 3,
            store: 1,
            branch: 1,
            merge: 1,
            select: 1,
        }
    }

    /// All-ones latencies (the Figure 1 toy machine: "single-cycle
    /// latencies for all operations").
    pub fn unit() -> Latencies {
        Latencies {
            int_alu: 1,
            int_mul: 1,
            int_div: 1,
            fp_alu: 1,
            fp_mul: 1,
            fp_div: 1,
            load: 1,
            store: 1,
            branch: 1,
            merge: 1,
            select: 1,
        }
    }
}

/// Register-file sizes (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFiles {
    /// Scalar integer registers.
    pub scalar_int: u32,
    /// Scalar floating-point registers.
    pub scalar_fp: u32,
    /// Vector integer registers.
    pub vector_int: u32,
    /// Vector floating-point registers.
    pub vector_fp: u32,
    /// Predicate registers (one rotating predicate per pipeline stage
    /// guards the kernel-only code schema).
    pub predicates: u32,
}

impl RegFiles {
    /// Paper Table 1 register files.
    pub fn paper() -> RegFiles {
        RegFiles {
            scalar_int: 128,
            scalar_fp: 128,
            vector_int: 64,
            vector_fp: 64,
            predicates: 64,
        }
    }

    /// Size of the file for a register class.
    pub fn size(&self, class: RegClass) -> u32 {
        match class {
            RegClass::ScalarInt => self.scalar_int,
            RegClass::ScalarFp => self.scalar_fp,
            RegClass::VectorInt => self.vector_int,
            RegClass::VectorFp => self.vector_fp,
        }
    }
}

/// How the machine exposes functional units to the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceModel {
    /// Full Table-1 model: every operation needs an issue slot plus its
    /// functional unit; vector memory ops share the load/store units.
    Full,
    /// Figure-1 toy model: issue slots are the only compiler-visible
    /// resources, plus a global one-vector-instruction-per-cycle limit.
    SlotsOnly,
}

/// Compile-time alignment knowledge for vector memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentPolicy {
    /// All vector memory operations are assumed misaligned (the paper's
    /// main evaluation: "we do not employ any techniques that provide
    /// alignment information").
    AssumeMisaligned,
    /// All vector memory operations are assumed aligned (paper Table 5's
    /// best case).
    AssumeAligned,
    /// Use static information from array base alignment and constant
    /// offsets; unknown cases count as misaligned.
    UseStatic,
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Name used in reports.
    pub name: String,
    /// Issue width (instructions per cycle).
    pub issue_width: u32,
    /// Scalar integer units.
    pub int_units: u32,
    /// Scalar floating-point units.
    pub fp_units: u32,
    /// Load/store units (shared scalar/vector).
    pub mem_units: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Vector arithmetic units (shared int/fp).
    pub vector_units: u32,
    /// Vector merge units.
    pub merge_units: u32,
    /// Select (conditional move) units, shared between scalar and vector
    /// selects the way the load/store units are shared.
    pub select_units: u32,
    /// Optional global cap on vector instructions per cycle.
    pub vector_issue_limit: Option<u32>,
    /// Elements per vector register (paper: 128-bit vectors of 64-bit data,
    /// so 2).
    pub vector_length: u32,
    /// Latency table.
    pub lat: Latencies,
    /// Register files.
    pub regs: RegFiles,
    /// Scalar↔vector communication cost model.
    pub comm: CommModel,
    /// Alignment knowledge.
    pub alignment: AlignmentPolicy,
    /// Resource exposure model.
    pub model: ResourceModel,
    /// Charge loop control overhead (one branch + one induction update per
    /// transformed iteration). Disabled on the toy machine, which the paper
    /// draws without loop overhead.
    pub count_loop_overhead: bool,
    /// Divides/square-roots occupy their functional unit for their full
    /// latency (non-pipelined), the HPL-PD convention.
    pub non_pipelined_divide: bool,
    /// Fixed per-invocation cycles for entering a software-pipelined loop
    /// (live-in setup, predicate/rotation initialization). Amortized over
    /// the trip count, it matters only for low-trip-count loops.
    pub loop_setup_cycles: u64,
}

impl MachineConfig {
    /// The paper's simulated processor (Table 1).
    pub fn paper_default() -> MachineConfig {
        MachineConfig {
            name: "micro05-table1".into(),
            issue_width: 6,
            int_units: 4,
            fp_units: 2,
            mem_units: 2,
            branch_units: 1,
            vector_units: 1,
            merge_units: 1,
            select_units: 1,
            vector_issue_limit: None,
            vector_length: 2,
            lat: Latencies::paper(),
            regs: RegFiles::paper(),
            comm: CommModel::ThroughMemory,
            alignment: AlignmentPolicy::AssumeMisaligned,
            model: ResourceModel::Full,
            count_loop_overhead: true,
            non_pipelined_divide: true,
            loop_setup_cycles: 8,
        }
    }

    /// The Figure 1 toy machine: three issue slots as the only
    /// compiler-visible resources, one vector instruction per cycle,
    /// unit latencies, vectors of length two, free scalar↔vector
    /// communication and no loop overhead accounting.
    pub fn figure1() -> MachineConfig {
        MachineConfig {
            name: "micro05-figure1".into(),
            issue_width: 3,
            int_units: 3,
            fp_units: 3,
            mem_units: 3,
            branch_units: 1,
            vector_units: 1,
            merge_units: 1,
            select_units: 1,
            vector_issue_limit: Some(1),
            vector_length: 2,
            lat: Latencies::unit(),
            regs: RegFiles::paper(),
            comm: CommModel::Free,
            alignment: AlignmentPolicy::AssumeAligned,
            model: ResourceModel::SlotsOnly,
            count_loop_overhead: false,
            non_pipelined_divide: false,
            loop_setup_cycles: 0,
        }
    }

    /// The resource pool (instances of every nonzero class).
    pub fn resource_pool(&self) -> ResourcePool {
        ResourcePool::new([
            (ResourceClass::Issue, self.issue_width),
            (ResourceClass::Int, self.int_units),
            (ResourceClass::Fp, self.fp_units),
            (ResourceClass::Mem, self.mem_units),
            (ResourceClass::Branch, self.branch_units),
            (ResourceClass::Vector, self.vector_units),
            (ResourceClass::Merge, self.merge_units),
            (ResourceClass::VectorIssue, self.vector_issue_limit.unwrap_or(0)),
            (ResourceClass::Select, self.select_units),
        ])
    }

    /// Result latency of an opcode in cycles. Vector operations have the
    /// same latency as their scalar counterparts (paper §4).
    pub fn latency(&self, opcode: Opcode) -> u32 {
        let l = &self.lat;
        match opcode.kind {
            OpKind::Load => l.load,
            OpKind::Store => l.store,
            OpKind::Merge => l.merge,
            // Idealized free communication: no latency, no resources.
            OpKind::Pack | OpKind::Extract => 0,
            OpKind::Div | OpKind::Sqrt => {
                if opcode.ty.is_float() {
                    l.fp_div
                } else {
                    l.int_div
                }
            }
            OpKind::Mul => {
                if opcode.ty.is_float() {
                    l.fp_mul
                } else {
                    l.int_mul
                }
            }
            OpKind::Select => l.select,
            OpKind::Add | OpKind::Sub | OpKind::Min | OpKind::Max | OpKind::Neg
            | OpKind::Abs | OpKind::Copy | OpKind::Cmp(_) => {
                if opcode.ty.is_float() {
                    l.fp_alu
                } else {
                    l.int_alu
                }
            }
        }
    }

    /// The reservations an opcode needs: one instance per listed class, for
    /// the listed number of consecutive cycles.
    pub fn requirements(&self, opcode: Opcode) -> Vec<Reservation> {
        if matches!(opcode.kind, OpKind::Pack | OpKind::Extract) {
            // Free-communication pseudo-ops occupy nothing.
            return Vec::new();
        }
        let mut out = vec![Reservation::one(ResourceClass::Issue)];
        let vector = opcode.form == VectorForm::Vector;
        if vector && self.vector_issue_limit.is_some() {
            out.push(Reservation::one(ResourceClass::VectorIssue));
        }
        if self.model == ResourceModel::SlotsOnly {
            return out;
        }
        let fu_cycles = if matches!(opcode.kind, OpKind::Div | OpKind::Sqrt)
            && self.non_pipelined_divide
        {
            self.latency(opcode)
        } else {
            1
        };
        let fu = match opcode.kind {
            OpKind::Load | OpKind::Store => ResourceClass::Mem,
            OpKind::Merge => ResourceClass::Merge,
            // Selects run on the dedicated select unit in both forms
            // (shared scalar/vector, like the load/store units); compares
            // are ordinary ALU work and fall through below.
            OpKind::Select => ResourceClass::Select,
            _ if vector => ResourceClass::Vector,
            _ if opcode.ty == ScalarType::F64 => ResourceClass::Fp,
            _ => ResourceClass::Int,
        };
        out.push(Reservation { class: fu, cycles: fu_cycles });
        out
    }

    /// Reservations of the per-iteration loop control overhead (one branch
    /// plus one induction-variable update), or empty when
    /// [`MachineConfig::count_loop_overhead`] is off.
    pub fn loop_overhead(&self) -> Vec<Vec<Reservation>> {
        if !self.count_loop_overhead {
            return Vec::new();
        }
        vec![
            vec![
                Reservation::one(ResourceClass::Issue),
                Reservation::one(ResourceClass::Branch),
            ],
            vec![
                Reservation::one(ResourceClass::Issue),
                Reservation::one(ResourceClass::Int),
            ],
        ]
    }

    /// Number of scheduling alternatives an opcode has (product of class
    /// capacities over its requirements); used to order bin-packing so the
    /// most constrained operations are placed first, as in Rau's original
    /// formulation.
    pub fn alternatives_count(&self, opcode: Opcode) -> u64 {
        self.alternatives_count_in(&self.resource_pool(), opcode)
    }

    /// [`MachineConfig::alternatives_count`] against an existing pool
    /// (hot paths build the pool once).
    pub fn alternatives_count_in(&self, pool: &ResourcePool, opcode: Opcode) -> u64 {
        self.requirements(opcode)
            .iter()
            .map(|r| u64::from(pool.capacity(r.class)).max(1))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fop(kind: OpKind) -> Opcode {
        Opcode::scalar(kind, ScalarType::F64)
    }

    #[test]
    fn paper_latencies_match_table1() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.latency(fop(OpKind::Add)), 4);
        assert_eq!(m.latency(fop(OpKind::Mul)), 4);
        assert_eq!(m.latency(fop(OpKind::Div)), 32);
        assert_eq!(m.latency(Opcode::scalar(OpKind::Add, ScalarType::I64)), 1);
        assert_eq!(m.latency(Opcode::scalar(OpKind::Mul, ScalarType::I64)), 3);
        assert_eq!(m.latency(Opcode::scalar(OpKind::Div, ScalarType::I64)), 36);
        assert_eq!(m.latency(fop(OpKind::Load)), 3);
    }

    #[test]
    fn vector_latency_equals_scalar() {
        let m = MachineConfig::paper_default();
        for kind in [OpKind::Add, OpKind::Mul, OpKind::Load, OpKind::Store] {
            assert_eq!(
                m.latency(Opcode::vector(kind, ScalarType::F64)),
                m.latency(Opcode::scalar(kind, ScalarType::F64))
            );
        }
    }

    #[test]
    fn vector_memory_shares_mem_units() {
        let m = MachineConfig::paper_default();
        let reqs = m.requirements(Opcode::vector(OpKind::Load, ScalarType::F64));
        assert!(reqs.iter().any(|r| r.class == ResourceClass::Mem));
        assert!(!reqs.iter().any(|r| r.class == ResourceClass::Vector));
    }

    #[test]
    fn vector_arith_uses_vector_unit() {
        let m = MachineConfig::paper_default();
        let reqs = m.requirements(Opcode::vector(OpKind::Mul, ScalarType::F64));
        assert!(reqs.iter().any(|r| r.class == ResourceClass::Vector));
        assert!(!reqs.iter().any(|r| r.class == ResourceClass::Fp));
    }

    #[test]
    fn merge_uses_merge_unit() {
        let m = MachineConfig::paper_default();
        let reqs = m.requirements(Opcode::vector(OpKind::Merge, ScalarType::F64));
        assert!(reqs.iter().any(|r| r.class == ResourceClass::Merge));
    }

    #[test]
    fn divide_is_non_pipelined() {
        let m = MachineConfig::paper_default();
        let reqs = m.requirements(fop(OpKind::Div));
        let fp = reqs.iter().find(|r| r.class == ResourceClass::Fp).unwrap();
        assert_eq!(fp.cycles, 32);
        // Issue slot is still held for a single cycle.
        let issue = reqs.iter().find(|r| r.class == ResourceClass::Issue).unwrap();
        assert_eq!(issue.cycles, 1);
    }

    #[test]
    fn figure1_is_slots_only() {
        let m = MachineConfig::figure1();
        let scalar = m.requirements(fop(OpKind::Mul));
        assert_eq!(scalar.len(), 1);
        assert_eq!(scalar[0].class, ResourceClass::Issue);
        let vector = m.requirements(Opcode::vector(OpKind::Mul, ScalarType::F64));
        assert!(vector.iter().any(|r| r.class == ResourceClass::VectorIssue));
        assert_eq!(m.resource_pool().capacity(ResourceClass::VectorIssue), 1);
        assert_eq!(m.resource_pool().capacity(ResourceClass::Issue), 3);
    }

    #[test]
    fn cmp_is_alu_select_is_select_unit() {
        use sv_ir::CmpPred;
        let m = MachineConfig::paper_default();
        assert_eq!(m.latency(fop(OpKind::Cmp(CmpPred::Lt))), 4);
        assert_eq!(m.latency(Opcode::scalar(OpKind::Cmp(CmpPred::Eq), ScalarType::I64)), 1);
        assert_eq!(m.latency(fop(OpKind::Select)), 1);
        let cmp = m.requirements(fop(OpKind::Cmp(CmpPred::Lt)));
        assert!(cmp.iter().any(|r| r.class == ResourceClass::Fp));
        let vcmp = m.requirements(Opcode::vector(OpKind::Cmp(CmpPred::Lt), ScalarType::F64));
        assert!(vcmp.iter().any(|r| r.class == ResourceClass::Vector));
        // Selects occupy the shared select unit in both forms.
        for op in [fop(OpKind::Select), Opcode::vector(OpKind::Select, ScalarType::F64)] {
            let reqs = m.requirements(op);
            assert!(reqs.iter().any(|r| r.class == ResourceClass::Select), "{op}");
            assert!(!reqs.iter().any(|r| r.class == ResourceClass::Vector));
        }
        assert_eq!(m.resource_pool().capacity(ResourceClass::Select), 1);
    }

    #[test]
    fn loop_overhead_toggles() {
        assert!(MachineConfig::figure1().loop_overhead().is_empty());
        let oh = MachineConfig::paper_default().loop_overhead();
        assert_eq!(oh.len(), 2);
    }

    #[test]
    fn reg_files_by_class() {
        let r = RegFiles::paper();
        assert_eq!(r.size(RegClass::ScalarInt), 128);
        assert_eq!(r.size(RegClass::VectorFp), 64);
    }

    #[test]
    fn alternatives_counts_ordering() {
        let m = MachineConfig::paper_default();
        // A branch-free fp op has 6 issue × 2 fp = 12 alternatives; a memory
        // op 6 × 2 = 12; a vector arith op 6 × 1 = 6 — more constrained.
        assert!(
            m.alternatives_count(Opcode::vector(OpKind::Mul, ScalarType::F64))
                < m.alternatives_count(fop(OpKind::Mul))
        );
    }
}
