//! # sv-machine — parametric VLIW machine model
//!
//! Describes the compiler-visible resources, latencies and register files
//! of the paper's simulated processor (MICRO 2005, Table 1), plus the
//! communication and alignment cost models that drive the selective
//! vectorizer:
//!
//! * all scalar↔vector operand communication goes **through memory** as a
//!   series of stores and loads that compete with the program's own memory
//!   operations for the load/store units;
//! * misaligned vector memory operations require realignment on the
//!   dedicated **vector merge unit** (one merge per access in steady state,
//!   after previous-iteration reuse).
//!
//! Two presets are provided: [`MachineConfig::paper_default`] (Table 1) and
//! [`MachineConfig::figure1`] (the 3-issue toy machine of the motivating
//! example, with free communication).
//!
//! ```
//! use sv_machine::MachineConfig;
//! use sv_ir::{OpKind, Opcode, ScalarType};
//!
//! let m = MachineConfig::paper_default();
//! assert_eq!(m.vector_length, 2);
//! let fmul = Opcode::scalar(OpKind::Mul, ScalarType::F64);
//! assert_eq!(m.latency(fmul), 4);
//! ```

mod comm;
mod config;
mod registry;
mod resources;
mod spec;

pub use comm::{CommModel, TransferDirection};
pub use config::{AlignmentPolicy, Latencies, MachineConfig, RegFiles, ResourceModel};
pub use registry::{MachineRegistry, RegistryError, RegistrySource};
pub use resources::{Reservation, ResourceClass, ResourceInstance, ResourcePool};
pub use spec::SpecError;
