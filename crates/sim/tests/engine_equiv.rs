//! Differential property tests for the two execution engines.
//!
//! The pre-decoded fast engine behind [`sv_sim::execute_loop`],
//! [`sv_sim::execute_pipelined`] and [`sv_sim::execute_flat`] must be
//! **bit-identical** to the retained interpreters in [`sv_sim::reference`]
//! — same final memories and live-outs under [`Scalar::identical`], NaN
//! payloads and signed zeros included. Two hundred seeded random loops
//! sweep the generator's distribution profiles; dedicated cases pin the
//! corners a sweep can miss (zero-trip loops, maximum loop-carried
//! distance, integer reductions).

use sv_analysis::DepGraph;
use sv_ir::{Loop, LoopBuilder, Opcode, OpId, OpKind, Operand, ScalarType};
use sv_machine::MachineConfig;
use sv_modsched::{emit_flat, modulo_schedule};
use sv_sim::reference;
use sv_sim::{execute_flat, execute_loop, execute_pipelined, LiveOutValue, Memory};
use sv_workloads::{synth_loop, SynthProfile};

fn assert_outs_identical(l: &Loop, what: &str, fast: &[LiveOutValue], refr: &[LiveOutValue]) {
    assert_eq!(fast.len(), refr.len(), "{}: {what}: live-out count", l.name);
    for (f, r) in fast.iter().zip(refr) {
        assert_eq!(f.name, r.name, "{}: {what}: live-out order", l.name);
        assert_eq!(f.combine, r.combine, "{}: {what}: combine kind of {}", l.name, f.name);
        assert!(
            f.value.identical(r.value),
            "{}: {what}: live-out {}: fast {:?} != reference {:?}",
            l.name,
            f.name,
            f.value,
            r.value
        );
    }
}

fn assert_mem_identical(l: &Loop, what: &str, fast: &Memory, refr: &Memory) {
    for a in 0..l.arrays.len() as u32 {
        for (i, (f, r)) in fast.array(a).iter().zip(refr.array(a)).enumerate() {
            assert!(
                f.identical(*r),
                "{}: {what}: array {}[{i}]: fast {f:?} != reference {r:?}",
                l.name,
                l.arrays[a as usize].name
            );
        }
    }
}

/// Run one loop through every executor pair. In-order execution always
/// runs (full range plus an offset subrange); the pipelined and flat
/// executors run when the scalar loop modulo-schedules, and flat
/// additionally needs a trip long enough to fill the pipeline. Returns
/// which of (pipelined, flat) actually ran so callers can assert
/// coverage.
fn check_engines(l: &Loop, m: &MachineConfig) -> (bool, bool) {
    let n = l.trip.count;
    for range in [0..n, n / 3..n] {
        let mut mf = Memory::for_arrays(&l.arrays);
        let mut mr = mf.clone();
        let of = execute_loop(l, &mut mf, range.clone());
        let or = reference::execute_loop(l, &mut mr, range.clone());
        let what = format!("in-order {range:?}");
        assert_outs_identical(l, &what, &of, &or);
        assert_mem_identical(l, &what, &mf, &mr);
    }

    let g = DepGraph::build(l);
    let Ok(s) = modulo_schedule(l, &g, m) else {
        return (false, false);
    };
    let mut mf = Memory::for_arrays(&l.arrays);
    let mut mr = mf.clone();
    let of = execute_pipelined(l, &s, &mut mf, n);
    let or = reference::execute_pipelined(l, &s, &mut mr, n);
    assert_outs_identical(l, "pipelined", &of, &or);
    assert_mem_identical(l, "pipelined", &mf, &mr);

    let mut ran_flat = false;
    if n >= u64::from(s.stage_count) {
        let flat = emit_flat(l, &s);
        let mut mf = Memory::for_arrays(&l.arrays);
        let mut mr = mf.clone();
        let of = execute_flat(l, &flat, &mut mf, n);
        let or = reference::execute_flat(l, &flat, &mut mr, n);
        assert_outs_identical(l, "flat", &of, &or);
        assert_mem_identical(l, "flat", &mf, &mr);
        ran_flat = true;
    }
    (true, ran_flat)
}

/// The generator profiles the sweep cycles through — the same shapes the
/// differential fuzzer stresses (broad mix, reductions, recurrence
/// chains, tiny trips).
fn profile_for(seed: u64) -> SynthProfile {
    let broad = SynthProfile::broad();
    match seed % 4 {
        0 => broad,
        1 => SynthProfile { reduction_prob: 0.85, reassoc: true, ..broad },
        2 => SynthProfile {
            recurrence_prob: 0.6,
            carried_prob: 0.35,
            nonunit_prob: 0.3,
            ..broad
        },
        _ => SynthProfile { loads: (1, 2), arith: (1, 3), trip: (1, 9), ..broad },
    }
}

#[test]
fn two_hundred_random_loops_match_reference() {
    let machines = [MachineConfig::paper_default(), MachineConfig::figure1()];
    let (mut pipelined, mut flat) = (0u32, 0u32);
    for seed in 0..200u64 {
        let mut l = synth_loop(&format!("equiv{seed}"), &profile_for(seed), seed);
        l.invocations = 1;
        let (p, f) = check_engines(&l, &machines[(seed % 2) as usize]);
        pipelined += u32::from(p);
        flat += u32::from(f);
    }
    // The sweep must actually exercise the sequence executors, not just
    // the in-order path.
    assert!(pipelined >= 150, "only {pipelined}/200 loops scheduled");
    assert!(flat >= 100, "only {flat}/200 loops ran the flat layout");
}

#[test]
fn zero_trip_loops_match_reference() {
    let m = MachineConfig::paper_default();
    for seed in 0..20u64 {
        let mut l = synth_loop(&format!("zt{seed}"), &profile_for(seed), seed);
        l.invocations = 1;
        l.trip.count = 0;
        // In-order over an empty range and a pipeline launching zero
        // instances must both fall back to carried-init live-outs.
        let (_, ran_flat) = check_engines(&l, &m);
        assert!(!ran_flat, "flat layout requires a full pipeline");
    }
}

#[test]
fn max_carried_distance_matches_reference() {
    // A distance-7 self-recurrence plus a distance-7 cross-op use: reads
    // straddle the full ring window, and the first 7 iterations observe
    // carried-init values.
    let m = MachineConfig::paper_default();
    for trip in [1u64, 6, 7, 8, 40] {
        let mut b = LoopBuilder::new(format!("dist7x{trip}"));
        b.trip(trip);
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let far = b.bin(
            OpKind::Add,
            ScalarType::F64,
            Operand::def(lx),
            Operand::Def { op: lx, distance: 7 },
        );
        // A recurrence whose carried use also reaches back 7 iterations.
        let rec_id = OpId(b.as_loop().ops.len() as u32);
        let rec = b.push(
            Opcode::scalar(OpKind::Add, ScalarType::F64),
            vec![Operand::carried(rec_id, 7), Operand::def(far)],
            None,
            false,
        );
        assert_eq!(rec, rec_id);
        b.store(y, 1, 0, rec);
        b.live_out("rec", rec);
        let l = b.finish();
        check_engines(&l, &m);
    }
}

#[test]
fn integer_reductions_match_reference() {
    let m = MachineConfig::paper_default();
    for kind in [OpKind::Add, OpKind::Mul, OpKind::Min, OpKind::Max] {
        let mut b = LoopBuilder::new(format!("ired-{kind:?}"));
        b.trip(37);
        let x = b.array("x", ScalarType::I64, 64);
        let lx = b.load(x, 1, 0);
        b.reduce(kind, ScalarType::I64, lx);
        let l = b.finish();
        let (p, _) = check_engines(&l, &m);
        assert!(p, "integer reduction failed to schedule");
    }
}
