//! Differential tests for the slot-accurate schedule executor.
//!
//! Every compiled plan must satisfy two gates when replayed through
//! [`sv_sim::execute_schedule`]:
//!
//! 1. **state** — final memory and live-outs bit-identical
//!    ([`sv_sim::Scalar::identical`]) to the retained reference engine
//!    running the same plan;
//! 2. **timing** — zero interlock stalls, and measured steady-state
//!    cycles/iteration exactly the scheduled II for every piece whose
//!    kernel runs.
//!
//! Two hundred seeded random loops sweep the generator's distribution
//! profiles across all seven strategies and three registry machines; the
//! benchmark suites pin the hand-written kernels; a separate property
//! test holds `play_schedule` to its documented "analytic count within
//! one II of exact" claim over the whole machine registry.

use std::path::Path;
use sv_core::{DriverConfig, Strategy};
use sv_machine::{MachineConfig, MachineRegistry};
use sv_sim::{compile_executed, executed_selfcheck, play_schedule};
use sv_workloads::{synth_loop, SynthProfile};

/// The builtin pair plus one spec-file machine: scheduling behaviour
/// differs across all three (issue width, vector lanes, communication
/// cost), so the sweep exercises genuinely different schedules.
fn registry_machines() -> Vec<(String, MachineConfig)> {
    let mut reg = MachineRegistry::builtin();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines");
    reg.load_dir(&dir).expect("examples/machines must parse");
    let mut out = Vec::new();
    for name in ["paper", "figure1", "vl4"] {
        let m = reg.get(name).unwrap_or_else(|| panic!("machine {name} missing"));
        out.push((name.to_string(), m.clone()));
    }
    out
}

/// The generator profiles the sweep cycles through — the same shapes the
/// differential fuzzer stresses (broad mix, reductions, recurrence
/// chains, tiny trips).
fn profile_for(seed: u64) -> SynthProfile {
    let broad = SynthProfile::broad();
    match seed % 4 {
        0 => broad,
        1 => SynthProfile { reduction_prob: 0.85, reassoc: true, ..broad },
        2 => SynthProfile {
            recurrence_prob: 0.6,
            carried_prob: 0.35,
            nonunit_prob: 0.3,
            ..broad
        },
        _ => SynthProfile { loads: (1, 2), arith: (1, 3), trip: (1, 9), ..broad },
    }
}

/// Compile under every strategy and hold the executed plan to both
/// gates. Returns how many strategies produced a plan (compilation
/// failures are legitimate for pathological loops; executed failures
/// never are).
fn check_executed(l: &sv_ir::Loop, mname: &str, m: &MachineConfig) -> u32 {
    let mut compiled = 0;
    for s in Strategy::ALL {
        let cfg = DriverConfig { strategy: s, ..DriverConfig::default() };
        match compile_executed(l, m, &cfg) {
            Ok((_, _, pieces)) => {
                compiled += 1;
                assert!(!pieces.is_empty(), "{}/{s}/{mname}: no pieces ran", l.name);
            }
            Err(sv_core::CompileError::Execution { detail, .. }) => {
                panic!("{}/{s}/{mname}: executed gate failed: {detail}", l.name)
            }
            Err(_) => {}
        }
    }
    compiled
}

#[test]
fn two_hundred_random_loops_execute_at_scheduled_ii() {
    let machines = registry_machines();
    let mut compiled = 0u32;
    for seed in 0..200u64 {
        let mut l = synth_loop(&format!("sx{seed}"), &profile_for(seed), seed);
        l.invocations = 1;
        let (name, m) = &machines[(seed % 3) as usize];
        compiled += check_executed(&l, name, m);
    }
    // The sweep must actually exercise the executor across strategies,
    // not just trip on compile failures.
    assert!(compiled >= 900, "only {compiled}/1200 cases compiled");
}

#[test]
fn short_trip_loops_execute_truncated_layouts() {
    // Trips below the stage count take the truncated prologue-only
    // layout; the executor must still match the reference engine and
    // report a vacuously-satisfied timing gate (kernel never runs).
    let machines = registry_machines();
    for seed in 0..40u64 {
        let mut l = synth_loop(&format!("st{seed}"), &profile_for(seed), seed);
        l.invocations = 1;
        l.trip.count = seed % 4; // 0..=3 iterations: below most stage counts
        let (name, m) = &machines[(seed % 3) as usize];
        check_executed(&l, name, m);
    }
}

#[test]
fn suite_kernels_execute_at_scheduled_ii() {
    // The hand-written benchmark kernels (plus a slice of each suite's
    // synthetic fill) through the full gate on the paper machine.
    let m = MachineConfig::paper_default();
    for suite in sv_workloads::all_benchmarks() {
        for l in suite.loops.iter().take(8) {
            let mut l = l.clone();
            l.invocations = 1;
            check_executed(&l, "paper", &m);
        }
    }
}

#[test]
fn predicated_kernels_hold_every_gate_everywhere() {
    // The four if-converted suite kernels (clip, threshold-accumulate,
    // argmax max+select, conditional saxpy) × every strategy × the
    // registry machines — including the select-capacity sweep pair
    // (`selcheap`/`selslow`). `compile_executed` holds each plan to the
    // full gate stack: bit-identical state vs the reference engine, zero
    // stalls, measured steady-state II == scheduled II, and observed
    // register pressure within MaxLive.
    let mut reg = MachineRegistry::builtin();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines");
    reg.load_dir(&dir).expect("examples/machines must parse");
    let machines: Vec<(String, MachineConfig)> =
        ["paper", "figure1", "vl4", "selcheap", "selslow"]
            .iter()
            .map(|n| (n.to_string(), reg.get(n).unwrap_or_else(|| panic!("{n} missing")).clone()))
            .collect();
    for (suite, pat) in [
        ("hydro2d", "slopeclip"),
        ("apsi", "excess"),
        ("swim", "wetdry"),
        ("wave5", "fieldmax"),
    ] {
        let s = sv_workloads::benchmark(suite).expect("suite exists");
        let mut l = s
            .loops
            .iter()
            .find(|l| l.name.ends_with(pat))
            .unwrap_or_else(|| panic!("{pat} missing from {suite}"))
            .clone();
        l.invocations = 1;
        for (name, m) in &machines {
            let compiled = check_executed(&l, name, m);
            assert!(compiled >= 6, "{pat}/{name}: only {compiled}/7 strategies compiled");
        }
    }
}

#[test]
fn observed_register_pressure_is_real_and_bounded() {
    // The executor's live-value probe must (a) see the pressure a
    // pipelined copy loop provably has — at II = 1 the loaded value
    // lives for the 3-cycle load latency, so ≥ 3 fp registers are
    // simultaneously live — and (b) never exceed the scheduler's
    // MaxLive estimate (the `executed_selfcheck` gate).
    let mut b = sv_ir::LoopBuilder::new("copy");
    b.trip(64);
    let x = b.array("x", sv_ir::ScalarType::F64, 80);
    let y = b.array("y", sv_ir::ScalarType::F64, 80);
    let lx = b.load(x, 1, 0);
    b.store(y, 1, 0, lx);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let cfg = DriverConfig { strategy: Strategy::ModuloNoUnroll, ..DriverConfig::default() };
    let (_, _, pieces) = compile_executed(&l, &m, &cfg).expect("copy compiles");
    let main = &pieces[0];
    assert_eq!(main.scheduled_ii, 1);
    let fp = main.report.observed_max_live[1];
    assert!(fp >= 3, "observed fp pressure {fp} misses the load latency");
    assert!(fp <= main.max_live[1], "probe exceeds the scheduler estimate");
    // Nothing here touches the other classes' registers.
    assert_eq!(main.report.observed_max_live[2], 0, "no vector-int values");
    assert_eq!(main.report.observed_max_live[3], 0, "no vector-fp values");
}

#[test]
fn suite_pressure_never_exceeds_maxlive_across_registry() {
    // Register-pressure slice of the executed gate across machines: every
    // suite kernel that compiles under every strategy must replay within
    // the scheduler's MaxLive on each registry machine (the assertion
    // itself lives inside `executed_selfcheck`; this sweep pins the
    // suite × strategy × registry coverage).
    let machines = registry_machines();
    let mut checked = 0u32;
    for (mi, suite) in sv_workloads::all_benchmarks().iter().enumerate() {
        let (name, m) = &machines[mi % machines.len()];
        for l in suite.loops.iter().take(4) {
            let mut l = l.clone();
            l.invocations = 1;
            checked += check_executed(&l, name, m);
        }
    }
    assert!(checked >= 100, "only {checked} suite × strategy × machine points checked");
}

#[test]
fn analytic_cycles_within_one_ii_over_registry() {
    // `PlaybackReport::analytic_cycles` documents `(n + SC − 1)·II` as
    // "always within one II of the exact count". Hold that claim over
    // every registry machine × a spread of suite loops and trips.
    let machines = registry_machines();
    let suites = sv_workloads::all_benchmarks();
    let mut checked = 0u32;
    for (mname, m) in &machines {
        for suite in &suites {
            for l in suite.loops.iter().take(4) {
                let g = sv_analysis::DepGraph::build(l);
                let Ok(s) = sv_modsched::modulo_schedule(l, &g, m) else { continue };
                for n in [1u64, 2, u64::from(s.stage_count), l.trip.count.max(1)] {
                    let r = play_schedule(l, m, &s, n)
                        .unwrap_or_else(|e| panic!("{}/{mname}: {e}", l.name));
                    assert!(
                        r.analytic_cycles >= r.total_cycles,
                        "{}/{mname} n={n}: analytic {} < exact {}",
                        l.name,
                        r.analytic_cycles,
                        r.total_cycles
                    );
                    assert!(
                        r.analytic_cycles - r.total_cycles < u64::from(s.ii),
                        "{}/{mname} n={n}: analytic {} drifts a full II from exact {} (II {})",
                        l.name,
                        r.analytic_cycles,
                        r.total_cycles,
                        s.ii
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 200, "only {checked} (machine, loop, trip) points checked");
}

#[test]
fn private_comm_slots_survive_overlapped_iterations() {
    // Regression for the first real bugs this executor caught. Selective
    // vectorization communicates scalar↔vector values through
    // `iteration_private` comm arrays with invariant addressing
    // (`@a[0·i+k]`); the dependence graph carries no cross-iteration
    // edges on them, so on the wider-vector machines the scheduler
    // overlaps iteration `j+1`'s comm store past iteration `j`'s comm
    // load (su2cor.gaugemul on `vl4`: store at t=19, load at t=35 with
    // II 13). Before the executors renamed private arrays per in-flight
    // iteration (`sim/src/privrot.rs`), the overlapped replay silently
    // corrupted the slot and the executed state diverged from the
    // reference engine.
    let mut reg = MachineRegistry::builtin();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines");
    reg.load_dir(&dir).expect("examples/machines must parse");
    for (mname, suite, kernel) in
        [("vl4", "su2cor", "gaugemul"), ("mem4", "mgrid", "psinv")]
    {
        let m = reg.get(mname).unwrap_or_else(|| panic!("machine {mname} missing"));
        let suite = sv_workloads::benchmark(suite).expect("suite exists");
        let mut l = suite
            .loops
            .iter()
            .find(|l| l.name.ends_with(kernel))
            .unwrap_or_else(|| panic!("{kernel} missing from suite"))
            .clone();
        l.invocations = 1;
        let cfg = DriverConfig { strategy: Strategy::Selective, ..DriverConfig::default() };
        let (_, _, pieces) = compile_executed(&l, m, &cfg)
            .unwrap_or_else(|e| panic!("{kernel}/{mname}: {e}"));
        // The overlapped pieces must also hold the timing gate.
        for p in &pieces {
            assert_eq!(p.report.stall_cycles, 0, "{}/{mname}", p.piece);
        }
    }
}

#[test]
fn executed_selfcheck_reports_both_gates() {
    // The combined gate used by `--executed-selfcheck`: state and timing
    // in one call, on a kernel with a cleanup piece (non-multiple trip).
    let m = MachineConfig::paper_default();
    let mut l = synth_loop("gate", &SynthProfile::broad(), 7);
    l.invocations = 1;
    l.trip.count = 37;
    for s in Strategy::ALL {
        let Ok(c) = sv_core::compile(&l, &m, s) else { continue };
        let pieces = executed_selfcheck(&c, &m)
            .unwrap_or_else(|e| panic!("{s}: {e}"));
        for p in &pieces {
            assert_eq!(p.report.stall_cycles, 0, "{s}/{}", p.piece);
        }
    }
}
