//! Additional simulator behaviour tests.

use sv_core::{compile, Strategy};
use sv_ir::{LoopBuilder, OpKind, Operand, ScalarType};
use sv_machine::MachineConfig;
use sv_sim::{
    execute_loop, play_schedule, run_compiled, run_source, Memory, Scalar,
};

#[test]
fn run_source_reports_live_outs_by_name() {
    let mut b = LoopBuilder::new("two_reds");
    b.trip(16);
    let x = b.array("x", ScalarType::F64, 32);
    let lx = b.load(x, 1, 0);
    let s = b.reduce_add(lx);
    let n = b.fneg(lx);
    let p = b.reduce(OpKind::Max, ScalarType::F64, n);
    let r = run_source(&b.finish());
    let _ = (s, p);
    assert_eq!(r.live_outs.len(), 2);
    assert!(r.live_outs.keys().all(|k| k.starts_with("red")));
    // The max of negated positive data is negative; the sum is positive.
    let vals: Vec<f64> = r.live_outs.values().map(|v| v.as_f64()).collect();
    assert!(vals.iter().any(|&v| v > 0.0));
    assert!(vals.iter().any(|&v| v < 0.0));
}

#[test]
fn invariant_refs_read_and_write_one_cell() {
    // s[0] accumulates through memory: load s[0], add, store s[0].
    let mut b = LoopBuilder::new("memacc");
    b.trip(10);
    let x = b.array("x", ScalarType::F64, 16);
    let s = b.array("s", ScalarType::F64, 4);
    let lx = b.load(x, 1, 0);
    let ls = b.load(s, 0, 0);
    let sum = b.fadd(ls, lx);
    b.store(s, 0, 0, sum);
    let l = b.finish();
    let mut mem = Memory::for_arrays(&l.arrays);
    // Array `s` has Data fill; capture its initial cell.
    let init = mem.read(1, 0).as_f64();
    let expect: f64 = (0..10).map(|e| mem.read(0, e).as_f64()).sum::<f64>() + init;
    execute_loop(&l, &mut mem, 0..10);
    assert!(mem.read(1, 0).approx_eq(Scalar::F(expect)));
}

#[test]
fn min_reduction_starts_at_identity() {
    let mut b = LoopBuilder::new("minred");
    b.trip(12);
    let x = b.array("x", ScalarType::F64, 16);
    let lx = b.load(x, 1, 0);
    b.reduce(OpKind::Min, ScalarType::F64, lx);
    let l = b.finish();
    let r = run_source(&l);
    let mem = Memory::for_arrays(&l.arrays);
    let expect = (0..12).map(|e| mem.read(0, e).as_f64()).fold(f64::INFINITY, f64::min);
    assert!(r.live_outs.values().next().unwrap().approx_eq(Scalar::F(expect)));
}

#[test]
fn integer_loops_execute_exactly() {
    let mut b = LoopBuilder::new("ints");
    b.trip(20);
    let x = b.array("ix", ScalarType::I64, 32);
    let y = b.array("iy", ScalarType::I64, 32);
    let lx = b.load(x, 1, 0);
    let sq = b.imul(lx, lx);
    let inc = b.bin(OpKind::Add, ScalarType::I64, Operand::def(sq), Operand::iv());
    b.store(y, 1, 0, inc);
    let l = b.finish();
    let mut mem = Memory::for_arrays(&l.arrays);
    execute_loop(&l, &mut mem, 0..20);
    for i in 0..20i64 {
        let v = mem.read(0, i).as_i64();
        assert_eq!(mem.read(1, i), Scalar::I(v * v + i));
    }
    // And the compiled versions agree.
    let m = MachineConfig::paper_default();
    for s in Strategy::ALL {
        let c = compile(&l, &m, s).unwrap();
        let rc = run_compiled(&c);
        for i in 0..20 {
            assert_eq!(rc.memory.array(1)[i], mem.array(1)[i], "under {s}");
        }
    }
}

#[test]
fn playback_peak_inflight_grows_with_stage_count() {
    // Long-latency chain ⇒ many stages ⇒ many iterations in flight.
    let mut b = LoopBuilder::new("deep");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let d = b.fdiv(lx, lx);
    let e = b.fmul(d, d);
    b.store(y, 1, 0, e);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let g = sv_analysis::DepGraph::build(&l);
    let s = sv_modsched::modulo_schedule(&l, &g, &m).unwrap();
    let r = play_schedule(&l, &m, &s, 500).unwrap();
    assert!(r.peak_inflight >= 1);
    assert!(r.peak_inflight <= s.stage_count);
    assert_eq!(r.total_cycles, 499 * u64::from(s.ii) + u64::from(s.length));
}

#[test]
fn multi_segment_compiled_runs_share_expansion_state() {
    // Traditional distribution on a mixed loop: the reduction's input
    // flows through an expansion array between the two loops; the final
    // live-out must equal the source's.
    let mut b = LoopBuilder::new("mixed");
    b.trip(40);
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let sc = b.fmul(lx, lx);
    b.store(y, 1, 0, sc);
    b.reduce_add(sc);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let c = compile(&l, &m, Strategy::Traditional).unwrap();
    assert!(c.segments.len() >= 2, "distribution expected");
    let a = run_source(&l);
    let bb = run_compiled(&c);
    for (k, v) in &a.live_outs {
        assert!(v.approx_eq(bb.live_outs[k]), "live-out {k}");
    }
}
