//! Functional execution of the *flat* prologue/kernel/epilogue layout.
//!
//! [`crate::execute_pipelined`] executes a modulo schedule from its issue
//! times; this module instead walks the emitted three-part code layout
//! ([`sv_modsched::emit_flat`]) the way a fetch unit would: prologue rows
//! once, kernel rows `n − SC + 1` times, epilogue rows once. Matching the
//! in-order interpreter proves the *layout* (not just the schedule it was
//! derived from) launches every operation instance exactly once, in a
//! dependence-correct order.

use crate::interp::LiveOutValue;
use crate::memory::Memory;
use sv_ir::Loop;
use sv_modsched::FlatListing;

/// Materialize the launch sequence of a flat layout: prologue rows once,
/// kernel rows `iterations − SC + 1` times, epilogue rows once. Shared by
/// the fast and reference flat executors so both walk the exact same
/// event order.
///
/// # Panics
///
/// Panics when `iterations < stage_count` (the layout's prologue assumes
/// a full pipeline; shorter trips run in the cleanup loop in real code).
pub(crate) fn flat_sequence(flat: &FlatListing, iterations: u64) -> Vec<(u64, usize)> {
    let sc = u64::from(flat.stage_count);
    assert!(
        iterations >= sc,
        "flat layout needs at least stage_count iterations"
    );
    let mut seq: Vec<(u64, usize)> = Vec::new();
    for row in &flat.prologue {
        for &(op, j) in row {
            seq.push((j, op.index()));
        }
    }
    for t in 0..(iterations - sc + 1) {
        for row in &flat.kernel {
            for &(op, stage) in row {
                let j = t + (sc - 1) - stage;
                seq.push((j, op.index()));
            }
        }
    }
    for row in &flat.epilogue {
        for &(op, back) in row {
            let j = iterations - 1 - back;
            seq.push((j, op.index()));
        }
    }
    seq
}

/// Execute `iterations ≥ stage_count` iterations of `l` by walking the
/// flat layout, mutating `mem`; returns the live-outs after the drain.
///
/// Runs on the pre-decoded fast engine ([`crate::decoded`]); the original
/// interpreter survives as [`crate::reference::execute_flat`].
///
/// # Panics
///
/// Panics when `iterations < stage_count` (the layout's prologue assumes a
/// full pipeline; shorter trips run in the cleanup loop in real code) or
/// when the layout launches an instance out of dependence order — which
/// would be an emission bug.
pub fn execute_flat(
    l: &Loop,
    flat: &FlatListing,
    mem: &mut Memory,
    iterations: u64,
) -> Vec<LiveOutValue> {
    let seq = flat_sequence(flat, iterations);
    crate::decoded::run_sequence(l, mem, &seq, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_loop;
    use sv_analysis::DepGraph;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;
    use sv_modsched::{emit_flat, modulo_schedule};

    fn check(l: &Loop, n_extra: u64) {
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, &m).unwrap();
        let flat = emit_flat(l, &s);
        let n = u64::from(flat.stage_count) + n_extra;
        let mut mem_a = Memory::for_arrays(&l.arrays);
        let mut mem_b = mem_a.clone();
        let outs_a = execute_loop(l, &mut mem_a, 0..n);
        let outs_b = execute_flat(l, &flat, &mut mem_b, n);
        for i in 0..l.arrays.len() as u32 {
            for (e, (va, vb)) in mem_a.array(i).iter().zip(mem_b.array(i)).enumerate() {
                assert!(va.approx_eq(*vb), "{}: array {i}[{e}]", l.name);
            }
        }
        for (a, b) in outs_a.iter().zip(&outs_b) {
            assert!(a.value.approx_eq(b.value), "{}: live-out {}", l.name, a.name);
        }
    }

    #[test]
    fn flat_copy_loop_matches() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        check(&b.finish(), 40);
    }

    #[test]
    fn flat_reduction_matches() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let sq = b.fmul(lx, lx);
        b.reduce_add(sq);
        check(&b.finish(), 33);
    }

    #[test]
    fn flat_memory_recurrence_matches() {
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 128);
        let la = b.load(a, 1, 0);
        let n = b.fabs(la);
        b.store(a, 1, 4, n);
        check(&b.finish(), 25);
    }

    #[test]
    fn flat_exact_stage_count_iterations() {
        let mut b = LoopBuilder::new("tight");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let m1 = b.fmul(lx, lx);
        b.store(y, 1, 0, m1);
        check(&b.finish(), 0); // n == SC: one kernel execution
    }
}
