//! Functional execution of the *flat* prologue/kernel/epilogue layout.
//!
//! [`crate::execute_pipelined`] executes a modulo schedule from its issue
//! times; this module instead walks the emitted three-part code layout
//! ([`sv_modsched::emit_flat`]) the way a fetch unit would: prologue rows
//! once, kernel rows `n − SC + 1` times, epilogue rows once. Matching the
//! in-order interpreter proves the *layout* (not just the schedule it was
//! derived from) launches every operation instance exactly once, in a
//! dependence-correct order.

use crate::interp::LiveOutValue;
use crate::memory::Memory;
use sv_ir::Loop;
use sv_modsched::FlatListing;

/// Materialize the launch sequence of a flat layout: prologue rows once,
/// kernel rows `iterations − SC + 1` times, epilogue rows once. A
/// truncated short-trip layout ([`sv_modsched::emit_flat_for`] with
/// `n < SC`) is its prologue alone. Shared by the fast and reference flat
/// executors so both walk the exact same event order.
///
/// # Panics
///
/// Panics when a general layout is given fewer than `stage_count`
/// iterations (its prologue assumes a full pipeline — short trips need a
/// truncated layout) or a truncated layout is given a different trip than
/// it was emitted for.
pub(crate) fn flat_sequence(flat: &FlatListing, iterations: u64) -> Vec<(u64, usize)> {
    let sc = u64::from(flat.stage_count);
    let mut seq: Vec<(u64, usize)> = Vec::new();
    for row in &flat.prologue {
        for &(op, j) in row {
            seq.push((j, op.index()));
        }
    }
    if flat.truncated_for.is_some() {
        // The truncated layout runs every iteration from the prologue;
        // kernel_executions both validates the trip and returns 0.
        assert_eq!(flat.kernel_executions(iterations), 0);
        return seq;
    }
    assert!(
        iterations >= sc,
        "flat layout needs at least stage_count iterations"
    );
    for t in 0..(iterations - sc + 1) {
        for row in &flat.kernel {
            for &(op, stage) in row {
                let j = t + (sc - 1) - stage;
                seq.push((j, op.index()));
            }
        }
    }
    for row in &flat.epilogue {
        for &(op, back) in row {
            let j = iterations - 1 - back;
            seq.push((j, op.index()));
        }
    }
    seq
}

/// Execute `iterations` iterations of `l` by walking the flat layout,
/// mutating `mem`; returns the live-outs after the drain. General layouts
/// need `iterations ≥ stage_count`; truncated layouts
/// ([`sv_modsched::emit_flat_for`]) carry their own short trip.
///
/// Runs on the pre-decoded fast engine ([`crate::decoded`]); the original
/// interpreter survives as [`crate::reference::execute_flat`].
///
/// # Panics
///
/// Panics when `iterations` does not fit the layout (see
/// [`flat_sequence`]) or when the layout launches an instance out of
/// dependence order — which would be an emission bug.
pub fn execute_flat(
    l: &Loop,
    flat: &FlatListing,
    mem: &mut Memory,
    iterations: u64,
) -> Vec<LiveOutValue> {
    let seq = flat_sequence(flat, iterations);
    crate::decoded::run_sequence(l, mem, &seq, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_loop;
    use sv_analysis::DepGraph;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;
    use sv_modsched::{emit_flat, modulo_schedule};

    fn check(l: &Loop, n_extra: u64) {
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, &m).unwrap();
        let flat = emit_flat(l, &s);
        let n = u64::from(flat.stage_count) + n_extra;
        let mut mem_a = Memory::for_arrays(&l.arrays);
        let mut mem_b = mem_a.clone();
        let outs_a = execute_loop(l, &mut mem_a, 0..n);
        let outs_b = execute_flat(l, &flat, &mut mem_b, n);
        for i in 0..l.arrays.len() as u32 {
            for (e, (va, vb)) in mem_a.array(i).iter().zip(mem_b.array(i)).enumerate() {
                assert!(va.approx_eq(*vb), "{}: array {i}[{e}]", l.name);
            }
        }
        for (a, b) in outs_a.iter().zip(&outs_b) {
            assert!(a.value.approx_eq(b.value), "{}: live-out {}", l.name, a.name);
        }
    }

    #[test]
    fn flat_copy_loop_matches() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        check(&b.finish(), 40);
    }

    #[test]
    fn flat_reduction_matches() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let sq = b.fmul(lx, lx);
        b.reduce_add(sq);
        check(&b.finish(), 33);
    }

    #[test]
    fn flat_memory_recurrence_matches() {
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 128);
        let la = b.load(a, 1, 0);
        let n = b.fabs(la);
        b.store(a, 1, 4, n);
        check(&b.finish(), 25);
    }

    #[test]
    fn flat_truncated_short_trips_match_inorder() {
        let mut b = LoopBuilder::new("short");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let m1 = b.fmul(lx, lx);
        let a = b.fadd(m1, lx);
        b.store(y, 1, 0, a);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        assert!(s.stage_count >= 2, "needs a multi-stage pipeline");
        for n in [0, 1, u64::from(s.stage_count) - 1] {
            let flat = sv_modsched::emit_flat_for(&l, &s, n);
            let mut mem_a = Memory::for_arrays(&l.arrays);
            let mut mem_b = mem_a.clone();
            let outs_a = execute_loop(&l, &mut mem_a, 0..n);
            let outs_b = execute_flat(&l, &flat, &mut mem_b, n);
            for i in 0..l.arrays.len() as u32 {
                for (va, vb) in mem_a.array(i).iter().zip(mem_b.array(i)) {
                    assert!(va.identical(*vb), "n={n}: array {i}");
                }
            }
            for (a, b) in outs_a.iter().zip(&outs_b) {
                assert!(a.value.identical(b.value), "n={n}: live-out {}", a.name);
            }
        }
    }

    #[test]
    fn flat_exact_stage_count_iterations() {
        let mut b = LoopBuilder::new("tight");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let m1 = b.fmul(lx, lx);
        b.store(y, 1, 0, m1);
        check(&b.finish(), 0); // n == SC: one kernel execution
    }
}
