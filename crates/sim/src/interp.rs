//! Functional interpretation of loops in any form.

use crate::memory::{Memory, Scalar};
use sv_ir::{CarriedInit, CmpPred, Loop, OpKind, ScalarType};

/// A live-out observation after a loop (piece) executed.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveOutValue {
    /// The live-out's name (stable across transformed versions).
    pub name: String,
    /// Final scalar value (horizontal combines and lane extraction
    /// applied).
    pub value: Scalar,
    /// How values of the same name from separately executed pieces merge.
    pub combine: Option<OpKind>,
}

/// A runtime value: one element or a vector of lanes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    S(Scalar),
    V(Vec<Scalar>),
}

impl Value {
    pub(crate) fn lanes(&self, width: usize) -> Vec<Scalar> {
        match self {
            Value::S(s) => vec![*s; width],
            Value::V(v) => {
                debug_assert_eq!(v.len(), width);
                v.clone()
            }
        }
    }

    pub(crate) fn scalar(&self) -> Scalar {
        match self {
            Value::S(s) => *s,
            Value::V(v) => *v.last().expect("non-empty vector"),
        }
    }
}

pub(crate) fn init_scalar(init: CarriedInit, ty: ScalarType) -> Scalar {
    let f = match init {
        CarriedInit::Zero => 0.0,
        CarriedInit::One => 1.0,
        CarriedInit::PosInf => f64::INFINITY,
        CarriedInit::NegInf => f64::NEG_INFINITY,
    };
    Scalar::F(f).coerce(ty)
}

pub(crate) fn apply_binary(kind: OpKind, ty: ScalarType, a: Scalar, b: Scalar) -> Scalar {
    match ty {
        ScalarType::F64 => {
            let (a, b) = (a.as_f64(), b.as_f64());
            let r = match kind {
                OpKind::Add => a + b,
                OpKind::Sub => a - b,
                OpKind::Mul => a * b,
                OpKind::Div => a / b,
                OpKind::Min => a.min(b),
                OpKind::Max => a.max(b),
                OpKind::Cmp(p) => return Scalar::F(if cmp_f64(p, a, b) { 1.0 } else { 0.0 }),
                _ => unreachable!("binary kind {kind:?}"),
            };
            Scalar::F(r)
        }
        ScalarType::I64 => {
            let (a, b) = (a.as_i64(), b.as_i64());
            let r = match kind {
                OpKind::Add => a.wrapping_add(b),
                OpKind::Sub => a.wrapping_sub(b),
                OpKind::Mul => a.wrapping_mul(b),
                // Integer division by zero yields 0 in the simulator so
                // synthetic workloads cannot fault.
                OpKind::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                OpKind::Min => a.min(b),
                OpKind::Max => a.max(b),
                OpKind::Cmp(p) => {
                    let hit = match p {
                        CmpPred::Eq => a == b,
                        CmpPred::Ne => a != b,
                        CmpPred::Lt => a < b,
                        CmpPred::Le => a <= b,
                    };
                    i64::from(hit)
                }
                _ => unreachable!("binary kind {kind:?}"),
            };
            Scalar::I(r)
        }
    }
}

fn cmp_f64(p: CmpPred, a: f64, b: f64) -> bool {
    match p {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Lt => a < b,
        CmpPred::Le => a <= b,
    }
}

/// Truthiness of a select condition: any nonzero value picks the first
/// arm. Shared by every engine so select semantics stay bit-identical.
pub(crate) fn is_truthy(cond: Scalar) -> bool {
    match cond {
        Scalar::F(f) => f != 0.0,
        Scalar::I(i) => i != 0,
    }
}

/// `cond != 0 ? a : b`, coerced to `ty`. The arms pass through untouched
/// (modulo type coercion), so a select can never perturb bits.
pub(crate) fn apply_select(ty: ScalarType, cond: Scalar, a: Scalar, b: Scalar) -> Scalar {
    if is_truthy(cond) { a } else { b }.coerce(ty)
}

pub(crate) fn apply_unary(kind: OpKind, ty: ScalarType, a: Scalar) -> Scalar {
    match ty {
        ScalarType::F64 => {
            let a = a.as_f64();
            let r = match kind {
                OpKind::Neg => -a,
                OpKind::Abs => a.abs(),
                OpKind::Sqrt => a.abs().sqrt(),
                OpKind::Copy | OpKind::Merge => a,
                _ => unreachable!("unary kind {kind:?}"),
            };
            Scalar::F(r)
        }
        ScalarType::I64 => {
            let a = a.as_i64();
            let r = match kind {
                OpKind::Neg => a.wrapping_neg(),
                OpKind::Abs => a.wrapping_abs(),
                OpKind::Sqrt => (a.wrapping_abs() as f64).sqrt() as i64,
                OpKind::Copy | OpKind::Merge => a,
                _ => unreachable!("unary kind {kind:?}"),
            };
            Scalar::I(r)
        }
    }
}

/// Execute iterations `iters` (in the loop's own index space) of `l`
/// against `mem`, returning its live-out values. Loop-carried reads that
/// predate `iters.start` observe each producer's [`CarriedInit`].
///
/// Runs on the pre-decoded fast engine ([`crate::decoded`]); the original
/// interpreter survives as [`crate::reference::execute_loop`] and the two
/// are continuously differentially tested against each other.
pub fn execute_loop(
    l: &Loop,
    mem: &mut Memory,
    iters: std::ops::Range<u64>,
) -> Vec<LiveOutValue> {
    crate::decoded::run_inorder(l, mem, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, Operand, ScalarType};

    #[test]
    fn executes_copy_loop() {
        let mut b = LoopBuilder::new("copy");
        b.trip(8);
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        execute_loop(&l, &mut mem, 0..8);
        for e in 0..8 {
            assert_eq!(mem.read(0, e), mem.read(1, e));
        }
    }

    #[test]
    fn reduction_accumulates() {
        let mut b = LoopBuilder::new("sum");
        b.trip(10);
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        let outs = execute_loop(&l, &mut mem, 0..10);
        let expect: f64 = (0..10).map(|e| mem.read(0, e).as_f64()).sum();
        assert!(outs[0].value.approx_eq(Scalar::F(expect)));
        assert_eq!(outs[0].combine, Some(OpKind::Add));
    }

    #[test]
    fn carried_reads_before_start_see_init() {
        // y[i] = x[i] + (x-value from previous iteration); iteration 0
        // reads init 0.
        let mut b = LoopBuilder::new("carry");
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.bin(
            OpKind::Add,
            ScalarType::F64,
            Operand::def(lx),
            Operand::carried(lx, 1),
        );
        b.store(y, 1, 0, s);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        execute_loop(&l, &mut mem, 0..4);
        assert!(mem.read(1, 0).approx_eq(mem.read(0, 0)));
        let want = Scalar::F(mem.read(0, 1).as_f64() + mem.read(0, 0).as_f64());
        assert!(mem.read(1, 1).approx_eq(want));
    }

    #[test]
    fn memory_recurrence_chains() {
        // a[i+1] = 2 * a[i] starting from a[0].
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 16);
        let la = b.load(a, 1, 0);
        let m = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(la), Operand::ConstF(2.0));
        b.store(a, 1, 1, m);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        let a0 = mem.read(0, 0).as_f64();
        execute_loop(&l, &mut mem, 0..4);
        assert!(mem.read(0, 4).approx_eq(Scalar::F(a0 * 16.0)));
    }

    #[test]
    fn iv_operand_sees_absolute_iteration() {
        let mut b = LoopBuilder::new("iv");
        let x = b.array("x", ScalarType::I64, 32);
        let v = b.bin(OpKind::Add, ScalarType::I64, Operand::iv(), Operand::ConstI(0));
        b.store(x, 1, 0, v);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        execute_loop(&l, &mut mem, 5..9);
        for i in 5..9 {
            assert_eq!(mem.read(0, i), Scalar::I(i));
        }
    }

    #[test]
    fn zero_iterations_yields_init_liveouts() {
        let mut b = LoopBuilder::new("empty");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        let outs = execute_loop(&l, &mut mem, 0..0);
        assert_eq!(outs[0].value, Scalar::F(0.0));
    }
}
