//! Functional interpretation of loops in any form.

use crate::memory::{Memory, Scalar};
use sv_ir::{CarriedInit, Loop, OpKind, Operand, Operation, ScalarType, VectorForm};

/// A live-out observation after a loop (piece) executed.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveOutValue {
    /// The live-out's name (stable across transformed versions).
    pub name: String,
    /// Final scalar value (horizontal combines and lane extraction
    /// applied).
    pub value: Scalar,
    /// How values of the same name from separately executed pieces merge.
    pub combine: Option<OpKind>,
}

/// A runtime value: one element or a vector of lanes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    S(Scalar),
    V(Vec<Scalar>),
}

impl Value {
    pub(crate) fn lanes(&self, width: usize) -> Vec<Scalar> {
        match self {
            Value::S(s) => vec![*s; width],
            Value::V(v) => {
                debug_assert_eq!(v.len(), width);
                v.clone()
            }
        }
    }

    pub(crate) fn scalar(&self) -> Scalar {
        match self {
            Value::S(s) => *s,
            Value::V(v) => *v.last().expect("non-empty vector"),
        }
    }
}

pub(crate) fn init_scalar(init: CarriedInit, ty: ScalarType) -> Scalar {
    let f = match init {
        CarriedInit::Zero => 0.0,
        CarriedInit::One => 1.0,
        CarriedInit::PosInf => f64::INFINITY,
        CarriedInit::NegInf => f64::NEG_INFINITY,
    };
    Scalar::F(f).coerce(ty)
}

pub(crate) fn apply_binary(kind: OpKind, ty: ScalarType, a: Scalar, b: Scalar) -> Scalar {
    match ty {
        ScalarType::F64 => {
            let (a, b) = (a.as_f64(), b.as_f64());
            let r = match kind {
                OpKind::Add => a + b,
                OpKind::Sub => a - b,
                OpKind::Mul => a * b,
                OpKind::Div => a / b,
                OpKind::Min => a.min(b),
                OpKind::Max => a.max(b),
                _ => unreachable!("binary kind {kind:?}"),
            };
            Scalar::F(r)
        }
        ScalarType::I64 => {
            let (a, b) = (a.as_i64(), b.as_i64());
            let r = match kind {
                OpKind::Add => a.wrapping_add(b),
                OpKind::Sub => a.wrapping_sub(b),
                OpKind::Mul => a.wrapping_mul(b),
                // Integer division by zero yields 0 in the simulator so
                // synthetic workloads cannot fault.
                OpKind::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                OpKind::Min => a.min(b),
                OpKind::Max => a.max(b),
                _ => unreachable!("binary kind {kind:?}"),
            };
            Scalar::I(r)
        }
    }
}

pub(crate) fn apply_unary(kind: OpKind, ty: ScalarType, a: Scalar) -> Scalar {
    match ty {
        ScalarType::F64 => {
            let a = a.as_f64();
            let r = match kind {
                OpKind::Neg => -a,
                OpKind::Abs => a.abs(),
                OpKind::Sqrt => a.abs().sqrt(),
                OpKind::Copy | OpKind::Merge => a,
                _ => unreachable!("unary kind {kind:?}"),
            };
            Scalar::F(r)
        }
        ScalarType::I64 => {
            let a = a.as_i64();
            let r = match kind {
                OpKind::Neg => a.wrapping_neg(),
                OpKind::Abs => a.wrapping_abs(),
                OpKind::Sqrt => (a.wrapping_abs() as f64).sqrt() as i64,
                OpKind::Copy | OpKind::Merge => a,
                _ => unreachable!("unary kind {kind:?}"),
            };
            Scalar::I(r)
        }
    }
}

struct Interp<'a> {
    l: &'a Loop,
    /// Per-op value history; `history[op][local_iter % depth]`.
    history: Vec<Vec<Value>>,
    depth: Vec<usize>,
    k: u32,
}

impl<'a> Interp<'a> {
    fn new(l: &'a Loop) -> Interp<'a> {
        let n = l.ops.len();
        let mut depth = vec![1usize; n];
        for op in &l.ops {
            for (p, d) in op.def_uses() {
                let need = d as usize + 1;
                if depth[p.index()] < need {
                    depth[p.index()] = need;
                }
            }
        }
        let history = depth.iter().map(|&d| Vec::with_capacity(d)).collect();
        Interp { l, history, depth, k: l.vector_width.max(1) }
    }

    /// The value `op` defined `dist` iterations before local iteration
    /// `local`, or its init value when that predates the run.
    fn read_def(&self, op: usize, dist: u32, local: u64) -> Value {
        if u64::from(dist) > local {
            let o = &self.l.ops[op];
            let init = init_scalar(o.carried_init, o.opcode.ty);
            return match o.opcode.form {
                VectorForm::Scalar => Value::S(init),
                VectorForm::Vector => Value::V(vec![init; self.k as usize]),
            };
        }
        let idx = ((local - u64::from(dist)) % self.depth[op] as u64) as usize;
        self.history[op][idx].clone()
    }

    fn eval_operand(&self, o: &Operand, consumer: &Operation, local: u64, abs_iter: u64) -> Value {
        match *o {
            Operand::Def { op, distance } => self.read_def(op.index(), distance, local),
            Operand::LiveIn(id) => {
                let li = &self.l.live_ins[id.0 as usize];
                Value::S(Memory::live_in_value(&li.name, li.ty))
            }
            Operand::ConstI(v) => Value::S(Scalar::I(v)),
            Operand::ConstF(v) => Value::S(Scalar::F(v)),
            Operand::Iv { scale, offset } => {
                if consumer.opcode.form == VectorForm::Vector {
                    // One lane advances one *original* iteration, i.e.
                    // scale / iter_scale elements of the affine function.
                    let step = scale / i64::from(self.l.iter_scale);
                    Value::V(
                        (0..self.k as i64)
                            .map(|lane| {
                                Scalar::I(scale * abs_iter as i64 + offset + lane * step)
                            })
                            .collect(),
                    )
                } else {
                    Value::S(Scalar::I(scale * abs_iter as i64 + offset))
                }
            }
        }
    }

    fn exec_op(&mut self, op: &Operation, mem: &mut Memory, local: u64, abs_iter: u64) {
        let ty = op.opcode.ty;
        let vector = op.opcode.form == VectorForm::Vector;
        let operands: Vec<Value> = op
            .operands
            .iter()
            .map(|o| self.eval_operand(o, op, local, abs_iter))
            .collect();
        let result: Option<Value> = match op.opcode.kind {
            OpKind::Load => {
                let r = op.mem_ref();
                let base = r.stride * abs_iter as i64 + r.offset;
                if vector {
                    let lanes = (0..r.width as i64)
                        .map(|j| mem.read(r.array.0, base + j).coerce(ty))
                        .collect();
                    Some(Value::V(lanes))
                } else {
                    Some(Value::S(mem.read(r.array.0, base).coerce(ty)))
                }
            }
            OpKind::Store => {
                let r = op.mem_ref();
                let base = r.stride * abs_iter as i64 + r.offset;
                if vector {
                    let lanes = operands[0].lanes(r.width as usize);
                    for (j, v) in lanes.into_iter().enumerate() {
                        mem.write(r.array.0, base + j as i64, v);
                    }
                } else {
                    mem.write(r.array.0, base, operands[0].scalar());
                }
                None
            }
            OpKind::Pack => {
                let lanes = operands.iter().map(|v| v.scalar().coerce(ty)).collect();
                Some(Value::V(lanes))
            }
            OpKind::Extract => {
                let lane = operands[1].scalar().as_i64() as usize;
                let lanes = operands[0].lanes(self.k as usize);
                Some(Value::S(lanes[lane]))
            }
            kind if kind.arity() == 2 => {
                if vector {
                    let a = operands[0].lanes(self.k as usize);
                    let b = operands[1].lanes(self.k as usize);
                    Some(Value::V(
                        a.into_iter()
                            .zip(b)
                            .map(|(x, y)| apply_binary(kind, ty, x, y))
                            .collect(),
                    ))
                } else {
                    Some(Value::S(apply_binary(
                        kind,
                        ty,
                        operands[0].scalar(),
                        operands[1].scalar(),
                    )))
                }
            }
            kind => {
                if vector {
                    let a = operands[0].lanes(self.k as usize);
                    Some(Value::V(
                        a.into_iter().map(|x| apply_unary(kind, ty, x)).collect(),
                    ))
                } else {
                    Some(Value::S(apply_unary(kind, ty, operands[0].scalar())))
                }
            }
        };
        let slot = (local % self.depth[op.id.index()] as u64) as usize;
        let value = result.unwrap_or(Value::S(Scalar::I(0)));
        let hist = &mut self.history[op.id.index()];
        if hist.len() <= slot {
            hist.resize(slot + 1, value.clone());
        }
        hist[slot] = value;
    }
}

/// Execute iterations `iters` (in the loop's own index space) of `l`
/// against `mem`, returning its live-out values. Loop-carried reads that
/// predate `iters.start` observe each producer's [`CarriedInit`].
pub fn execute_loop(
    l: &Loop,
    mem: &mut Memory,
    iters: std::ops::Range<u64>,
) -> Vec<LiveOutValue> {
    let mut interp = Interp::new(l);
    let count = iters.end.saturating_sub(iters.start);
    for local in 0..count {
        let abs = iters.start + local;
        for op in &l.ops {
            interp.exec_op(op, mem, local, abs);
        }
    }
    l.live_outs
        .iter()
        .map(|lo| {
            let v = if count == 0 {
                interp.read_def(lo.op.index(), 1, 0)
            } else {
                interp.read_def(lo.op.index(), 0, count - 1)
            };
            let ty = l.ops[lo.op.index()].opcode.ty;
            let value = match (&v, lo.horizontal) {
                (Value::V(lanes), Some(kind)) => lanes
                    .iter()
                    .copied()
                    .reduce(|a, b| apply_binary(kind, ty, a, b))
                    .expect("non-empty lanes"),
                (Value::V(lanes), None) => *lanes.last().expect("non-empty lanes"),
                (Value::S(s), _) => *s,
            };
            LiveOutValue { name: lo.name.clone(), value, combine: lo.combine }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    #[test]
    fn executes_copy_loop() {
        let mut b = LoopBuilder::new("copy");
        b.trip(8);
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        execute_loop(&l, &mut mem, 0..8);
        for e in 0..8 {
            assert_eq!(mem.read(0, e), mem.read(1, e));
        }
    }

    #[test]
    fn reduction_accumulates() {
        let mut b = LoopBuilder::new("sum");
        b.trip(10);
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        let outs = execute_loop(&l, &mut mem, 0..10);
        let expect: f64 = (0..10).map(|e| mem.read(0, e).as_f64()).sum();
        assert!(outs[0].value.approx_eq(Scalar::F(expect)));
        assert_eq!(outs[0].combine, Some(OpKind::Add));
    }

    #[test]
    fn carried_reads_before_start_see_init() {
        // y[i] = x[i] + (x-value from previous iteration); iteration 0
        // reads init 0.
        let mut b = LoopBuilder::new("carry");
        let x = b.array("x", ScalarType::F64, 16);
        let y = b.array("y", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.bin(
            OpKind::Add,
            ScalarType::F64,
            Operand::def(lx),
            Operand::carried(lx, 1),
        );
        b.store(y, 1, 0, s);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        execute_loop(&l, &mut mem, 0..4);
        assert!(mem.read(1, 0).approx_eq(mem.read(0, 0)));
        let want = Scalar::F(mem.read(0, 1).as_f64() + mem.read(0, 0).as_f64());
        assert!(mem.read(1, 1).approx_eq(want));
    }

    #[test]
    fn memory_recurrence_chains() {
        // a[i+1] = 2 * a[i] starting from a[0].
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 16);
        let la = b.load(a, 1, 0);
        let m = b.bin(OpKind::Mul, ScalarType::F64, Operand::def(la), Operand::ConstF(2.0));
        b.store(a, 1, 1, m);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        let a0 = mem.read(0, 0).as_f64();
        execute_loop(&l, &mut mem, 0..4);
        assert!(mem.read(0, 4).approx_eq(Scalar::F(a0 * 16.0)));
    }

    #[test]
    fn iv_operand_sees_absolute_iteration() {
        let mut b = LoopBuilder::new("iv");
        let x = b.array("x", ScalarType::I64, 32);
        let v = b.bin(OpKind::Add, ScalarType::I64, Operand::iv(), Operand::ConstI(0));
        b.store(x, 1, 0, v);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        execute_loop(&l, &mut mem, 5..9);
        for i in 5..9 {
            assert_eq!(mem.read(0, i), Scalar::I(i));
        }
    }

    #[test]
    fn zero_iterations_yields_init_liveouts() {
        let mut b = LoopBuilder::new("empty");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let mut mem = Memory::for_arrays(&l.arrays);
        let outs = execute_loop(&l, &mut mem, 0..0);
        assert_eq!(outs[0].value, Scalar::F(0.0));
    }
}
