//! Simulated memory: named arrays of typed cells.

use sv_ir::{ArrayDecl, ArrayFill, ScalarType};

/// One machine word: a 64-bit integer or double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// 64-bit signed integer.
    I(i64),
    /// 64-bit IEEE double.
    F(f64),
}

impl Scalar {
    /// The value as f64 (integers convert).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::I(v) => v as f64,
            Scalar::F(v) => v,
        }
    }

    /// The value as i64 (doubles truncate).
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::I(v) => v,
            Scalar::F(v) => v as i64,
        }
    }

    /// Coerce to the given element type.
    pub fn coerce(self, ty: ScalarType) -> Scalar {
        match ty {
            ScalarType::I64 => Scalar::I(self.as_i64()),
            ScalarType::F64 => Scalar::F(self.as_f64()),
        }
    }

    /// Bit-identical equality: same variant and same payload bits, with
    /// `NaN == NaN` (any payload) and `-0.0 != +0.0`. This is the
    /// comparison the fast-vs-reference engine self-checks use — two
    /// implementations of the *same* semantics must agree exactly, not
    /// merely within [`Scalar::approx_eq`]'s reassociation tolerance.
    pub fn identical(self, other: Scalar) -> bool {
        match (self, other) {
            (Scalar::I(a), Scalar::I(b)) => a == b,
            (Scalar::F(a), Scalar::F(b)) => {
                (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
            }
            _ => false,
        }
    }

    /// Approximate equality: exact for integers, relative 1e-9 for floats
    /// (vectorized reductions reassociate, perturbing the last bits).
    pub fn approx_eq(self, other: Scalar) -> bool {
        match (self, other) {
            (Scalar::I(a), Scalar::I(b)) => a == b,
            (a, b) => {
                let (a, b) = (a.as_f64(), b.as_f64());
                if a == b {
                    return true;
                }
                if a.is_nan() || b.is_nan() {
                    return a.is_nan() && b.is_nan();
                }
                if a.is_infinite() || b.is_infinite() {
                    return a == b;
                }
                (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
            }
        }
    }
}

/// Deterministic pseudo-random fill so source and transformed loops see
/// identical array contents. Floats land in `[0.5, 1.5)` (division-safe,
/// min/max-interesting); integers in `[1, 16]`.
fn data_value(array: u32, elem: u64, ty: ScalarType) -> Scalar {
    let mut h = (u64::from(array) << 32) ^ elem ^ 0x9e37_79b9_7f4a_7c15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    match ty {
        ScalarType::F64 => Scalar::F(0.5 + (h % (1 << 20)) as f64 / (1u64 << 20) as f64),
        ScalarType::I64 => Scalar::I(1 + (h % 16) as i64),
    }
}

/// Simulated memory for one loop-family (source and its transforms share
/// the array numbering for the common prefix; transform-added arrays
/// append).
#[derive(Debug, Clone)]
pub struct Memory {
    arrays: Vec<Vec<Scalar>>,
    types: Vec<ScalarType>,
}

impl Memory {
    /// Allocate and fill memory for a set of array declarations.
    pub fn for_arrays(decls: &[ArrayDecl]) -> Memory {
        let mut arrays = Vec::with_capacity(decls.len());
        let mut types = Vec::with_capacity(decls.len());
        for (ai, d) in decls.iter().enumerate() {
            let fill_value = |e: u64| match d.fill {
                ArrayFill::Data => data_value(ai as u32, e, d.ty),
                ArrayFill::Zero => Scalar::F(0.0).coerce(d.ty),
                ArrayFill::One => Scalar::F(1.0).coerce(d.ty),
                ArrayFill::PosInf => Scalar::F(f64::INFINITY),
                ArrayFill::NegInf => Scalar::F(f64::NEG_INFINITY),
            };
            arrays.push((0..d.len).map(fill_value).collect());
            types.push(d.ty);
        }
        Memory { arrays, types }
    }

    /// Read one element.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access — transformed loops must never read
    /// outside their declared arrays.
    pub fn read(&self, array: u32, elem: i64) -> Scalar {
        let a = &self.arrays[array as usize];
        assert!(
            elem >= 0 && (elem as usize) < a.len(),
            "read out of bounds: array {array} elem {elem} len {}",
            a.len()
        );
        a[elem as usize]
    }

    /// Write one element (coerced to the array's type).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn write(&mut self, array: u32, elem: i64, v: Scalar) {
        let ty = self.types[array as usize];
        let a = &mut self.arrays[array as usize];
        assert!(
            elem >= 0 && (elem as usize) < a.len(),
            "write out of bounds: array {array} elem {elem} len {}",
            a.len()
        );
        a[elem as usize] = v.coerce(ty);
    }

    /// Number of arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Whole array contents (for equivalence checks).
    pub fn array(&self, array: u32) -> &[Scalar] {
        &self.arrays[array as usize]
    }

    /// Copy array `idx` from another memory (used to thread shared program
    /// arrays through separately allocated loop pieces).
    ///
    /// # Panics
    ///
    /// Panics when the arrays have different lengths.
    pub fn copy_array_from(&mut self, other: &Memory, idx: u32) {
        let src = &other.arrays[idx as usize];
        let dst = &mut self.arrays[idx as usize];
        assert_eq!(src.len(), dst.len(), "array {idx} shape mismatch");
        dst.copy_from_slice(src);
    }

    /// Temporarily widen an array to `copies` back-to-back copies, each
    /// starting from the array's current contents. Executors that
    /// overlap iterations rename `iteration_private` arrays through this
    /// (see [`crate::privrot`]); every widen is undone by
    /// [`Memory::collapse_array`] before the memory is observable.
    pub(crate) fn widen_array(&mut self, array: u32, copies: u64) {
        let a = &mut self.arrays[array as usize];
        let s = a.len();
        a.reserve(s * (copies as usize - 1));
        for _ in 1..copies {
            a.extend_from_within(0..s);
        }
    }

    /// Undo [`Memory::widen_array`]: copy `keep` (of `size` elements)
    /// becomes the array's final contents.
    pub(crate) fn collapse_array(&mut self, array: u32, size: usize, keep: u64) {
        let a = &mut self.arrays[array as usize];
        let start = keep as usize * size;
        a.copy_within(start..start + size, 0);
        a.truncate(size);
    }

    /// The deterministic live-in value for a name (floats in `[0.5, 1.5)`).
    pub fn live_in_value(name: &str, ty: ScalarType) -> Scalar {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        match ty {
            ScalarType::F64 => Scalar::F(0.5 + (h % (1 << 20)) as f64 / (1u64 << 20) as f64),
            ScalarType::I64 => Scalar::I(1 + (h % 16) as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::ArrayDecl;

    #[test]
    fn data_fill_is_deterministic_and_nonzero() {
        let d = ArrayDecl::plain("x", ScalarType::F64, 64);
        let m1 = Memory::for_arrays(std::slice::from_ref(&d));
        let m2 = Memory::for_arrays(&[d]);
        for e in 0..64 {
            let v = m1.read(0, e);
            assert_eq!(v, m2.read(0, e));
            assert!(v.as_f64() >= 0.5 && v.as_f64() < 1.5);
        }
    }

    #[test]
    fn fills_respect_kind() {
        let mut one = ArrayDecl::plain("t", ScalarType::F64, 4);
        one.fill = ArrayFill::One;
        let m = Memory::for_arrays(&[one]);
        assert_eq!(m.read(0, 3).as_f64(), 1.0);
    }

    #[test]
    fn int_arrays_coerce_on_write() {
        let d = ArrayDecl::plain("i", ScalarType::I64, 4);
        let mut m = Memory::for_arrays(&[d]);
        m.write(0, 1, Scalar::F(3.7));
        assert_eq!(m.read(0, 1), Scalar::I(3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let d = ArrayDecl::plain("x", ScalarType::F64, 4);
        Memory::for_arrays(&[d]).read(0, 4);
    }

    #[test]
    fn approx_eq_tolerates_reassociation() {
        let a = Scalar::F(1.0 + 1e-15);
        let b = Scalar::F(1.0);
        assert!(a.approx_eq(b));
        assert!(!Scalar::F(1.0).approx_eq(Scalar::F(1.1)));
        assert!(Scalar::I(3).approx_eq(Scalar::I(3)));
        assert!(!Scalar::I(3).approx_eq(Scalar::I(4)));
    }

    #[test]
    fn coerce_edge_cases() {
        // NaN truncates to 0 (Rust's saturating `as` cast), infinities
        // saturate, and the i64 domain round-trips through f64 only up to
        // 2^53.
        assert_eq!(Scalar::F(f64::NAN).coerce(ScalarType::I64), Scalar::I(0));
        assert_eq!(Scalar::F(f64::INFINITY).coerce(ScalarType::I64), Scalar::I(i64::MAX));
        assert_eq!(
            Scalar::F(f64::NEG_INFINITY).coerce(ScalarType::I64),
            Scalar::I(i64::MIN)
        );
        assert_eq!(Scalar::F(-0.0).coerce(ScalarType::I64), Scalar::I(0));
        // -0.0 survives an F64 coerce (identity) with its sign bit.
        match Scalar::F(-0.0).coerce(ScalarType::F64) {
            Scalar::F(v) => assert_eq!(v.to_bits(), (-0.0f64).to_bits()),
            v => panic!("wrong variant {v:?}"),
        }
        // Exact i64 → f64 → i64 round-trips below 2^53…
        for v in [0i64, 1, -1, 42, 1 << 52, -(1 << 52), (1 << 53) - 1] {
            assert_eq!(Scalar::I(v).coerce(ScalarType::F64).coerce(ScalarType::I64), Scalar::I(v));
        }
        // …and precision loss above it: 2^53 + 1 is not representable.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            Scalar::I(big).coerce(ScalarType::F64).coerce(ScalarType::I64),
            Scalar::I(big - 1)
        );
        // Truncation (not rounding) toward zero for fractional values.
        assert_eq!(Scalar::F(3.99).coerce(ScalarType::I64), Scalar::I(3));
        assert_eq!(Scalar::F(-3.99).coerce(ScalarType::I64), Scalar::I(-3));
    }

    #[test]
    fn approx_eq_nan_and_infinity() {
        // NaN only matches NaN — never a finite value.
        assert!(Scalar::F(f64::NAN).approx_eq(Scalar::F(f64::NAN)));
        assert!(!Scalar::F(f64::NAN).approx_eq(Scalar::F(0.0)));
        assert!(!Scalar::F(0.0).approx_eq(Scalar::F(f64::NAN)));
        // Infinities compare by sign, and never to finite values.
        assert!(Scalar::F(f64::INFINITY).approx_eq(Scalar::F(f64::INFINITY)));
        assert!(!Scalar::F(f64::INFINITY).approx_eq(Scalar::F(f64::NEG_INFINITY)));
        assert!(!Scalar::F(f64::INFINITY).approx_eq(Scalar::F(1e308)));
        // Signed zeros are approx-equal (0.0 == -0.0 in IEEE compare).
        assert!(Scalar::F(0.0).approx_eq(Scalar::F(-0.0)));
        // Mixed variants compare through f64.
        assert!(Scalar::I(3).approx_eq(Scalar::F(3.0)));
    }

    #[test]
    fn identical_is_bit_exact() {
        // Signed zeros differ bitwise even though they compare ==.
        assert!(!Scalar::F(0.0).identical(Scalar::F(-0.0)));
        assert!(Scalar::F(-0.0).identical(Scalar::F(-0.0)));
        // NaN matches NaN across payloads (any NaN is "the" NaN).
        let other_nan = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(Scalar::F(f64::NAN).identical(Scalar::F(other_nan)));
        // Cross-variant is never identical, even for equal magnitudes.
        assert!(!Scalar::I(3).identical(Scalar::F(3.0)));
        assert!(Scalar::I(3).identical(Scalar::I(3)));
    }

    #[test]
    fn live_in_values_deterministic() {
        let a = Memory::live_in_value("alpha", ScalarType::F64);
        let b = Memory::live_in_value("alpha", ScalarType::F64);
        assert_eq!(a, b);
        assert!(a.as_f64() >= 0.5);
    }
}
