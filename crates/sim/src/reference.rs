//! The original (slow) interpreters, retained verbatim as the reference
//! semantics for the pre-decoded fast engine in [`crate::decoded`].
//!
//! Every executor here mirrors a fast-path entry point one-for-one:
//!
//! | reference                  | fast path                     |
//! |----------------------------|-------------------------------|
//! | [`execute_loop`]           | [`crate::execute_loop`]       |
//! | [`execute_pipelined`]      | [`crate::execute_pipelined`]  |
//! | [`execute_flat`]           | [`crate::execute_flat`]       |
//! | [`run_source`]             | [`crate::run_source`]         |
//! | [`run_compiled`]           | [`crate::run_compiled`]       |
//!
//! These paths are *not* dead weight: `crates/sim/tests/engine_equiv.rs`
//! and the fuzzer's `--oracle-selfcheck` mode (see
//! [`crate::oracle_selfcheck`]) execute both engines on every case and
//! demand bit-identical live-outs and memory. Keep changes to this module
//! semantic-free.

use crate::interp::{apply_binary, apply_select, apply_unary, init_scalar, LiveOutValue, Value};
use crate::memory::{Memory, Scalar};
use crate::run::RunResult;
use std::collections::HashMap;
use sv_core::CompiledLoop;
use sv_ir::{Loop, OpKind, Operand, Operation, VectorForm};
use sv_modsched::{FlatListing, Schedule};

struct Interp<'a> {
    l: &'a Loop,
    /// Per-op value history; `history[op][local_iter % depth]`.
    history: Vec<Vec<Value>>,
    depth: Vec<usize>,
    k: u32,
}

impl<'a> Interp<'a> {
    fn new(l: &'a Loop) -> Interp<'a> {
        let n = l.ops.len();
        let mut depth = vec![1usize; n];
        for op in &l.ops {
            for (p, d) in op.def_uses() {
                let need = d as usize + 1;
                if depth[p.index()] < need {
                    depth[p.index()] = need;
                }
            }
        }
        let history = depth.iter().map(|&d| Vec::with_capacity(d)).collect();
        Interp { l, history, depth, k: l.vector_width.max(1) }
    }

    /// The value `op` defined `dist` iterations before local iteration
    /// `local`, or its init value when that predates the run.
    fn read_def(&self, op: usize, dist: u32, local: u64) -> Value {
        if u64::from(dist) > local {
            let o = &self.l.ops[op];
            let init = init_scalar(o.carried_init, o.opcode.ty);
            return match o.opcode.form {
                VectorForm::Scalar => Value::S(init),
                VectorForm::Vector => Value::V(vec![init; self.k as usize]),
            };
        }
        let idx = ((local - u64::from(dist)) % self.depth[op] as u64) as usize;
        self.history[op][idx].clone()
    }

    fn eval_operand(&self, o: &Operand, consumer: &Operation, local: u64, abs_iter: u64) -> Value {
        match *o {
            Operand::Def { op, distance } => self.read_def(op.index(), distance, local),
            Operand::LiveIn(id) => {
                let li = &self.l.live_ins[id.0 as usize];
                Value::S(Memory::live_in_value(&li.name, li.ty))
            }
            Operand::ConstI(v) => Value::S(Scalar::I(v)),
            Operand::ConstF(v) => Value::S(Scalar::F(v)),
            Operand::Iv { scale, offset } => {
                if consumer.opcode.form == VectorForm::Vector {
                    // One lane advances one *original* iteration, i.e.
                    // scale / iter_scale elements of the affine function.
                    let step = scale / i64::from(self.l.iter_scale);
                    Value::V(
                        (0..self.k as i64)
                            .map(|lane| {
                                Scalar::I(scale * abs_iter as i64 + offset + lane * step)
                            })
                            .collect(),
                    )
                } else {
                    Value::S(Scalar::I(scale * abs_iter as i64 + offset))
                }
            }
        }
    }

    fn exec_op(&mut self, op: &Operation, mem: &mut Memory, local: u64, abs_iter: u64) {
        let ty = op.opcode.ty;
        let vector = op.opcode.form == VectorForm::Vector;
        let operands: Vec<Value> = op
            .operands
            .iter()
            .map(|o| self.eval_operand(o, op, local, abs_iter))
            .collect();
        let result: Option<Value> = match op.opcode.kind {
            OpKind::Load => {
                let r = op.mem_ref();
                let base = r.stride * abs_iter as i64 + r.offset;
                if vector {
                    let lanes = (0..r.width as i64)
                        .map(|j| mem.read(r.array.0, base + j).coerce(ty))
                        .collect();
                    Some(Value::V(lanes))
                } else {
                    Some(Value::S(mem.read(r.array.0, base).coerce(ty)))
                }
            }
            OpKind::Store => {
                let r = op.mem_ref();
                let base = r.stride * abs_iter as i64 + r.offset;
                if vector {
                    let lanes = operands[0].lanes(r.width as usize);
                    for (j, v) in lanes.into_iter().enumerate() {
                        mem.write(r.array.0, base + j as i64, v);
                    }
                } else {
                    mem.write(r.array.0, base, operands[0].scalar());
                }
                None
            }
            OpKind::Pack => {
                let lanes = operands.iter().map(|v| v.scalar().coerce(ty)).collect();
                Some(Value::V(lanes))
            }
            OpKind::Extract => {
                let lane = operands[1].scalar().as_i64() as usize;
                let lanes = operands[0].lanes(self.k as usize);
                Some(Value::S(lanes[lane]))
            }
            OpKind::Select => {
                if vector {
                    let c = operands[0].lanes(self.k as usize);
                    let a = operands[1].lanes(self.k as usize);
                    let b = operands[2].lanes(self.k as usize);
                    Some(Value::V(
                        (0..self.k as usize)
                            .map(|j| apply_select(ty, c[j], a[j], b[j]))
                            .collect(),
                    ))
                } else {
                    Some(Value::S(apply_select(
                        ty,
                        operands[0].scalar(),
                        operands[1].scalar(),
                        operands[2].scalar(),
                    )))
                }
            }
            kind if kind.arity() == 2 => {
                if vector {
                    let a = operands[0].lanes(self.k as usize);
                    let b = operands[1].lanes(self.k as usize);
                    Some(Value::V(
                        a.into_iter()
                            .zip(b)
                            .map(|(x, y)| apply_binary(kind, ty, x, y))
                            .collect(),
                    ))
                } else {
                    Some(Value::S(apply_binary(
                        kind,
                        ty,
                        operands[0].scalar(),
                        operands[1].scalar(),
                    )))
                }
            }
            kind => {
                if vector {
                    let a = operands[0].lanes(self.k as usize);
                    Some(Value::V(
                        a.into_iter().map(|x| apply_unary(kind, ty, x)).collect(),
                    ))
                } else {
                    Some(Value::S(apply_unary(kind, ty, operands[0].scalar())))
                }
            }
        };
        let slot = (local % self.depth[op.id.index()] as u64) as usize;
        let value = result.unwrap_or(Value::S(Scalar::I(0)));
        let hist = &mut self.history[op.id.index()];
        if hist.len() <= slot {
            hist.resize(slot + 1, value.clone());
        }
        hist[slot] = value;
    }
}

/// Reference in-order execution of iterations `iters` of `l` against
/// `mem` — the original history-vector interpreter behind
/// [`crate::execute_loop`].
pub fn execute_loop(
    l: &Loop,
    mem: &mut Memory,
    iters: std::ops::Range<u64>,
) -> Vec<LiveOutValue> {
    let mut interp = Interp::new(l);
    let count = iters.end.saturating_sub(iters.start);
    for local in 0..count {
        let abs = iters.start + local;
        for op in &l.ops {
            interp.exec_op(op, mem, local, abs);
        }
    }
    l.live_outs
        .iter()
        .map(|lo| {
            let v = if count == 0 {
                interp.read_def(lo.op.index(), 1, 0)
            } else {
                interp.read_def(lo.op.index(), 0, count - 1)
            };
            let ty = l.ops[lo.op.index()].opcode.ty;
            let value = match (&v, lo.horizontal) {
                (Value::V(lanes), Some(kind)) => lanes
                    .iter()
                    .copied()
                    .reduce(|a, b| apply_binary(kind, ty, a, b))
                    .expect("non-empty lanes"),
                (Value::V(lanes), None) => *lanes.last().expect("non-empty lanes"),
                (Value::S(s), _) => *s,
            };
            LiveOutValue { name: lo.name.clone(), value, combine: lo.combine }
        })
        .collect()
}

/// Reference execution of an explicit `(iteration, op)` launch sequence —
/// the original `HashMap<(op, iteration), Value>` implementation behind
/// the pipelined and flat executors. `iteration_private` arrays are
/// renamed per in-flight iteration ([`crate::privrot::PrivRot`]), exactly
/// as in the fast engine's `run_sequence`.
///
/// # Panics
///
/// Panics when an instance reads a value that has not been produced — the
/// sequence violates a dependence.
pub(crate) fn execute_instances(
    l: &Loop,
    mem: &mut Memory,
    seq: &[(u64, usize)],
    iterations: u64,
) -> Vec<LiveOutValue> {
    let k = l.vector_width.max(1);
    let pr = crate::privrot::PrivRot::for_sequence(l, seq);
    pr.widen(mem);
    let mut values: HashMap<(usize, u64), Value> = HashMap::new();
    let read_def = |values: &HashMap<(usize, u64), Value>, p: usize, dist: u32, j: u64| {
        if u64::from(dist) > j {
            let o = &l.ops[p];
            let init = init_scalar(o.carried_init, o.opcode.ty);
            return match o.opcode.form {
                VectorForm::Scalar => Value::S(init),
                VectorForm::Vector => Value::V(vec![init; k as usize]),
            };
        }
        values
            .get(&(p, j - u64::from(dist)))
            .expect("pipeline read before write: scheduler bug")
            .clone()
    };

    for &(j, oi) in seq {
        let op = &l.ops[oi];
        let ty = op.opcode.ty;
        let vector = op.opcode.form == VectorForm::Vector;
        let operands: Vec<Value> = op
            .operands
            .iter()
            .map(|o| match *o {
                Operand::Def { op: p, distance } => read_def(&values, p.index(), distance, j),
                Operand::LiveIn(id) => {
                    let li = &l.live_ins[id.0 as usize];
                    Value::S(Memory::live_in_value(&li.name, li.ty))
                }
                Operand::ConstI(v) => Value::S(Scalar::I(v)),
                Operand::ConstF(v) => Value::S(Scalar::F(v)),
                Operand::Iv { scale, offset } => {
                    if vector {
                        let step = scale / i64::from(l.iter_scale);
                        Value::V(
                            (0..i64::from(k))
                                .map(|lane| Scalar::I(scale * j as i64 + offset + lane * step))
                                .collect(),
                        )
                    } else {
                        Value::S(Scalar::I(scale * j as i64 + offset))
                    }
                }
            })
            .collect();

        let result: Option<Value> = match op.opcode.kind {
            OpKind::Load => {
                let r = op.mem_ref();
                let base = r.stride * j as i64 + r.offset + pr.offset(r.array.0, j);
                if vector {
                    Some(Value::V(
                        (0..r.width as i64)
                            .map(|lane| mem.read(r.array.0, base + lane).coerce(ty))
                            .collect(),
                    ))
                } else {
                    Some(Value::S(mem.read(r.array.0, base).coerce(ty)))
                }
            }
            OpKind::Store => {
                let r = op.mem_ref();
                let base = r.stride * j as i64 + r.offset + pr.offset(r.array.0, j);
                if vector {
                    for (lane, v) in operands[0].lanes(r.width as usize).into_iter().enumerate()
                    {
                        mem.write(r.array.0, base + lane as i64, v);
                    }
                } else {
                    mem.write(r.array.0, base, operands[0].scalar());
                }
                None
            }
            OpKind::Pack => Some(Value::V(
                operands.iter().map(|v| v.scalar().coerce(ty)).collect(),
            )),
            OpKind::Extract => {
                let lane = operands[1].scalar().as_i64() as usize;
                Some(Value::S(operands[0].lanes(k as usize)[lane]))
            }
            OpKind::Select => Some(if vector {
                let c = operands[0].lanes(k as usize);
                let a = operands[1].lanes(k as usize);
                let b = operands[2].lanes(k as usize);
                Value::V((0..k as usize).map(|j| apply_select(ty, c[j], a[j], b[j])).collect())
            } else {
                Value::S(apply_select(
                    ty,
                    operands[0].scalar(),
                    operands[1].scalar(),
                    operands[2].scalar(),
                ))
            }),
            kind if kind.arity() == 2 => Some(if vector {
                Value::V(
                    operands[0]
                        .lanes(k as usize)
                        .into_iter()
                        .zip(operands[1].lanes(k as usize))
                        .map(|(a, b)| apply_binary(kind, ty, a, b))
                        .collect(),
                )
            } else {
                Value::S(apply_binary(kind, ty, operands[0].scalar(), operands[1].scalar()))
            }),
            kind => Some(if vector {
                Value::V(
                    operands[0]
                        .lanes(k as usize)
                        .into_iter()
                        .map(|a| apply_unary(kind, ty, a))
                        .collect(),
                )
            } else {
                Value::S(apply_unary(kind, ty, operands[0].scalar()))
            }),
        };
        if let Some(v) = result {
            values.insert((oi, j), v);
        }
    }
    pr.restore(mem, iterations);

    l.live_outs
        .iter()
        .map(|lo| {
            let v = if iterations == 0 {
                read_def(&values, lo.op.index(), 1, 0)
            } else {
                read_def(&values, lo.op.index(), 0, iterations - 1)
            };
            let ty = l.ops[lo.op.index()].opcode.ty;
            let value = match (&v, lo.horizontal) {
                (Value::V(lanes), Some(kind)) => lanes
                    .iter()
                    .copied()
                    .reduce(|a, b| apply_binary(kind, ty, a, b))
                    .expect("non-empty lanes"),
                (Value::V(lanes), None) => *lanes.last().expect("non-empty lanes"),
                (Value::S(s), _) => *s,
            };
            LiveOutValue { name: lo.name.clone(), value, combine: lo.combine }
        })
        .collect()
}

/// Reference twin of [`crate::execute_pipelined`]: same launch sequence,
/// executed by the `HashMap`-backed interpreter.
///
/// # Panics
///
/// Panics when `schedule` does not belong to `l` (length mismatch).
pub fn execute_pipelined(
    l: &Loop,
    schedule: &Schedule,
    mem: &mut Memory,
    iterations: u64,
) -> Vec<LiveOutValue> {
    let seq = crate::pipeline_exec::pipeline_sequence(l, schedule, iterations);
    execute_instances(l, mem, &seq, iterations)
}

/// Reference twin of [`crate::execute_flat`].
///
/// # Panics
///
/// Panics when `iterations < stage_count` or the layout launches an
/// instance out of dependence order.
pub fn execute_flat(
    l: &Loop,
    flat: &FlatListing,
    mem: &mut Memory,
    iterations: u64,
) -> Vec<LiveOutValue> {
    let seq = crate::flat_exec::flat_sequence(flat, iterations);
    execute_instances(l, mem, &seq, iterations)
}

/// Reference twin of [`crate::run_source`].
pub fn run_source(l: &Loop) -> RunResult {
    crate::run::run_source_with(l, execute_loop)
}

/// Reference twin of [`crate::run_compiled`].
pub fn run_compiled(c: &CompiledLoop) -> RunResult {
    crate::run::run_compiled_with(c, execute_loop)
}
