//! Whole-plan functional execution and equivalence checking.

use crate::interp::{apply_binary, execute_loop, LiveOutValue};
use crate::memory::{Memory, Scalar};
use crate::sched_exec::{execute_schedule, ExecError, ExecReport};
use std::collections::BTreeMap;
use sv_core::{compile_checked, CompilationReport, CompileError, CompiledLoop, DriverConfig};
use sv_ir::{Loop, OpKind, ScalarType};
use sv_machine::MachineConfig;
use sv_modsched::{emit_flat_for, Schedule};

/// Final state after functionally executing one invocation of a loop (or
/// of a compiled plan).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Memory restricted to the *shared* arrays (the source loop's array
    /// table), which is what transformed versions must preserve.
    pub memory: Memory,
    /// Combined live-out values by name.
    pub live_outs: BTreeMap<String, Scalar>,
}

fn combine_liveouts(acc: &mut BTreeMap<String, Scalar>, outs: Vec<LiveOutValue>, ran: bool) {
    for o in outs {
        match (acc.get(&o.name).copied(), o.combine) {
            (Some(prev), Some(kind)) => {
                let merged = match kind {
                    OpKind::Add | OpKind::Mul | OpKind::Min | OpKind::Max => {
                        // Merge in the value's own scalar type: an
                        // integer-typed reduction split across segments
                        // and cleanups must not be coerced to float.
                        let ty = match (prev, o.value) {
                            (Scalar::I(_), Scalar::I(_)) => ScalarType::I64,
                            _ => ScalarType::F64,
                        };
                        apply_binary(kind, ty, prev, o.value)
                    }
                    _ => o.value,
                };
                acc.insert(o.name, merged);
            }
            _ => {
                // Non-reductions: only a piece that actually ran may
                // overwrite (a zero-trip cleanup observes nothing).
                if ran || !acc.contains_key(&o.name) {
                    acc.insert(o.name, o.value);
                }
            }
        }
    }
}

/// The signature shared by the fast and reference in-order executors —
/// lets the whole-plan runners below execute on either engine.
pub(crate) type ExecLoopFn =
    fn(&Loop, &mut Memory, std::ops::Range<u64>) -> Vec<LiveOutValue>;

/// [`run_source`] parameterized by the in-order executor.
pub(crate) fn run_source_with(l: &Loop, exec: ExecLoopFn) -> RunResult {
    let mut mem = Memory::for_arrays(&l.arrays);
    let outs = exec(l, &mut mem, 0..l.trip.count);
    let mut live_outs = BTreeMap::new();
    combine_liveouts(&mut live_outs, outs, l.trip.count > 0);
    RunResult { memory: mem, live_outs }
}

/// Execute one invocation of the source loop.
pub fn run_source(l: &Loop) -> RunResult {
    run_source_with(l, execute_loop)
}

/// Execute one invocation of a compiled plan: every segment in order, its
/// main loop for the bulk iterations and its cleanup loop for the
/// remainder, with the source-level arrays threaded through all pieces.
pub fn run_compiled(c: &CompiledLoop) -> RunResult {
    run_compiled_with(c, execute_loop)
}

/// [`run_compiled`] parameterized by the in-order executor.
pub(crate) fn run_compiled_with(c: &CompiledLoop, exec: ExecLoopFn) -> RunResult {
    // Thread the maximal shared array prefix through all pieces: every
    // piece's table extends a common base (source arrays plus any
    // scalar-expansion temporaries); only transform-private communication
    // slots sit past the prefix, and those are dead across pieces.
    let pieces_min = c
        .segments
        .iter()
        .flat_map(|s| {
            std::iter::once(s.looop.arrays.len())
                .chain(s.cleanup.iter().map(|(cl, _)| cl.arrays.len()))
        })
        .min()
        .unwrap_or(c.source.arrays.len());
    let base_len = pieces_min.max(c.source.arrays.len());
    let base_decls: Vec<sv_ir::ArrayDecl> = c
        .segments
        .iter()
        .flat_map(|s| std::iter::once(&s.looop).chain(s.cleanup.iter().map(|(cl, _)| cl)))
        .find(|l| l.arrays.len() >= base_len)
        .map(|l| l.arrays[..base_len].to_vec())
        .unwrap_or_else(|| c.source.arrays.clone());
    let mut global = Memory::for_arrays(&base_decls);
    let mut live_outs = BTreeMap::new();

    let run_piece =
        |global: &mut Memory, l: &Loop, iters: std::ops::Range<u64>, acc: &mut BTreeMap<String, Scalar>| {
            debug_assert!(l.arrays.len() >= base_len);
            let mut mem = Memory::for_arrays(&l.arrays);
            for i in 0..base_len as u32 {
                mem.copy_array_from(global, i);
            }
            let ran = iters.end > iters.start;
            let outs = exec(l, &mut mem, iters);
            for i in 0..base_len as u32 {
                global.copy_array_from(&mem, i);
            }
            combine_liveouts(acc, outs, ran);
        };

    for seg in &c.segments {
        let n = seg.looop.executed_iterations();
        run_piece(&mut global, &seg.looop, 0..n, &mut live_outs);
        let r = seg.looop.remainder_iterations();
        if r > 0 {
            let (cl, _) = seg
                .cleanup
                .as_ref()
                .expect("remainder iterations require a cleanup loop");
            let start = n * u64::from(seg.looop.iter_scale);
            run_piece(&mut global, cl, start..start + r, &mut live_outs);
        }
    }
    RunResult { memory: global, live_outs }
}

/// One piece (segment main loop or cleanup) of a compiled plan as run by
/// the cycle-accurate executor, with its measured cycle accounting.
#[derive(Debug, Clone)]
pub struct ExecutedPiece {
    /// The piece's loop name.
    pub piece: String,
    /// The II its modulo schedule claims.
    pub scheduled_ii: u32,
    /// The schedule's stage count.
    pub stage_count: u32,
    /// Iterations the piece ran.
    pub iterations: u64,
    /// The schedule's MaxLive register-pressure estimate, per class in
    /// [`sv_ir::RegClass::ALL`] order.
    pub max_live: [u32; 4],
    /// The executor's cycle accounting.
    pub report: ExecReport,
}

/// Execute one invocation of a compiled plan through the cycle-accurate
/// VLIW executor ([`crate::execute_schedule`]): every piece runs its
/// emitted flat layout on machine `m` — truncated layouts for pieces
/// whose trip never fills the pipeline — with the source-level arrays
/// threaded through exactly as [`run_compiled`] threads them. Returns
/// the functional result plus per-piece cycle accounting.
///
/// # Errors
///
/// Returns the first [`ExecError`] (dependence-order or latency
/// violation in a layout) encountered.
pub fn run_compiled_executed(
    c: &CompiledLoop,
    m: &MachineConfig,
) -> Result<(RunResult, Vec<ExecutedPiece>), ExecError> {
    let pieces_min = c
        .segments
        .iter()
        .flat_map(|s| {
            std::iter::once(s.looop.arrays.len())
                .chain(s.cleanup.iter().map(|(cl, _)| cl.arrays.len()))
        })
        .min()
        .unwrap_or(c.source.arrays.len());
    let base_len = pieces_min.max(c.source.arrays.len());
    let base_decls: Vec<sv_ir::ArrayDecl> = c
        .segments
        .iter()
        .flat_map(|s| std::iter::once(&s.looop).chain(s.cleanup.iter().map(|(cl, _)| cl)))
        .find(|l| l.arrays.len() >= base_len)
        .map(|l| l.arrays[..base_len].to_vec())
        .unwrap_or_else(|| c.source.arrays.clone());
    let mut global = Memory::for_arrays(&base_decls);
    let mut live_outs = BTreeMap::new();
    let mut pieces: Vec<ExecutedPiece> = Vec::new();

    let mut run_piece = |global: &mut Memory,
                         l: &Loop,
                         s: &Schedule,
                         iters: std::ops::Range<u64>,
                         acc: &mut BTreeMap<String, Scalar>|
     -> Result<(), ExecError> {
        debug_assert!(l.arrays.len() >= base_len);
        let mut mem = Memory::for_arrays(&l.arrays);
        for i in 0..base_len as u32 {
            mem.copy_array_from(global, i);
        }
        let ran = iters.end > iters.start;
        let n = iters.end - iters.start;
        let flat = emit_flat_for(l, s, n);
        let (outs, report) = execute_schedule(l, m, &flat, &mut mem, iters)?;
        for i in 0..base_len as u32 {
            global.copy_array_from(&mem, i);
        }
        combine_liveouts(acc, outs, ran);
        pieces.push(ExecutedPiece {
            piece: l.name.clone(),
            scheduled_ii: s.ii,
            stage_count: s.stage_count,
            iterations: n,
            max_live: s.max_live,
            report,
        });
        Ok(())
    };

    for seg in &c.segments {
        let n = seg.looop.executed_iterations();
        run_piece(&mut global, &seg.looop, &seg.schedule, 0..n, &mut live_outs)?;
        let r = seg.looop.remainder_iterations();
        if r > 0 {
            let (cl, cs) = seg
                .cleanup
                .as_ref()
                .expect("remainder iterations require a cleanup loop");
            let start = n * u64::from(seg.looop.iter_scale);
            run_piece(&mut global, cl, cs, start..start + r, &mut live_outs)?;
        }
    }
    Ok((RunResult { memory: global, live_outs }, pieces))
}

/// Run a compiled plan through the cycle-accurate executor and hold it to
/// both gates at once:
///
/// 1. **state** — executed memory and live-outs bit-identical
///    ([`Scalar::identical`]) to the reference engine's
///    [`crate::reference::run_compiled`];
/// 2. **timing** — zero interlock stalls and measured steady-state
///    cycles/iteration exactly the scheduled II, for every piece whose
///    kernel runs ([`ExecReport::steady_state_ok`]);
/// 3. **register pressure** — the executor's observed per-class live
///    maximum ([`ExecReport::observed_max_live`]) never exceeds the
///    scheduler's `MaxLive` estimate: an excess means the scheduler
///    would under-allocate registers for this pipeline.
///
/// Returns the per-piece accounting on success.
///
/// # Errors
///
/// Returns a description of the first violated gate.
pub fn executed_selfcheck(
    c: &CompiledLoop,
    m: &MachineConfig,
) -> Result<Vec<ExecutedPiece>, String> {
    let (executed, pieces) =
        run_compiled_executed(c, m).map_err(|e| format!("executed: {e}"))?;
    check_identical_runs("executed vs reference", &executed, &crate::reference::run_compiled(c))?;
    for p in &pieces {
        if !p.report.steady_state_ok(p.scheduled_ii) {
            return Err(format!(
                "{}: measured steady state {} != scheduled II {} \
                 (kernel {} cycles / {} executions, {} stall cycles over {} total)",
                p.piece,
                p.report
                    .measured_ii()
                    .map_or_else(|| "-".into(), |ii| format!("{ii:.2}")),
                p.scheduled_ii,
                p.report.kernel_cycles,
                p.report.kernel_executions,
                p.report.stall_cycles,
                p.report.total_cycles,
            ));
        }
        for (ci, &cls) in sv_ir::RegClass::ALL.iter().enumerate() {
            if p.report.observed_max_live[ci] > p.max_live[ci] {
                return Err(format!(
                    "{}: observed {cls:?} register pressure {} exceeds the \
                     scheduler's MaxLive estimate {} (II {}, {} iterations)",
                    p.piece,
                    p.report.observed_max_live[ci],
                    p.max_live[ci],
                    p.scheduled_ii,
                    p.iterations,
                ));
            }
        }
    }
    Ok(pieces)
}

/// [`sv_core::compile_checked`] with executed verification: after the
/// driver compiles (and possibly degrades), the plan is run through the
/// cycle-accurate executor and held to the [`executed_selfcheck`] gates.
/// A violation surfaces as [`CompileError::Execution`] with full detail —
/// the `--executed` mode of the `svc` driver and the fuzzer's
/// `--executed-selfcheck` both route through here.
///
/// # Errors
///
/// Returns the driver's own [`CompileError`] when compilation fails, or
/// [`CompileError::Execution`] when the compiled plan fails an executed
/// gate.
pub fn compile_executed(
    l: &Loop,
    m: &MachineConfig,
    cfg: &DriverConfig,
) -> Result<(CompiledLoop, CompilationReport, Vec<ExecutedPiece>), CompileError> {
    let (c, rep) = compile_checked(l, m, cfg)?;
    match executed_selfcheck(&c, m) {
        Ok(pieces) => Ok((c, rep, pieces)),
        Err(detail) => Err(CompileError::Execution {
            strategy: c.strategy,
            looop: l.name.clone(),
            detail,
        }),
    }
}

/// True when carried *register* state would have to flow from a pipelined
/// loop into its cleanup loop: a carried register use that is not a
/// reduction accumulation. Reductions transfer through the live-out
/// combine; other carried register values are not threaded across the
/// main→cleanup boundary by this simulator (real code generation wires
/// them through pipeline live-outs), so equivalence checks should use
/// remainder-free trip counts for such loops.
pub fn has_register_state_across_cleanup(l: &Loop) -> bool {
    l.ops.iter().any(|op| {
        op.def_uses()
            .any(|(p, d)| d >= 1 && !(op.is_reduction && p == op.id))
    })
}

/// A semantic divergence between a source loop and its compiled plan,
/// found by [`check_equivalent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceError {
    /// A shared array differs elementwise (or in length).
    ArrayMismatch {
        /// Array name.
        array: String,
        /// First differing element (`usize::MAX` for a length mismatch).
        element: usize,
        /// The source loop's value, `Debug`-rendered.
        source: String,
        /// The compiled plan's value, `Debug`-rendered.
        compiled: String,
    },
    /// The two executions produced different live-out name sets.
    LiveOutSetMismatch {
        /// The source's live-out names.
        source: Vec<String>,
        /// The compiled plan's live-out names.
        compiled: Vec<String>,
    },
    /// A live-out value differs.
    LiveOutMismatch {
        /// Live-out name.
        name: String,
        /// The source loop's value, `Debug`-rendered.
        source: String,
        /// The compiled plan's value, `Debug`-rendered.
        compiled: String,
    },
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::ArrayMismatch { array, element, source, compiled } => {
                if *element == usize::MAX {
                    write!(f, "array {array} length mismatch: {source} vs {compiled}")
                } else {
                    write!(
                        f,
                        "array {array}[{element}] mismatch: source {source} vs compiled {compiled}"
                    )
                }
            }
            EquivalenceError::LiveOutSetMismatch { source, compiled } => {
                write!(f, "live-out sets differ: source {source:?} vs compiled {compiled:?}")
            }
            EquivalenceError::LiveOutMismatch { name, source, compiled } => {
                write!(f, "live-out {name} mismatch: source {source} vs compiled {compiled}")
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// Functionally execute `src` and `compiled` and check they agree on
/// every shared array (elementwise, with reassociation-tolerant float
/// comparison) and on every live-out value.
///
/// # Errors
///
/// Returns the first divergence found.
pub fn check_equivalent(src: &Loop, compiled: &CompiledLoop) -> Result<(), EquivalenceError> {
    let a = run_source(src);
    let b = run_compiled(compiled);
    for (idx, decl) in src.arrays.iter().enumerate() {
        let (xa, xb) = (a.memory.array(idx as u32), b.memory.array(idx as u32));
        if xa.len() != xb.len() {
            return Err(EquivalenceError::ArrayMismatch {
                array: decl.name.clone(),
                element: usize::MAX,
                source: xa.len().to_string(),
                compiled: xb.len().to_string(),
            });
        }
        for (e, (va, vb)) in xa.iter().zip(xb).enumerate() {
            if !va.approx_eq(*vb) {
                return Err(EquivalenceError::ArrayMismatch {
                    array: decl.name.clone(),
                    element: e,
                    source: format!("{va:?}"),
                    compiled: format!("{vb:?}"),
                });
            }
        }
    }
    if a.live_outs.keys().ne(b.live_outs.keys()) {
        return Err(EquivalenceError::LiveOutSetMismatch {
            source: a.live_outs.keys().cloned().collect(),
            compiled: b.live_outs.keys().cloned().collect(),
        });
    }
    for (name, va) in &a.live_outs {
        let vb = b.live_outs[name];
        if !va.approx_eq(vb) {
            return Err(EquivalenceError::LiveOutMismatch {
                name: name.clone(),
                source: format!("{va:?}"),
                compiled: format!("{vb:?}"),
            });
        }
    }
    Ok(())
}

/// [`check_equivalent`], panicking on the first mismatch — the historical
/// test-harness entry point.
///
/// # Panics
///
/// Panics with a descriptive message on the first divergence.
pub fn assert_equivalent(src: &Loop, compiled: &CompiledLoop) {
    if let Err(e) = check_equivalent(src, compiled) {
        std::panic::panic_any(format!("{e} under {}", compiled.strategy));
    }
}

/// Convenience: the scalar type never matters to callers, but keep the
/// import used for doc examples.
#[doc(hidden)]
pub fn _ty() -> ScalarType {
    ScalarType::F64
}

/// Compare two executions that claim identical semantics: every array
/// element and every live-out must be [`Scalar::identical`] (bit-exact,
/// NaN-aware) — no reassociation tolerance between two implementations of
/// the same engine contract.
fn check_identical_runs(label: &str, fast: &RunResult, reference: &RunResult) -> Result<(), String> {
    if fast.memory.array_count() != reference.memory.array_count() {
        return Err(format!(
            "{label}: array count {} vs reference {}",
            fast.memory.array_count(),
            reference.memory.array_count()
        ));
    }
    for i in 0..fast.memory.array_count() as u32 {
        let (xa, xb) = (fast.memory.array(i), reference.memory.array(i));
        if xa.len() != xb.len() {
            return Err(format!("{label}: array {i} length {} vs {}", xa.len(), xb.len()));
        }
        for (e, (va, vb)) in xa.iter().zip(xb).enumerate() {
            if !va.identical(*vb) {
                return Err(format!(
                    "{label}: array {i}[{e}] fast {va:?} vs reference {vb:?}"
                ));
            }
        }
    }
    if fast.live_outs.keys().ne(reference.live_outs.keys()) {
        return Err(format!(
            "{label}: live-out sets fast {:?} vs reference {:?}",
            fast.live_outs.keys().collect::<Vec<_>>(),
            reference.live_outs.keys().collect::<Vec<_>>()
        ));
    }
    for (name, va) in &fast.live_outs {
        let vb = reference.live_outs[name];
        if !va.identical(vb) {
            return Err(format!(
                "{label}: live-out {name} fast {va:?} vs reference {vb:?}"
            ));
        }
    }
    Ok(())
}

fn check_identical_liveouts(
    label: &str,
    fast: &[LiveOutValue],
    reference: &[LiveOutValue],
) -> Result<(), String> {
    if fast.len() != reference.len() {
        return Err(format!(
            "{label}: {} live-outs vs reference {}",
            fast.len(),
            reference.len()
        ));
    }
    for (a, b) in fast.iter().zip(reference) {
        if a.name != b.name || a.combine != b.combine || !a.value.identical(b.value) {
            return Err(format!("{label}: live-out fast {a:?} vs reference {b:?}"));
        }
    }
    Ok(())
}

fn check_identical_memories(label: &str, fast: &Memory, reference: &Memory) -> Result<(), String> {
    for i in 0..fast.array_count() as u32 {
        for (e, (va, vb)) in fast.array(i).iter().zip(reference.array(i)).enumerate() {
            if !va.identical(*vb) {
                return Err(format!(
                    "{label}: array {i}[{e}] fast {va:?} vs reference {vb:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Differential self-check of the pre-decoded fast engine against the
/// retained [`crate::reference`] interpreters, over every execution mode a
/// compiled plan exercises:
///
/// 1. whole-run source execution ([`run_source`] both engines),
/// 2. whole-plan compiled execution ([`run_compiled`] both engines),
/// 3. per-segment pipelined execution of each modulo schedule,
/// 4. per-segment flat prologue/kernel/epilogue execution (when the
///    segment's trip covers a full pipeline).
///
/// Comparison is bit-exact ([`Scalar::identical`]) — the two engines
/// implement the same semantics, so even last-bit float drift is a bug.
/// Used by the fuzzer's `--oracle-selfcheck` mode.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn oracle_selfcheck(src: &Loop, compiled: &CompiledLoop) -> Result<(), String> {
    check_identical_runs("run_source", &run_source(src), &crate::reference::run_source(src))?;
    check_identical_runs(
        "run_compiled",
        &run_compiled(compiled),
        &crate::reference::run_compiled(compiled),
    )?;
    for (si, seg) in compiled.segments.iter().enumerate() {
        let n = seg.looop.executed_iterations();
        let mut mem_fast = Memory::for_arrays(&seg.looop.arrays);
        let mut mem_ref = mem_fast.clone();
        let outs_fast =
            crate::execute_pipelined(&seg.looop, &seg.schedule, &mut mem_fast, n);
        let outs_ref =
            crate::reference::execute_pipelined(&seg.looop, &seg.schedule, &mut mem_ref, n);
        let label = format!("segment {si} pipelined");
        check_identical_liveouts(&label, &outs_fast, &outs_ref)?;
        check_identical_memories(&label, &mem_fast, &mem_ref)?;
        if n >= u64::from(seg.schedule.stage_count) {
            let flat = sv_modsched::emit_flat(&seg.looop, &seg.schedule);
            let mut mem_fast = Memory::for_arrays(&seg.looop.arrays);
            let mut mem_ref = mem_fast.clone();
            let outs_fast = crate::execute_flat(&seg.looop, &flat, &mut mem_fast, n);
            let outs_ref =
                crate::reference::execute_flat(&seg.looop, &flat, &mut mem_ref, n);
            let label = format!("segment {si} flat");
            check_identical_liveouts(&label, &outs_fast, &outs_ref)?;
            check_identical_memories(&label, &mem_fast, &mem_ref)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_core::{compile, Strategy};
    use sv_ir::LoopBuilder;
    use sv_machine::MachineConfig;

    fn daxpy(trip: u64) -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        b.trip(trip);
        let x = b.array("x", ScalarType::F64, trip + 8);
        let y = b.array("y", ScalarType::F64, trip + 8);
        let a = b.live_in("a", ScalarType::F64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let ax = b.fmul_li(a, lx);
        let s = b.fadd(ax, ly);
        b.store(y, 1, 0, s);
        b.finish()
    }

    #[test]
    fn daxpy_equivalent_under_all_strategies() {
        let l = daxpy(101); // odd trip exercises the cleanup loop
        for machine in [MachineConfig::paper_default(), MachineConfig::figure1()] {
            for s in Strategy::ALL {
                let c = compile(&l, &machine, s).unwrap();
                assert_equivalent(&l, &c);
            }
        }
    }

    #[test]
    fn dot_product_equivalent_under_all_strategies() {
        let mut b = LoopBuilder::new("dot");
        b.trip(97);
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let m = b.fmul(lx, ly);
        b.reduce_add(m);
        let l = b.finish();
        for machine in [MachineConfig::paper_default(), MachineConfig::figure1()] {
            for s in Strategy::ALL {
                let c = compile(&l, &machine, s).unwrap();
                assert_equivalent(&l, &c);
            }
        }
    }

    #[test]
    fn reassociated_reduction_equivalent() {
        let mut b = LoopBuilder::new("dotr");
        b.trip(64).allow_reassoc(true);
        let x = b.array("x", ScalarType::F64, 80);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        for s in Strategy::ALL {
            let c = compile(&l, &m, s).unwrap();
            assert_equivalent(&l, &c);
        }
    }

    #[test]
    fn recurrence_loop_equivalent() {
        // Sequential part + parallel part: exercises distribution and
        // selective partitioning with a non-vectorizable component.
        let mut b = LoopBuilder::new("mixed");
        b.trip(60);
        let x = b.array("x", ScalarType::F64, 80);
        let y = b.array("y", ScalarType::F64, 80);
        let z = b.array("z", ScalarType::F64, 80);
        let lx = b.load(x, 1, 0);
        let n = b.fneg(lx);
        b.store(y, 1, 0, n);
        let la = b.load(z, 1, 0);
        let r = b.recurrence(OpKind::Mul, ScalarType::F64, la);
        b.store(z, 1, 1, r);
        let l = b.finish();
        // Carried register state crosses the cleanup boundary only through
        // memory here (z), which is safe; trip 60 is even anyway.
        let m = MachineConfig::paper_default();
        for s in Strategy::ALL {
            let c = compile(&l, &m, s).unwrap();
            assert_equivalent(&l, &c);
        }
    }

    #[test]
    fn integer_reduction_keeps_integer_type_across_segments() {
        // Regression: combine_liveouts used to rebuild every merged
        // reduction as Scalar::F, silently coercing integer-typed
        // reductions to float whenever a plan had several pieces (main
        // segment + cleanup). The odd trip forces exactly that split.
        let mut b = LoopBuilder::new("isum");
        b.trip(101);
        let x = b.array("x", ScalarType::I64, 128);
        let lx = b.load(x, 1, 0);
        b.reduce(OpKind::Add, ScalarType::I64, lx);
        let l = b.finish();
        let src = run_source(&l);
        let (name, v) = src.live_outs.iter().next().expect("one live-out");
        assert!(matches!(v, Scalar::I(_)), "source live-out {v:?}");
        let m = MachineConfig::paper_default();
        for s in Strategy::ALL {
            let c = compile(&l, &m, s).unwrap();
            let r = run_compiled(&c);
            let rv = r.live_outs[name];
            assert!(
                matches!(rv, Scalar::I(_)),
                "{s}: integer reduction coerced to {rv:?}"
            );
            assert_eq!(rv.as_i64(), v.as_i64(), "{s}: wrong sum");
            assert_equivalent(&l, &c);
        }
    }

    #[test]
    fn integer_min_max_mul_reductions_keep_type() {
        for kind in [OpKind::Min, OpKind::Max, OpKind::Mul] {
            let mut b = LoopBuilder::new("ired");
            b.trip(33); // odd: main + cleanup pieces must merge
            let x = b.array("x", ScalarType::I64, 64);
            let lx = b.load(x, 1, 0);
            b.reduce(kind, ScalarType::I64, lx);
            let l = b.finish();
            let src = run_source(&l);
            let (name, v) = src.live_outs.iter().next().expect("one live-out");
            let m = MachineConfig::paper_default();
            let c = compile(&l, &m, Strategy::Selective).unwrap();
            let r = run_compiled(&c);
            let rv = r.live_outs[name];
            assert!(matches!(rv, Scalar::I(_)), "{kind:?}: got {rv:?}");
            assert_eq!(rv.as_i64(), v.as_i64(), "{kind:?}");
        }
    }

    #[test]
    fn register_state_predicate() {
        let l = daxpy(10);
        assert!(!has_register_state_across_cleanup(&l));
        let mut b = LoopBuilder::new("c");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        let s = b.bin(
            OpKind::Add,
            ScalarType::F64,
            sv_ir::Operand::def(lx),
            sv_ir::Operand::carried(lx, 1),
        );
        b.store(x, 1, 8, s);
        let l2 = b.finish();
        assert!(has_register_state_across_cleanup(&l2));
        // Reductions alone do not count.
        let mut b = LoopBuilder::new("r");
        let x = b.array("x", ScalarType::F64, 16);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        assert!(!has_register_state_across_cleanup(&b.finish()));
    }
}
