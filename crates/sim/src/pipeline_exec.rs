//! Functional execution of a *software-pipelined* schedule.
//!
//! [`crate::execute_loop`] runs a transformed loop iteration by iteration
//! in program order. This module instead executes the **modulo schedule
//! itself**: every `(operation, iteration)` instance fires at its pipeline
//! issue cycle `iteration·II + σ(op)`, with values renamed per iteration
//! (the effect rotating registers provide in hardware) and memory accesses
//! happening in pipeline order. If the scheduler reordered something it
//! was not allowed to reorder, this executor computes a different result
//! from the in-order interpreter — making it the strongest end-to-end
//! check on schedule correctness the crate has.

use crate::interp::{apply_binary, apply_unary, init_scalar, LiveOutValue, Value};
use crate::memory::{Memory, Scalar};
use std::collections::HashMap;
use sv_ir::{Loop, OpKind, Operand, VectorForm};
use sv_modsched::Schedule;

/// Execute `iterations` iterations of `l` according to `schedule`, in
/// pipeline issue order, mutating `mem`. Returns the live-out values
/// observed after the pipeline drains.
///
/// Within one cycle, loads execute before arithmetic and arithmetic before
/// stores — anti dependences with zero delay read the old value, the VLIW
/// register/memory latching convention the scheduler's edge delays assume.
///
/// # Panics
///
/// Panics when `schedule` does not belong to `l` (length mismatch).
pub fn execute_pipelined(
    l: &Loop,
    schedule: &Schedule,
    mem: &mut Memory,
    iterations: u64,
) -> Vec<LiveOutValue> {
    assert_eq!(schedule.times.len(), l.ops.len(), "schedule/loop mismatch");

    // Build the event list: (issue cycle, phase, iteration, op).
    let phase = |kind: OpKind| -> u8 {
        match kind {
            OpKind::Load => 0,
            OpKind::Store => 2,
            _ => 1,
        }
    };
    let mut events: Vec<(u64, u8, u64, usize)> = Vec::new();
    for j in 0..iterations {
        for op in &l.ops {
            events.push((
                j * u64::from(schedule.ii) + u64::from(schedule.times[op.id.index()]),
                phase(op.opcode.kind),
                j,
                op.id.index(),
            ));
        }
    }
    events.sort_unstable();
    let seq: Vec<(u64, usize)> = events.into_iter().map(|(_, _, j, oi)| (j, oi)).collect();
    execute_instances(l, mem, &seq, iterations)
}

/// Execute an explicit `(iteration, op)` launch sequence against `mem`,
/// with values renamed per `(op, iteration)` — the rotating register
/// file. Shared by the pipelined and flat-layout executors.
///
/// # Panics
///
/// Panics when an instance reads a value that has not been produced —
/// the sequence violates a dependence.
pub(crate) fn execute_instances(
    l: &Loop,
    mem: &mut Memory,
    seq: &[(u64, usize)],
    iterations: u64,
) -> Vec<LiveOutValue> {
    let k = l.vector_width.max(1);
    let mut values: HashMap<(usize, u64), Value> = HashMap::new();
    let read_def = |values: &HashMap<(usize, u64), Value>, p: usize, dist: u32, j: u64| {
        if u64::from(dist) > j {
            let o = &l.ops[p];
            let init = init_scalar(o.carried_init, o.opcode.ty);
            return match o.opcode.form {
                VectorForm::Scalar => Value::S(init),
                VectorForm::Vector => Value::V(vec![init; k as usize]),
            };
        }
        values
            .get(&(p, j - u64::from(dist)))
            .expect("pipeline read before write: scheduler bug")
            .clone()
    };

    for &(j, oi) in seq {
        let op = &l.ops[oi];
        let ty = op.opcode.ty;
        let vector = op.opcode.form == VectorForm::Vector;
        let operands: Vec<Value> = op
            .operands
            .iter()
            .map(|o| match *o {
                Operand::Def { op: p, distance } => read_def(&values, p.index(), distance, j),
                Operand::LiveIn(id) => {
                    let li = &l.live_ins[id.0 as usize];
                    Value::S(Memory::live_in_value(&li.name, li.ty))
                }
                Operand::ConstI(v) => Value::S(Scalar::I(v)),
                Operand::ConstF(v) => Value::S(Scalar::F(v)),
                Operand::Iv { scale, offset } => {
                    if vector {
                        let step = scale / i64::from(l.iter_scale);
                        Value::V(
                            (0..i64::from(k))
                                .map(|lane| Scalar::I(scale * j as i64 + offset + lane * step))
                                .collect(),
                        )
                    } else {
                        Value::S(Scalar::I(scale * j as i64 + offset))
                    }
                }
            })
            .collect();

        let result: Option<Value> = match op.opcode.kind {
            OpKind::Load => {
                let r = op.mem_ref();
                let base = r.stride * j as i64 + r.offset;
                if vector {
                    Some(Value::V(
                        (0..r.width as i64)
                            .map(|lane| mem.read(r.array.0, base + lane).coerce(ty))
                            .collect(),
                    ))
                } else {
                    Some(Value::S(mem.read(r.array.0, base).coerce(ty)))
                }
            }
            OpKind::Store => {
                let r = op.mem_ref();
                let base = r.stride * j as i64 + r.offset;
                if vector {
                    for (lane, v) in operands[0].lanes(r.width as usize).into_iter().enumerate()
                    {
                        mem.write(r.array.0, base + lane as i64, v);
                    }
                } else {
                    mem.write(r.array.0, base, operands[0].scalar());
                }
                None
            }
            OpKind::Pack => Some(Value::V(
                operands.iter().map(|v| v.scalar().coerce(ty)).collect(),
            )),
            OpKind::Extract => {
                let lane = operands[1].scalar().as_i64() as usize;
                Some(Value::S(operands[0].lanes(k as usize)[lane]))
            }
            kind if kind.arity() == 2 => Some(if vector {
                Value::V(
                    operands[0]
                        .lanes(k as usize)
                        .into_iter()
                        .zip(operands[1].lanes(k as usize))
                        .map(|(a, b)| apply_binary(kind, ty, a, b))
                        .collect(),
                )
            } else {
                Value::S(apply_binary(kind, ty, operands[0].scalar(), operands[1].scalar()))
            }),
            kind => Some(if vector {
                Value::V(
                    operands[0]
                        .lanes(k as usize)
                        .into_iter()
                        .map(|a| apply_unary(kind, ty, a))
                        .collect(),
                )
            } else {
                Value::S(apply_unary(kind, ty, operands[0].scalar()))
            }),
        };
        if let Some(v) = result {
            values.insert((oi, j), v);
        }
    }

    l.live_outs
        .iter()
        .map(|lo| {
            let v = if iterations == 0 {
                read_def(&values, lo.op.index(), 1, 0)
            } else {
                read_def(&values, lo.op.index(), 0, iterations - 1)
            };
            let ty = l.ops[lo.op.index()].opcode.ty;
            let value = match (&v, lo.horizontal) {
                (Value::V(lanes), Some(kind)) => lanes
                    .iter()
                    .copied()
                    .reduce(|a, b| apply_binary(kind, ty, a, b))
                    .expect("non-empty lanes"),
                (Value::V(lanes), None) => *lanes.last().expect("non-empty lanes"),
                (Value::S(s), _) => *s,
            };
            LiveOutValue { name: lo.name.clone(), value, combine: lo.combine }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_loop;
    use sv_analysis::DepGraph;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;
    use sv_modsched::modulo_schedule;

    fn check_pipeline_matches_inorder(l: &Loop, m: &MachineConfig, n: u64) {
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, m).expect("schedulable");
        let mut mem_a = Memory::for_arrays(&l.arrays);
        let mut mem_b = mem_a.clone();
        let outs_a = execute_loop(l, &mut mem_a, 0..n);
        let outs_b = execute_pipelined(l, &s, &mut mem_b, n);
        for i in 0..l.arrays.len() as u32 {
            let (xa, xb) = (mem_a.array(i), mem_b.array(i));
            for (e, (va, vb)) in xa.iter().zip(xb).enumerate() {
                assert!(
                    va.approx_eq(*vb),
                    "{}: array {i} elem {e}: in-order {va:?} vs pipelined {vb:?}",
                    l.name
                );
            }
        }
        assert_eq!(outs_a.len(), outs_b.len());
        for (a, b) in outs_a.iter().zip(&outs_b) {
            assert!(a.value.approx_eq(b.value), "{}: live-out {}", l.name, a.name);
        }
    }

    #[test]
    fn pipelined_copy_loop_matches() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 32);
    }

    #[test]
    fn pipelined_memory_recurrence_matches() {
        // a[i+2] = 2·a[i]: the pipeline overlaps iterations but must still
        // respect the distance-2 flow through memory.
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let m = b.bin(
            sv_ir::OpKind::Mul,
            ScalarType::F64,
            sv_ir::Operand::def(la),
            sv_ir::Operand::ConstF(2.0),
        );
        b.store(a, 1, 2, m);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 40);
    }

    #[test]
    fn pipelined_reduction_matches() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 48);
    }

    #[test]
    fn pipelined_inplace_update_matches() {
        // x[i] = x[i] + r[i]: anti dependence between the load and store of
        // the same location in flight.
        let mut b = LoopBuilder::new("update");
        let x = b.array("x", ScalarType::F64, 64);
        let r = b.array("r", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let lr = b.load(r, 1, 0);
        let s = b.fadd(lx, lr);
        b.store(x, 1, 0, s);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 48);
    }

    #[test]
    fn zero_iterations_is_empty() {
        let mut b = LoopBuilder::new("none");
        let x = b.array("x", ScalarType::F64, 8);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        let mut mem = Memory::for_arrays(&l.arrays);
        let outs = execute_pipelined(&l, &s, &mut mem, 0);
        assert_eq!(outs[0].value, Scalar::F(0.0));
    }
}
