//! Functional execution of a *software-pipelined* schedule.
//!
//! [`crate::execute_loop`] runs a transformed loop iteration by iteration
//! in program order. This module instead executes the **modulo schedule
//! itself**: every `(operation, iteration)` instance fires at its pipeline
//! issue cycle `iteration·II + σ(op)`, with values renamed per iteration
//! (the effect rotating registers provide in hardware) and memory accesses
//! happening in pipeline order. If the scheduler reordered something it
//! was not allowed to reorder, this executor computes a different result
//! from the in-order interpreter — making it the strongest end-to-end
//! check on schedule correctness the crate has.

use crate::interp::LiveOutValue;
use crate::memory::Memory;
use sv_ir::{Loop, OpKind};
use sv_modsched::Schedule;

/// Materialize the launch sequence of a modulo schedule: every
/// `(operation, iteration)` instance ordered by issue cycle, with
/// loads before arithmetic before stores within a cycle. Shared by the
/// fast and reference pipelined executors so both walk the exact same
/// event order.
///
/// # Panics
///
/// Panics when `schedule` does not belong to `l` (length mismatch).
pub(crate) fn pipeline_sequence(
    l: &Loop,
    schedule: &Schedule,
    iterations: u64,
) -> Vec<(u64, usize)> {
    assert_eq!(schedule.times.len(), l.ops.len(), "schedule/loop mismatch");

    // Build the event list: (issue cycle, phase, iteration, op).
    let phase = |kind: OpKind| -> u8 {
        match kind {
            OpKind::Load => 0,
            OpKind::Store => 2,
            _ => 1,
        }
    };
    let mut events: Vec<(u64, u8, u64, usize)> = Vec::new();
    for j in 0..iterations {
        for op in &l.ops {
            events.push((
                j * u64::from(schedule.ii) + u64::from(schedule.times[op.id.index()]),
                phase(op.opcode.kind),
                j,
                op.id.index(),
            ));
        }
    }
    events.sort_unstable();
    events.into_iter().map(|(_, _, j, oi)| (j, oi)).collect()
}

/// Execute `iterations` iterations of `l` according to `schedule`, in
/// pipeline issue order, mutating `mem`. Returns the live-out values
/// observed after the pipeline drains.
///
/// Within one cycle, loads execute before arithmetic and arithmetic before
/// stores — anti dependences with zero delay read the old value, the VLIW
/// register/memory latching convention the scheduler's edge delays assume.
///
/// Runs on the pre-decoded fast engine ([`crate::decoded`]); the original
/// `HashMap`-backed interpreter survives as
/// [`crate::reference::execute_pipelined`].
///
/// # Panics
///
/// Panics when `schedule` does not belong to `l` (length mismatch) or
/// when the schedule launches an instance out of dependence order.
pub fn execute_pipelined(
    l: &Loop,
    schedule: &Schedule,
    mem: &mut Memory,
    iterations: u64,
) -> Vec<LiveOutValue> {
    let seq = pipeline_sequence(l, schedule, iterations);
    crate::decoded::run_sequence(l, mem, &seq, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_loop;
    use crate::memory::Scalar;
    use sv_analysis::DepGraph;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_machine::MachineConfig;
    use sv_modsched::modulo_schedule;

    fn check_pipeline_matches_inorder(l: &Loop, m: &MachineConfig, n: u64) {
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, m).expect("schedulable");
        let mut mem_a = Memory::for_arrays(&l.arrays);
        let mut mem_b = mem_a.clone();
        let outs_a = execute_loop(l, &mut mem_a, 0..n);
        let outs_b = execute_pipelined(l, &s, &mut mem_b, n);
        for i in 0..l.arrays.len() as u32 {
            let (xa, xb) = (mem_a.array(i), mem_b.array(i));
            for (e, (va, vb)) in xa.iter().zip(xb).enumerate() {
                assert!(
                    va.approx_eq(*vb),
                    "{}: array {i} elem {e}: in-order {va:?} vs pipelined {vb:?}",
                    l.name
                );
            }
        }
        assert_eq!(outs_a.len(), outs_b.len());
        for (a, b) in outs_a.iter().zip(&outs_b) {
            assert!(a.value.approx_eq(b.value), "{}: live-out {}", l.name, a.name);
        }
    }

    #[test]
    fn pipelined_copy_loop_matches() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        b.store(y, 1, 0, lx);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 32);
    }

    #[test]
    fn pipelined_memory_recurrence_matches() {
        // a[i+2] = 2·a[i]: the pipeline overlaps iterations but must still
        // respect the distance-2 flow through memory.
        let mut b = LoopBuilder::new("rec");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let m = b.bin(
            sv_ir::OpKind::Mul,
            ScalarType::F64,
            sv_ir::Operand::def(la),
            sv_ir::Operand::ConstF(2.0),
        );
        b.store(a, 1, 2, m);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 40);
    }

    #[test]
    fn pipelined_reduction_matches() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 48);
    }

    #[test]
    fn pipelined_inplace_update_matches() {
        // x[i] = x[i] + r[i]: anti dependence between the load and store of
        // the same location in flight.
        let mut b = LoopBuilder::new("update");
        let x = b.array("x", ScalarType::F64, 64);
        let r = b.array("r", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let lr = b.load(r, 1, 0);
        let s = b.fadd(lx, lr);
        b.store(x, 1, 0, s);
        let l = b.finish();
        check_pipeline_matches_inorder(&l, &MachineConfig::paper_default(), 48);
    }

    #[test]
    fn zero_iterations_is_empty() {
        let mut b = LoopBuilder::new("none");
        let x = b.array("x", ScalarType::F64, 8);
        let lx = b.load(x, 1, 0);
        b.reduce_add(lx);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let s = modulo_schedule(&l, &g, &m).unwrap();
        let mut mem = Memory::for_arrays(&l.arrays);
        let outs = execute_pipelined(&l, &s, &mut mem, 0);
        assert_eq!(outs[0].value, Scalar::F(0.0));
    }
}
